//! Serve a generated OCR corpus over HTTP and query it with `curl`.
//!
//! ```text
//! cargo run --release --example serve -- [lines] [port]
//! ```
//!
//! Then, from another terminal:
//!
//! ```text
//! curl localhost:7878/healthz
//! curl localhost:7878/query -d '{"sql": "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '\''%Ford%'\'' LIMIT 10"}'
//! curl localhost:7878/stats
//! ```
//!
//! Press Enter (or close stdin) to shut down gracefully: in-flight
//! queries finish, then the workers join.

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::server::{RateLimit, Server, ServerConfig};
use staccato::storage::Database;
use staccato::Staccato;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let lines: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(200);
    let port: u16 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(7878);

    eprintln!("loading {lines} lines of CongressActs ...");
    let dataset = generate(CorpusKind::CongressActs, lines, 42);
    let db = Database::in_memory(2048)?;
    let opts = LoadOptions {
        channel: ChannelConfig::compact(42),
        kmap_k: 8,
        staccato: StaccatoParams::new(10, 8),
        parallelism: 2,
    };
    let session = Arc::new(Staccato::load(db, &dataset, &opts)?);
    session.register_index(&Trie::build(["public", "president", "commission"]), "inv")?;

    let config = ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        // 20 requests back-to-back per client, 5/s sustained — small
        // enough to watch 429s happen with a curl loop.
        rate_limit: Some(RateLimit::new(20, 5.0)),
        ..ServerConfig::default()
    };
    let server = Server::start(session, config)?;
    println!("serving {lines} lines on http://{}", server.addr());
    println!();
    println!("try:");
    println!("  curl localhost:{port}/healthz");
    println!(
        "  curl localhost:{port}/query -d '{{\"sql\": \"SELECT DataKey, Prob \
         FROM StaccatoData WHERE Data LIKE '\\''%Ford%'\\'' LIMIT 10\"}}'"
    );
    // Prepared statements live on their connection, so prepare and
    // execute must share one: a single curl invocation with --next
    // reuses the connection across both requests.
    println!(
        "  curl localhost:{port}/prepare -d '{{\"sql\": \"SELECT DataKey \
         FROM MAPData WHERE Data REGEXP ? LIMIT ?\"}}' \\"
    );
    println!(
        "       --next localhost:{port}/execute -d '{{\"statement_id\": 0, \
         \"params\": [\"Public\", 5]}}'"
    );
    println!("  curl localhost:{port}/stats");
    println!();
    println!("press Enter to shut down");

    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    eprintln!("draining in-flight requests ...");
    server.shutdown();
    Ok(())
}
