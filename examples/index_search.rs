//! Dictionary-based inverted indexing over OCR SFAs (§4 of the paper).
//!
//! Builds the CA-style corpus in the RDBMS, constructs the trie-automaton
//! index over a dictionary, and runs an anchored regular expression both
//! by filescan and through the index (probe → point fetch → projection),
//! comparing answers and wall-clock time.
//!
//! Run with: `cargo run --release --example index_search`

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::exec::{filescan_query, Approach};
use staccato::query::invindex::{build_index, indexed_query};
use staccato::query::store::{LoadOptions, OcrStore};
use staccato::query::Query;
use staccato::storage::Database;
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let dataset = generate(CorpusKind::CongressActs, 300, 13);
    let db = Database::in_memory(8192).expect("database");
    let opts = LoadOptions {
        channel: ChannelConfig { seed: 13, ..ChannelConfig::default() },
        kmap_k: 25,
        staccato: StaccatoParams::new(40, 25),
        ..Default::default()
    };
    println!("Loading {} lines into the store…", dataset.total_lines());
    let store = OcrStore::load(db, &dataset, &opts).expect("load");

    // Dictionary: every word of the clean corpus (as §4 suggests, terms
    // "extracted from a known clean text corpus").
    let mut terms: BTreeSet<String> = BTreeSet::new();
    for (_, _, line) in dataset.lines() {
        for w in line.split(|c: char| !c.is_ascii_alphabetic()) {
            if w.len() >= 2 {
                terms.insert(w.to_ascii_lowercase());
            }
        }
    }
    let trie = Trie::build(&terms);
    let t0 = Instant::now();
    let index = build_index(&store, &trie, "inv").expect("build index");
    println!(
        "Indexed {} terms ({} trie states) -> {} postings in {:?}\n",
        trie.term_count(),
        trie.state_count(),
        index.posting_count,
        t0.elapsed()
    );

    // An anchored regular expression (anchor term: 'public').
    let query = Query::regex(r"Public Law (8|9)\d").expect("pattern");
    println!("query `{}` (left anchor: {:?})", query.pattern, query.anchor);

    let t0 = Instant::now();
    let scan = filescan_query(&store, Approach::Staccato, &query, 100).expect("filescan");
    let t_scan = t0.elapsed();

    let t0 = Instant::now();
    let probe = indexed_query(&store, &index, &query, 100).expect("index probe");
    let t_probe = t0.elapsed();

    let scan_keys: BTreeSet<i64> = scan.iter().map(|a| a.data_key).collect();
    let probe_keys: BTreeSet<i64> = probe.iter().map(|a| a.data_key).collect();
    println!("filescan:    {} answers in {t_scan:?}", scan.len());
    println!("index probe: {} answers in {t_probe:?}", probe.len());
    println!(
        "answer sets identical: {} — speedup {:.1}x",
        scan_keys == probe_keys,
        t_scan.as_secs_f64() / t_probe.as_secs_f64()
    );
}
