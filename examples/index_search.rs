//! Dictionary-based inverted indexing over OCR SFAs (§4 of the paper),
//! through the session API.
//!
//! Builds the CA-style corpus in the RDBMS, registers a trie-automaton
//! index over a dictionary, and runs an anchored regular expression twice
//! — once letting the planner pick the index probe, once forcing the
//! filescan — comparing answers, plans, and wall-clock time.
//!
//! Run with: `cargo run --release --example index_search`

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::storage::Database;
use staccato::{PlanPreference, QueryRequest, Staccato};
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let dataset = generate(CorpusKind::CongressActs, 300, 13);
    let db = Database::in_memory(8192).expect("database");
    let opts = LoadOptions {
        channel: ChannelConfig {
            seed: 13,
            ..ChannelConfig::default()
        },
        kmap_k: 25,
        staccato: StaccatoParams::new(40, 25),
        ..Default::default()
    };
    println!("Loading {} lines into the store…", dataset.total_lines());
    let session = Staccato::load(db, &dataset, &opts).expect("load");

    // Dictionary: every word of the clean corpus (as §4 suggests, terms
    // "extracted from a known clean text corpus").
    let mut terms: BTreeSet<String> = BTreeSet::new();
    for (_, _, line) in dataset.lines() {
        for w in line.split(|c: char| !c.is_ascii_alphabetic()) {
            if w.len() >= 2 {
                terms.insert(w.to_ascii_lowercase());
            }
        }
    }
    let trie = Trie::build(&terms);
    let t0 = Instant::now();
    let postings = session.register_index(&trie, "inv").expect("build index");
    println!(
        "Indexed {} terms ({} trie states) -> {postings} postings in {:?}\n",
        trie.term_count(),
        trie.state_count(),
        t0.elapsed()
    );

    // An anchored regular expression (anchor term: 'public'). With the
    // index registered the planner picks the probe on its own.
    let request = QueryRequest::regex(r"Public Law (8|9)\d").num_ans(100);
    println!("{}", session.explain(&request).expect("explain"));

    let probe = session.execute(&request).expect("index probe");
    let scan = session
        .execute(
            &request
                .clone()
                .plan_preference(PlanPreference::ForceFileScan),
        )
        .expect("filescan");

    let probe_keys: BTreeSet<i64> = probe.answers.iter().map(|a| a.data_key).collect();
    let scan_keys: BTreeSet<i64> = scan.answers.iter().map(|a| a.data_key).collect();
    println!(
        "{:>22}: {} answers in {:?} (plan {:?} + exec {:?}, {} rows, {} postings)",
        scan.plan.kind(),
        scan.answers.len(),
        scan.stats.wall(),
        scan.stats.plan_wall,
        scan.stats.exec_wall,
        scan.stats.rows_scanned,
        scan.stats.postings_probed
    );
    println!(
        "{:>22}: {} answers in {:?} (plan {:?} + exec {:?}, {} rows, {} postings)",
        probe.plan.kind(),
        probe.answers.len(),
        probe.stats.wall(),
        probe.stats.plan_wall,
        probe.stats.exec_wall,
        probe.stats.rows_scanned,
        probe.stats.postings_probed
    );
    println!(
        "answer sets identical: {} — speedup {:.1}x",
        scan_keys == probe_keys,
        scan.stats.wall().as_secs_f64() / probe.stats.wall().as_secs_f64()
    );
}
