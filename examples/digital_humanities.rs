//! The paper's other motivating user (§1): "an English professor looking
//! for the earliest dates that a word occurs in a corpus is sensitive to
//! recall".
//!
//! Loads a literature corpus through the OCR channel into the RDBMS with
//! all four representations, then searches for a rare name and for a
//! date-like regex through the session API, reporting precision/recall
//! per access method — the recall-sensitive scholar should not use the
//! MAP text.
//!
//! Run with: `cargo run --release --example digital_humanities`

use staccato::approx::StaccatoParams;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::metrics::{evaluate_answers, ground_truth};
use staccato::query::store::LoadOptions;
use staccato::storage::Database;
use staccato::{Approach, QueryRequest, Staccato};

fn main() {
    let lines = 250;
    let dataset = generate(CorpusKind::EnglishLit, lines, 7);
    let db = Database::in_memory(4096).expect("database");
    let opts = LoadOptions {
        channel: ChannelConfig {
            seed: 7,
            ..ChannelConfig::default()
        },
        kmap_k: 25,
        staccato: StaccatoParams::new(40, 25),
        ..Default::default()
    };
    println!("Scanning {lines} lines of the literature corpus through the OCR channel…");
    let session = Staccato::load(db, &dataset, &opts).expect("load store");
    let sizes = session.sizes();
    println!(
        "Loaded. text={}kB, MAP={}kB, k-MAP={}kB, STACCATO={}kB, FullSFA={}MB\n",
        sizes.text / 1000,
        sizes.map / 1000,
        sizes.kmap / 1000,
        sizes.staccato / 1000,
        sizes.full_sfa / 1_000_000
    );

    for pattern in ["Kerouac", r"19\d\d, \d\d"] {
        let request = QueryRequest::regex(pattern).num_ans(100);
        let query = request.compile().expect("pattern");
        let truth = ground_truth(session.store(), &query).expect("ground truth");
        println!(
            "query `{pattern}` — {} true lines in the corpus",
            truth.len()
        );
        println!("| engine | plan | found | precision | recall |");
        println!("|---|---|---|---|---|");
        for ap in Approach::all() {
            let out = session
                .execute(&request.clone().approach(ap))
                .expect("query");
            let m = evaluate_answers(&out.answers, &truth);
            println!(
                "| {} | {} | {}/{} | {:.2} | {:.2} |",
                ap.name(),
                out.plan.kind(),
                m.true_positives,
                m.truth_size,
                m.precision,
                m.recall
            );
        }
        println!();
    }
    println!(
        "The MAP text silently drops occurrences; the scholar's earliest-date query \
         needs the probabilistic representations."
    );
}
