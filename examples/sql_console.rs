//! The SQL surface, end to end: load a small corpus, register an index,
//! and run the paper's §2.3-style statements as plain strings — ranked
//! selects, probability thresholds, `EXPLAIN`, aggregates, and a prepared
//! statement with `?` parameters.
//!
//! Run with: `cargo run --release --example sql_console`

use staccato::approx::StaccatoParams;
use staccato::automata::Trie;
use staccato::ocr::{generate, ChannelConfig, CorpusKind};
use staccato::query::store::LoadOptions;
use staccato::storage::Database;
use staccato::{SqlValue, Staccato};

fn main() {
    let dataset = generate(CorpusKind::CongressActs, 120, 7);
    let db = Database::in_memory(4096).expect("database");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(7),
        kmap_k: 10,
        staccato: StaccatoParams::new(20, 10),
        parallelism: 2,
    };
    let session = Staccato::load(db, &dataset, &opts).expect("load");
    session
        .register_index(&Trie::build(["public", "president", "commission"]), "inv")
        .expect("index");

    // Ranked select with a threshold; the planner picks the access path.
    for statement in [
        "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%President%' \
         AND Prob >= 0.1 ORDER BY Prob DESC LIMIT 5",
        "SELECT DataKey FROM MAPData WHERE Data REGEXP 'Public Law (8|9)\\d' LIMIT 5",
    ] {
        let out = session.sql(statement).expect("query");
        println!("sql> {statement}");
        println!(
            "  -> {} answers via {} (plan {:?} + exec {:?})",
            out.answers.len(),
            out.plan.kind(),
            out.stats.plan_wall,
            out.stats.exec_wall
        );
        for a in out.answers.iter().take(3) {
            println!("     DataKey {:>4}  Prob {:.4}", a.data_key, a.probability);
        }
    }

    // EXPLAIN goes through the same renderer as the builder path.
    let plan = session
        .sql("EXPLAIN SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'President'")
        .expect("explain");
    println!("\nsql> EXPLAIN SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'President'");
    print!("{}", plan.explain.expect("explain text"));

    // EXPLAIN ANALYZE executes for real and appends the observed
    // counters: wall split, rows/lines/postings, buffer-pool traffic.
    let analyzed = session
        .sql("EXPLAIN ANALYZE SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'President'")
        .expect("explain analyze");
    println!(
        "\nsql> EXPLAIN ANALYZE SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'President'"
    );
    print!("{}", analyzed.explain.expect("analyze text"));

    // Aggregates stream over every qualifying line, never ranking.
    println!();
    for statement in [
        "SELECT COUNT(*) FROM StaccatoData WHERE Data LIKE '%President%'",
        "SELECT SUM(Prob) FROM StaccatoData WHERE Data LIKE '%President%'",
        "SELECT AVG(Prob) FROM StaccatoData WHERE Data LIKE '%President%'",
    ] {
        let out = session.sql(statement).expect("aggregate");
        let agg = out.aggregate.expect("aggregate value");
        println!("sql> {statement}");
        println!("  -> {} = {:.4}", agg.func.sql_name(), agg.value);
    }

    // Prepared statement: one parse, many bindings.
    let prepared = session
        .prepare("SELECT COUNT(*) FROM StaccatoData WHERE Data LIKE ? AND Prob >= ?")
        .expect("prepare");
    println!("\nprepared: {}", prepared.sql());
    for (pattern, threshold) in [
        ("%President%", 0.0),
        ("%President%", 0.5),
        ("%Congress%", 0.0),
    ] {
        let out = session
            .execute_prepared(
                &prepared,
                &[SqlValue::text(pattern), SqlValue::Number(threshold)],
            )
            .expect("bound execution");
        println!(
            "  bind ({pattern:?}, {threshold}) -> COUNT(*) = {}",
            out.aggregate.expect("count").value
        );
    }
}
