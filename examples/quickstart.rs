//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds the running-example SFA for an image reading "Ford", shows that
//! the MAP transcription is wrong ('F0 rd'), that the probabilistic query
//! still finds the claim, and that the Staccato approximation keeps the
//! answer at a fraction of the size.
//!
//! Run with: `cargo run --example quickstart`

use staccato::approx::{approximate, StaccatoParams};
use staccato::query::{eval_sfa, Query};
use staccato::sfa::{codec, map_string, total_mass, Emission, SfaBuilder};

fn main() {
    // Figure 1(B): the simplified transducer OCRopus produced for the
    // highlighted part of the scanned claim form.
    let mut b = SfaBuilder::new();
    let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
    b.add_edge(n[0], n[1], vec![Emission::new("F", 0.8), Emission::new("T", 0.2)]);
    b.add_edge(n[1], n[2], vec![Emission::new("0", 0.6), Emission::new("o", 0.4)]);
    b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
    b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
    b.add_edge(n[3], n[4], vec![Emission::new("r", 0.8), Emission::new("m", 0.2)]);
    b.add_edge(n[4], n[5], vec![Emission::new("d", 0.9), Emission::new("3", 0.1)]);
    let sfa = b.build(n[0], n[5]).expect("Figure 1 SFA is valid");

    let (map, p_map) = map_string(&sfa).expect("non-empty SFA");
    println!("MAP transcription: {map:?} (p = {p_map:.3})");
    println!("  -> a plain-text search for 'Ford' finds nothing.");

    // Figure 1(C): SELECT ... WHERE DocData LIKE '%Ford%'
    let query = Query::like("%Ford%").expect("valid LIKE pattern");
    let p = eval_sfa(&query.dfa, &sfa);
    println!("Pr[DocData LIKE '%Ford%'] over the full SFA = {p:.3}");
    println!("  -> the claim is found with probability ~0.12, as in the paper.");

    // Staccato approximation: 2 chunks, 2 strings per chunk.
    let stac = approximate(&sfa, StaccatoParams::new(2, 2));
    println!(
        "\nStaccato(m=2, k=2): {} chunks, retained mass {:.3}, {} of {} bytes",
        stac.edge_count(),
        total_mass(&stac),
        codec::encoded_size(&stac),
        codec::encoded_size(&sfa),
    );
    let p_stac = eval_sfa(&query.dfa, &stac);
    println!("Pr[... LIKE '%Ford%'] over the approximation = {p_stac:.3}");
    for (s, p) in stac.enumerate_strings(16) {
        println!("  retained string {s:?} (p = {p:.3})");
    }
}
