//! Quickstart: the paper's Figure 1, end to end, through the session API.
//!
//! Builds the running-example SFA for an image reading "Ford", shows that
//! the MAP transcription is wrong ('F0 rd'), that the probabilistic query
//! still finds the claim, and then runs the same `LIKE` predicate the way
//! an application would: a [`Staccato`] session planning and executing a
//! [`QueryRequest`] over a loaded store.
//!
//! Run with: `cargo run --example quickstart`

use staccato::approx::{approximate, StaccatoParams};
use staccato::ocr::{ChannelConfig, Dataset, Document};
use staccato::query::store::LoadOptions;
use staccato::query::{eval_sfa, Query};
use staccato::sfa::{codec, map_string, total_mass, Emission, SfaBuilder};
use staccato::storage::Database;
use staccato::{Approach, QueryRequest, Staccato};

fn main() {
    // Figure 1(B): the simplified transducer OCRopus produced for the
    // highlighted part of the scanned claim form.
    let mut b = SfaBuilder::new();
    let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
    b.add_edge(
        n[0],
        n[1],
        vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
    );
    b.add_edge(
        n[1],
        n[2],
        vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
    );
    b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
    b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
    b.add_edge(
        n[3],
        n[4],
        vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
    );
    b.add_edge(
        n[4],
        n[5],
        vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
    );
    let sfa = b.build(n[0], n[5]).expect("Figure 1 SFA is valid");

    let (map, p_map) = map_string(&sfa).expect("non-empty SFA");
    println!("MAP transcription: {map:?} (p = {p_map:.3})");
    println!("  -> a plain-text search for 'Ford' finds nothing.");

    // Figure 1(C): SELECT ... WHERE DocData LIKE '%Ford%'
    let query = Query::like("%Ford%").expect("valid LIKE pattern");
    let p = eval_sfa(&query.dfa, &sfa);
    println!("Pr[DocData LIKE '%Ford%'] over the full SFA = {p:.3}");
    println!("  -> the claim is found with probability ~0.12, as in the paper.");

    // Staccato approximation: 2 chunks, 2 strings per chunk.
    let stac = approximate(&sfa, StaccatoParams::new(2, 2));
    println!(
        "\nStaccato(m=2, k=2): {} chunks, retained mass {:.3}, {} of {} bytes",
        stac.edge_count(),
        total_mass(&stac),
        codec::encoded_size(&stac),
        codec::encoded_size(&sfa),
    );
    let p_stac = eval_sfa(&query.dfa, &stac);
    println!("Pr[... LIKE '%Ford%'] over the approximation = {p_stac:.3}");
    for (s, p) in stac.enumerate_strings(16) {
        println!("  retained string {s:?} (p = {p:.3})");
    }

    // The same query as an application runs it: load a small claim corpus
    // into the RDBMS and let the session plan + execute the request.
    let dataset = Dataset {
        name: "claims".into(),
        kind: staccato::ocr::CorpusKind::Books,
        docs: vec![Document {
            name: "claims-2010".into(),
            lines: vec![
                "my Ford pickup was hit in the parking lot".into(),
                "hail damage to a Toyota sedan on Elm St".into(),
                "Ford van side mirror broken by a cart".into(),
                "kitchen fire spread to the garage".into(),
            ],
        }],
    };
    let db = Database::in_memory(512).expect("database");
    let opts = LoadOptions {
        channel: ChannelConfig::compact(2010),
        kmap_k: 5,
        staccato: StaccatoParams::new(8, 5),
        parallelism: 2,
    };
    let session = Staccato::load(db, &dataset, &opts).expect("load store");

    // Figure 1C verbatim: the predicate as SQL text over Table 5.
    let figure_1c = "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Ford%' LIMIT 10";
    let out = session.sql(figure_1c).expect("sql");
    println!("\nsql> {figure_1c}");
    for a in &out.answers {
        println!(
            "  claim line {} matches with p = {:.3}",
            a.data_key, a.probability
        );
    }

    // The same query through the fluent builder — one planner, one engine.
    let request = QueryRequest::like("%Ford%").num_ans(10);
    println!("\n{}", session.explain(&request).expect("explain"));
    for approach in [Approach::Map, Approach::Staccato, Approach::FullSfa] {
        let out = session
            .execute(&request.clone().approach(approach))
            .expect("execute");
        let best = out
            .answers
            .first()
            .map(|a| format!("best line {} (p = {:.3})", a.data_key, a.probability))
            .unwrap_or_else(|| "no answers".into());
        println!(
            "{:>8}: {} answers via {} in {:?} ({} lines evaluated) — {}",
            approach.name(),
            out.answers.len(),
            out.plan.kind(),
            out.stats.wall(),
            out.stats.lines_evaluated,
            best
        );
    }
    println!("\nThe probabilistic representations surface the Ford claims the MAP text loses.");
}
