//! The paper's §2.1 scenario: an insurance company stores scanned claim
//! forms in `Claims(DocID, Year, Loss, DocData)` and asks
//!
//! ```sql
//! SELECT DocID, Loss FROM Claims
//! WHERE Year = 2010 AND DocData LIKE '%Ford%';
//! ```
//!
//! `DocData` is OCR output — a distribution over strings — so the result
//! is a probabilistic relation. This example loads the claim forms into
//! the RDBMS through the session API, runs the `LIKE` predicate against
//! the MAP text and against the retained SFA via [`Staccato::execute`],
//! applies the deterministic `Year = 2010` predicate to the answer
//! relation, and aggregates.
//!
//! Run with: `cargo run --example insurance_claims`

use staccato::approx::StaccatoParams;
use staccato::ocr::{ChannelConfig, CorpusKind, Dataset, Document};
use staccato::query::store::LoadOptions;
use staccato::query::{expected_count, expected_sum};
use staccato::storage::Database;
use staccato::{Approach, QueryRequest, Staccato};
use std::collections::HashMap;

fn main() {
    // The scanned claim forms: DocID and the deterministic attributes
    // live alongside the OCR'd DocData (DataKey = insertion order).
    let forms: [(i64, f64, &str); 5] = [
        (2010, 1200.0, "my Ford pickup was hit in the parking lot"),
        (2010, 540.5, "hail damage to a Toyota sedan on Elm St"),
        (2009, 980.0, "Ford sedan rear ended at a stop light"),
        (2010, 310.0, "Ford van side mirror broken by a cart"),
        (2010, 7750.0, "kitchen fire spread to the garage"),
    ];
    let attrs: HashMap<i64, (i64, f64)> = forms
        .iter()
        .enumerate()
        .map(|(key, (year, loss, _))| (key as i64, (*year, *loss)))
        .collect();
    let dataset = Dataset {
        name: "Claims".into(),
        kind: CorpusKind::Books,
        docs: vec![Document {
            name: "claim-forms".into(),
            lines: forms.iter().map(|(_, _, text)| text.to_string()).collect(),
        }],
    };

    let db = Database::in_memory(512).expect("in-memory database");
    let opts = LoadOptions {
        channel: ChannelConfig {
            seed: 2010,
            ..ChannelConfig::default()
        },
        kmap_k: 5,
        staccato: StaccatoParams::new(10, 5),
        parallelism: 2,
    };
    let session = Staccato::load(db, &dataset, &opts).expect("load claims");

    let request = QueryRequest::like("%Ford%").num_ans(10);
    println!("SELECT DocID, Loss FROM Claims WHERE Year = 2010 AND DocData LIKE '%Ford%';\n");
    let via_map = session
        .execute(&request.clone().approach(Approach::Map))
        .expect("MAP");
    let via_sfa = session
        .execute(&request.clone().approach(Approach::FullSfa))
        .expect("SFA");
    let p_map: HashMap<i64, f64> = via_map
        .answers
        .iter()
        .map(|a| (a.data_key, a.probability))
        .collect();

    println!("| DocID | Loss | Pr (MAP text) | Pr (full SFA) |");
    println!("|---|---|---|---|");
    // The probabilistic predicate ran in the engine; apply the
    // deterministic Year filter to the answer relation.
    let answers_2010: Vec<_> = via_sfa
        .answers
        .iter()
        .filter(|a| attrs[&a.data_key].0 == 2010)
        .copied()
        .collect();
    for a in &answers_2010 {
        let (_, loss) = attrs[&a.data_key];
        println!(
            "| {} | {loss:.2} | {:.4} | {:.4} |",
            a.data_key,
            p_map.get(&a.data_key).copied().unwrap_or(0.0),
            a.probability
        );
    }
    println!(
        "\n(plan: {}, {} lines evaluated in {:?})",
        via_sfa.plan.kind(),
        via_sfa.stats.lines_evaluated,
        via_sfa.stats.wall()
    );
    println!(
        "\nClaims whose MAP transcription corrupted 'Ford' still surface through the \
         probabilistic query — the paper's motivating recall gap."
    );
    // Probabilistic aggregation over the answer relation (§7's direction).
    println!(
        "\nE[COUNT(*)] = {:.3} matching 2010 claims; E[SUM(Loss)] = ${:.2}",
        expected_count(&answers_2010),
        expected_sum(&answers_2010, |key| attrs.get(&key).map(|(_, loss)| *loss)),
    );
}
