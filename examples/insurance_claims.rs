//! The paper's §2.1 scenario: an insurance company stores scanned claim
//! forms in `Claims(DocID, Year, Loss, DocData)` and asks
//!
//! ```sql
//! SELECT DocID, Loss FROM Claims
//! WHERE Year = 2010 AND DocData LIKE '%Ford%';
//! ```
//!
//! `DocData` is OCR output — a distribution over strings — so the result
//! is a probabilistic relation. This example builds the table inside the
//! storage engine, runs the query against the MAP text and against the
//! retained SFA, and shows the recall difference.
//!
//! Run with: `cargo run --example insurance_claims`

use staccato::ocr::{Channel, ChannelConfig};
use staccato::query::exec::Answer;
use staccato::query::{eval_sfa, eval_strings, expected_count, expected_sum, Query};
use staccato::sfa::{codec, map_string};
use staccato::storage::{
    BlobStore, ColumnType, Database, Schema, Value,
};

fn main() {
    let db = Database::in_memory(256).expect("in-memory database");
    let schema = Schema::new(&[
        ("DocID", ColumnType::Int),
        ("Year", ColumnType::Int),
        ("Loss", ColumnType::Float),
        ("DocData", ColumnType::Blob),
    ]);
    let claims = db.create_table("Claims", schema.clone()).expect("create table");

    // Scan a few claim forms through the OCR channel.
    let channel = Channel::new(ChannelConfig { seed: 2010, ..ChannelConfig::default() });
    let forms = [
        (1, 2010, 1200.0, "my Ford pickup was hit in the parking lot"),
        (2, 2010, 540.5, "hail damage to a Toyota sedan on Elm St"),
        (3, 2009, 980.0, "Ford sedan rear ended at a stop light"),
        (4, 2010, 310.0, "Ford van side mirror broken by a cart"),
        (5, 2010, 7750.0, "kitchen fire spread to the garage"),
    ];
    for (doc_id, year, loss, text) in forms {
        let sfa = channel.line_to_sfa(text, doc_id as u64);
        let blob = BlobStore::put(db.pool(), &codec::encode(&sfa)).expect("store blob");
        let row = vec![
            Value::Int(doc_id),
            Value::Int(year),
            Value::Float(loss),
            Value::Blob(blob),
        ];
        claims
            .insert(db.pool(), &staccato::storage::row::encode_row(&schema, &row).expect("row"))
            .expect("insert");
    }

    let query = Query::like("%Ford%").expect("LIKE pattern");
    println!("SELECT DocID, Loss FROM Claims WHERE Year = 2010 AND DocData LIKE '%Ford%';\n");
    println!("| DocID | Loss | Pr (MAP text) | Pr (full SFA) |");
    println!("|---|---|---|---|");
    let (schema, heap) = db.table("Claims").expect("table exists");
    let mut answers: Vec<Answer> = Vec::new();
    let mut losses: Vec<(i64, f64)> = Vec::new();
    for item in heap.scan(db.pool()) {
        let (_, bytes) = item.expect("scan");
        let row = staccato::storage::row::decode_row(&schema, &bytes).expect("row");
        let year = row[1].as_int().expect("Year");
        if year != 2010 {
            continue; // the deterministic predicate
        }
        let doc_id = row[0].as_int().expect("DocID");
        let loss = row[2].as_float().expect("Loss");
        let blob = row[3].as_blob().expect("DocData");
        let sfa = codec::decode(&BlobStore::get(db.pool(), blob).expect("blob"))
            .expect("stored SFA decodes");
        let (map, p_map) = map_string(&sfa).expect("MAP");
        let p_text = eval_strings(&query.dfa, std::iter::once((map.as_str(), p_map)));
        let p_sfa = eval_sfa(&query.dfa, &sfa);
        println!("| {doc_id} | {loss:.2} | {p_text:.4} | {p_sfa:.4} |");
        answers.push(Answer { data_key: doc_id, probability: p_sfa });
        losses.push((doc_id, loss));
    }
    println!(
        "\nClaims whose MAP transcription corrupted 'Ford' still surface through the \
         probabilistic query — the paper's motivating recall gap."
    );
    // Probabilistic aggregation over the answer relation (§7's direction).
    println!(
        "\nE[COUNT(*)] = {:.3} matching 2010 claims; E[SUM(Loss)] = ${:.2}",
        expected_count(&answers),
        expected_sum(&answers, |key| losses
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| *l)),
    );
}
