//! Thompson construction: regex AST → nondeterministic finite automaton.
//!
//! Standard textbook construction (Hopcroft–Motwani–Ullman, the reference
//! the paper cites for its query compilation): one start and one accept
//! state per sub-expression, ε-transitions glue sub-automata together.

use crate::regex::{Ast, ByteClass};

/// NFA state id.
pub type StateId = u32;

/// A Thompson NFA. Exactly one start state and one accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Per state: byte-class transitions.
    pub trans: Vec<Vec<(ByteClass, StateId)>>,
    /// Per state: ε-transitions.
    pub eps: Vec<Vec<StateId>>,
    /// Start state.
    pub start: StateId,
    /// Accept state.
    pub accept: StateId,
}

impl Nfa {
    fn new_state(&mut self) -> StateId {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        (self.trans.len() - 1) as StateId
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trans.len()
    }

    /// Whether the automaton has no states (never true for compiled ASTs).
    pub fn is_empty(&self) -> bool {
        self.trans.is_empty()
    }

    /// Compile an AST into an NFA.
    pub fn compile(ast: &Ast) -> Nfa {
        let mut nfa = Nfa {
            trans: Vec::new(),
            eps: Vec::new(),
            start: 0,
            accept: 0,
        };
        let start = nfa.new_state();
        let accept = nfa.new_state();
        nfa.start = start;
        nfa.accept = accept;
        nfa.build(ast, start, accept);
        nfa
    }

    /// Wire `ast` between `from` and `to`.
    fn build(&mut self, ast: &Ast, from: StateId, to: StateId) {
        match ast {
            Ast::Empty => self.eps[from as usize].push(to),
            Ast::Class(c) => self.trans[from as usize].push((*c, to)),
            Ast::Concat(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.new_state()
                    };
                    self.build(p, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.eps[from as usize].push(to);
                }
            }
            Ast::Alt(parts) => {
                for p in parts {
                    let s = self.new_state();
                    let e = self.new_state();
                    self.eps[from as usize].push(s);
                    self.build(p, s, e);
                    self.eps[e as usize].push(to);
                }
            }
            Ast::Star(inner) => {
                let s = self.new_state();
                let e = self.new_state();
                self.eps[from as usize].push(s);
                self.eps[s as usize].push(e);
                self.build(inner, s, e);
                self.eps[e as usize].push(s);
                self.eps[e as usize].push(to);
            }
            Ast::Plus(inner) => {
                let s = self.new_state();
                let e = self.new_state();
                self.eps[from as usize].push(s);
                self.build(inner, s, e);
                self.eps[e as usize].push(s);
                self.eps[e as usize].push(to);
            }
            Ast::Opt(inner) => {
                self.eps[from as usize].push(to);
                self.build(inner, from, to);
            }
        }
    }

    /// ε-closure of a set of states; returns a sorted, deduplicated vector.
    pub fn eps_closure(&self, states: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(states.len());
        for &s in states {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut i = 0;
        while i < stack.len() {
            let s = stack[i];
            i += 1;
            for &t in &self.eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        stack.sort_unstable();
        stack
    }

    /// Reference matcher: does the NFA accept `input` exactly? Used as the
    /// test oracle for the DFA pipeline.
    pub fn accepts(&self, input: &str) -> bool {
        let mut cur = self.eps_closure(&[self.start]);
        for &b in input.as_bytes() {
            let mut next = Vec::new();
            for &s in &cur {
                for &(c, t) in &self.trans[s as usize] {
                    if c.contains(b) {
                        next.push(t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = self.eps_closure(&next);
        }
        cur.contains(&self.accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn accepts(pattern: &str, input: &str) -> bool {
        Nfa::compile(&parse(pattern).unwrap()).accepts(input)
    }

    #[test]
    fn literal_match() {
        assert!(accepts("Ford", "Ford"));
        assert!(!accepts("Ford", "F0rd"));
        assert!(!accepts("Ford", "Fords"));
        assert!(!accepts("Ford", "For"));
    }

    #[test]
    fn digits_and_wildcards() {
        assert!(accepts(r"U.S.C. 2\d\d\d", "U.S.C. 2345"));
        assert!(!accepts(r"U.S.C. 2\d\d\d", "U.S.C. 2x45"));
        assert!(accepts(r"Sec(\x)*\d", "Sec. 3"));
        assert!(accepts(r"Sec(\x)*\d", "Sec9"));
        assert!(!accepts(r"Sec(\x)*\d", "Sec. x"));
    }

    #[test]
    fn alternation() {
        assert!(accepts("Public Law (8|9)7", "Public Law 87"));
        assert!(accepts("Public Law (8|9)7", "Public Law 97"));
        assert!(!accepts("Public Law (8|9)7", "Public Law 77"));
    }

    #[test]
    fn star_plus_opt() {
        assert!(accepts("ab*c", "ac"));
        assert!(accepts("ab*c", "abbbc"));
        assert!(!accepts("ab+c", "ac"));
        assert!(accepts("ab+c", "abc"));
        assert!(accepts("ab?c", "ac"));
        assert!(accepts("ab?c", "abc"));
        assert!(!accepts("ab?c", "abbc"));
    }

    #[test]
    fn empty_pattern_matches_empty_only() {
        assert!(accepts("", ""));
        assert!(!accepts("", "a"));
    }

    #[test]
    fn nested_groups() {
        assert!(accepts("(a(b|c))+", "abac"));
        assert!(!accepts("(a(b|c))+", "aba"));
    }

    #[test]
    fn eps_closure_is_sorted_and_complete() {
        let nfa = Nfa::compile(&parse("a*").unwrap());
        let cl = nfa.eps_closure(&[nfa.start]);
        let mut sorted = cl.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(cl, sorted);
        // a* accepts empty, so the closure of start must contain accept.
        assert!(cl.contains(&nfa.accept));
    }
}
