//! Deterministic finite automata: subset construction, Moore minimization,
//! and the containment closure used for `LIKE '%...%'`-style queries.
//!
//! The DFA is *total*: every state has a transition for every alphabet byte
//! (an explicit dead state absorbs mismatches), so the probabilistic
//! evaluation over SFAs can propagate state vectors without branching.

use crate::nfa::Nfa;
use crate::regex::{Ast, ByteClass};
use std::collections::HashMap;

/// Number of byte values the transition table covers (ASCII).
pub const TABLE_WIDTH: usize = 128;

/// A total DFA over ASCII.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `table[s][b]` = successor of state `s` on byte `b`.
    table: Vec<[u32; TABLE_WIDTH]>,
    accept: Vec<bool>,
    start: u32,
    /// Cached dead state: non-accepting, maps every byte to itself.
    /// Computed once at construction so the out-of-alphabet path in
    /// [`Dfa::next`] is a field read, not a table scan.
    dead: u32,
}

impl Dfa {
    /// Compile an AST into a minimized DFA with *exact-match* semantics:
    /// [`Dfa::accepts`] is true iff the whole input is in the language.
    pub fn compile(ast: &Ast) -> Dfa {
        Self::from_nfa(&Nfa::compile(ast)).minimize()
    }

    /// Compile an AST into a minimized DFA with *containment* semantics:
    /// accepts iff some substring of the input is in the language
    /// (`Σ*·L·Σ*`). Accepting states are absorbing, which the probabilistic
    /// evaluator relies on: once a prefix of a document matches, every
    /// completion matches.
    pub fn compile_containment(ast: &Ast) -> Dfa {
        let mut nfa = Nfa::compile(ast);
        // Self-loop on the start state: the match may begin anywhere.
        let start_loop = (ByteClass::any(), nfa.start);
        nfa.trans[nfa.start as usize].push(start_loop);
        // Absorbing accept: the match may end anywhere.
        let accept_loop = (ByteClass::any(), nfa.accept);
        nfa.trans[nfa.accept as usize].push(accept_loop);
        Self::from_nfa(&nfa).minimize()
    }

    /// Subset construction.
    fn from_nfa(nfa: &Nfa) -> Dfa {
        let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut table: Vec<[u32; TABLE_WIDTH]> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut work: Vec<Vec<u32>> = Vec::new();

        // State 0 is the dead state (empty subset).
        ids.insert(Vec::new(), 0);
        table.push([0u32; TABLE_WIDTH]);
        accept.push(false);

        let start_set = nfa.eps_closure(&[nfa.start]);
        let start_id = 1u32;
        ids.insert(start_set.clone(), start_id);
        table.push([0u32; TABLE_WIDTH]);
        accept.push(start_set.binary_search(&nfa.accept).is_ok());
        work.push(start_set);

        while let Some(set) = work.pop() {
            let sid = ids[&set];
            let mut row = [0u32; TABLE_WIDTH];
            for b in 0..TABLE_WIDTH as u8 {
                let mut next: Vec<u32> = Vec::new();
                for &s in &set {
                    for &(c, t) in &nfa.trans[s as usize] {
                        if c.contains(b) {
                            next.push(t);
                        }
                    }
                }
                if next.is_empty() {
                    continue; // dead
                }
                let closure = nfa.eps_closure(&next);
                let id = match ids.get(&closure) {
                    Some(&id) => id,
                    None => {
                        let id = table.len() as u32;
                        ids.insert(closure.clone(), id);
                        table.push([0u32; TABLE_WIDTH]);
                        accept.push(closure.binary_search(&nfa.accept).is_ok());
                        work.push(closure);
                        id
                    }
                };
                row[b as usize] = id;
            }
            table[sid as usize] = row;
        }
        Dfa {
            table,
            accept,
            start: start_id,
            // State 0 is the empty subset: non-accepting, all self-loops.
            dead: 0,
        }
    }

    /// Moore partition-refinement minimization. Returns an equivalent DFA
    /// with the minimum number of states (the `q` of Table 1's cost model).
    fn minimize(&self) -> Dfa {
        let n = self.table.len();
        let mut part: Vec<u32> = self.accept.iter().map(|&a| a as u32).collect();
        let mut count = 2usize;
        loop {
            let mut sigs: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next_part = vec![0u32; n];
            for s in 0..n {
                let sig: Vec<u32> = self.table[s].iter().map(|&t| part[t as usize]).collect();
                let key = (part[s], sig);
                let next_id = sigs.len() as u32;
                let id = *sigs.entry(key).or_insert(next_id);
                next_part[s] = id;
            }
            let new_count = sigs.len();
            part = next_part;
            if new_count == count {
                break;
            }
            count = new_count;
        }
        let mut table = vec![[0u32; TABLE_WIDTH]; count];
        let mut accept = vec![false; count];
        for s in 0..n {
            let p = part[s] as usize;
            accept[p] = self.accept[s];
            for b in 0..TABLE_WIDTH {
                table[p][b] = part[self.table[s][b] as usize];
            }
        }
        Dfa {
            table,
            accept,
            start: part[self.start as usize],
            // The dead state's block survives refinement: it is split from
            // every accepting state in the initial partition and its
            // signature (all bytes into its own block) is preserved.
            dead: part[self.dead as usize],
        }
    }

    /// Number of states, including the dead state.
    pub fn state_count(&self) -> usize {
        self.table.len()
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Transition: successor of `state` on input byte `b`. Bytes outside
    /// ASCII go to the dead state.
    #[inline]
    pub fn next(&self, state: u32, b: u8) -> u32 {
        if (b as usize) < TABLE_WIDTH {
            self.table[state as usize][b as usize]
        } else {
            self.dead
        }
    }

    /// Run the DFA over a whole string from `state`.
    #[inline]
    pub fn run_from(&self, mut state: u32, input: &str) -> u32 {
        for &b in input.as_bytes() {
            state = self.next(state, b);
        }
        state
    }

    /// Whether `state` accepts.
    #[inline]
    pub fn is_accept(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// Whether the DFA accepts the full input string.
    pub fn accepts(&self, input: &str) -> bool {
        self.is_accept(self.run_from(self.start, input))
    }

    /// The dead state: non-accepting, maps every byte (including bytes
    /// outside the ASCII table) to itself. Subset construction always
    /// materializes it as state 0 (the empty subset) and minimization
    /// preserves its block, so it is cached at construction.
    #[inline]
    pub fn dead(&self) -> u32 {
        self.dead
    }

    /// The full transition row for `state` (one successor per ASCII byte).
    /// Used by the dense scan kernel to build its byte-class table.
    pub(crate) fn row(&self, state: u32) -> &[u32; TABLE_WIDTH] {
        &self.table[state as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn exact(pattern: &str) -> Dfa {
        Dfa::compile(&parse(pattern).unwrap())
    }

    fn contains(pattern: &str) -> Dfa {
        Dfa::compile_containment(&parse(pattern).unwrap())
    }

    #[test]
    fn exact_match_semantics() {
        let d = exact("Ford");
        assert!(d.accepts("Ford"));
        assert!(!d.accepts("xFord"));
        assert!(!d.accepts("Fordx"));
        assert!(!d.accepts("F0rd"));
    }

    #[test]
    fn containment_semantics() {
        let d = contains("Ford");
        assert!(d.accepts("Ford"));
        assert!(d.accepts("a Ford pickup"));
        assert!(!d.accepts("a F0rd pickup"));
        assert!(d.accepts("FoFordrd"));
    }

    #[test]
    fn containment_accept_is_absorbing() {
        let d = contains("ab");
        let mut s = d.start();
        for &b in b"xxabyy" {
            s = d.next(s, b);
        }
        assert!(d.is_accept(s));
        // Further input cannot leave acceptance.
        for &b in b"qqqq" {
            s = d.next(s, b);
            assert!(d.is_accept(s));
        }
    }

    #[test]
    fn paper_regex_queries_work_in_containment() {
        let usc = contains(r"U.S.C. 2\d\d\d");
        assert!(usc.accepts("see U.S.C. 2345 for details"));
        assert!(!usc.accepts("see U.S.C. 2x45 for details"));

        let pl = contains(r"Public Law (8|9)\d");
        assert!(pl.accepts("under Public Law 89 the"));
        assert!(!pl.accepts("under Public Law 79 the"));

        let sec = contains(r"Sec(\x)*\d");
        assert!(sec.accepts("Sec. IV part 3"));
        assert!(!sec.accepts("Section four"));
    }

    #[test]
    fn minimization_reduces_states() {
        // (a|b)(a|b) has a 4-state minimal DFA (+ dead): redundant subset
        // states must be merged.
        let d = exact("(a|b)(a|b)");
        assert!(d.state_count() <= 5, "got {} states", d.state_count());
    }

    #[test]
    fn dfa_equals_nfa_on_exhaustive_small_inputs() {
        let patterns = ["a(b|c)*d", "ab?c+", r"\d\d", "x|yz", ""];
        let alphabet = [b'a', b'b', b'c', b'd', b'1'];
        for pat in patterns {
            let ast = parse(pat).unwrap();
            let nfa = Nfa::compile(&ast);
            let dfa = Dfa::compile(&ast);
            // All strings of length ≤ 4 over a 5-letter alphabet.
            let mut inputs: Vec<String> = vec![String::new()];
            for _ in 0..4 {
                let mut next = Vec::new();
                for s in &inputs {
                    for &b in &alphabet {
                        let mut t = s.clone();
                        t.push(b as char);
                        next.push(t);
                    }
                }
                inputs.extend(next);
            }
            for input in &inputs {
                assert_eq!(
                    dfa.accepts(input),
                    nfa.accepts(input),
                    "pattern {pat:?} input {input:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_alphabet_bytes_go_dead() {
        let d = exact("a");
        let s = d.next(d.start(), 0xC3);
        assert!(!d.is_accept(d.run_from(s, "a")));
    }

    #[test]
    fn cached_dead_state_is_dead() {
        for d in [
            exact("a(b|c)*d"),
            exact(""),
            contains("Ford"),
            contains(""),
            contains(r"Sec(\x)*\d"),
        ] {
            let dead = d.dead();
            assert!(!d.is_accept(dead));
            for b in 0..TABLE_WIDTH as u8 {
                assert_eq!(d.next(dead, b), dead);
            }
            assert_eq!(d.next(dead, 0xFF), dead);
            // Out-of-alphabet bytes land in the cached dead state from
            // every state, matching the pre-cache linear-scan behavior.
            for s in 0..d.state_count() as u32 {
                assert_eq!(d.next(s, 0x80), dead);
            }
        }
    }

    #[test]
    fn empty_language_via_empty_pattern_containment() {
        // Containment of the empty string matches everything.
        let d = contains("");
        assert!(d.accepts(""));
        assert!(d.accepts("anything"));
    }

    #[test]
    fn state_count_reported() {
        let d = contains("President");
        // keyword of length 9 → about 11 states incl. dead/absorbing.
        assert!(
            d.state_count() >= 10 && d.state_count() <= 12,
            "{}",
            d.state_count()
        );
    }
}
