//! Left-anchor extraction for index-assisted query evaluation.
//!
//! §2.1 defines *anchored* regular expressions as those that begin or end
//! with words of the language (`no.(2|3)` is anchored, `(no|num).(2|8)` is
//! not). §5.3's evaluation probes the inverted index with the leading
//! dictionary word of the pattern — e.g. `Public Law (8|9)\d` is probed
//! with the term `public`.
//!
//! [`left_anchor`] returns the longest literal *word prefix* of a pattern:
//! the maximal run of letter characters that every match must begin with.
//! The caller looks it (case-folded) up in the term dictionary; a miss
//! falls back to a filescan.

use crate::regex::{Ast, ByteClass};

/// Longest literal prefix of the pattern (characters every match starts
/// with), cut at the first alternation/repetition/multi-byte class.
fn literal_prefix(ast: &Ast, out: &mut String) -> bool {
    // Returns true if the whole sub-AST was consumed as literal text (so a
    // following sibling may continue the prefix).
    match ast {
        Ast::Empty => true,
        Ast::Class(c) => {
            if c.len() == 1 {
                let b = c.iter().next().expect("len checked");
                out.push(b as char);
                true
            } else {
                false
            }
        }
        Ast::Concat(parts) => {
            for p in parts {
                if !literal_prefix(p, out) {
                    return false;
                }
            }
            true
        }
        // A Plus of a single literal guarantees at least one occurrence.
        Ast::Plus(inner) => {
            literal_prefix(inner, out);
            false
        }
        Ast::Alt(_) | Ast::Star(_) | Ast::Opt(_) => false,
    }
}

/// Extract the left-anchor *word* of a pattern: the leading alphabetic run
/// of its literal prefix, lowercased for dictionary lookup. Returns `None`
/// when the pattern is not left-anchored by a word of length ≥ 2 (single
/// letters are useless as index probes).
pub fn left_anchor(ast: &Ast) -> Option<String> {
    let mut prefix = String::new();
    literal_prefix(ast, &mut prefix);
    let word: String = prefix
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    (word.len() >= 2).then_some(word)
}

/// Extract the *required literal* of a pattern: the full literal prefix,
/// case-sensitive and including non-letters. Every string of the pattern's
/// language starts with this literal, so every line a containment query
/// accepts must *contain* it somewhere — which makes it a sound prescreen
/// filter for the scan kernel (a line without the literal has exactly zero
/// match probability). Returns `None` below length 2, where the filter
/// selects too little to pay for itself.
///
/// Unlike [`left_anchor`] (a lowercased dictionary *word* for index
/// probes), the required literal must stay byte-exact: the DFA it
/// prescreens for is case-sensitive.
pub fn required_literal(ast: &Ast) -> Option<String> {
    let mut prefix = String::new();
    literal_prefix(ast, &mut prefix);
    (prefix.len() >= 2).then_some(prefix)
}

/// Helper for checking whether a class is a single specific byte.
#[allow(dead_code)]
fn is_single(c: &ByteClass) -> bool {
    c.len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn anchor(pattern: &str) -> Option<String> {
        left_anchor(&parse(pattern).unwrap())
    }

    #[test]
    fn paper_example_public_law() {
        assert_eq!(anchor(r"Public Law (8|9)\d"), Some("public".to_string()));
    }

    #[test]
    fn keyword_is_its_own_anchor() {
        assert_eq!(anchor("President"), Some("president".to_string()));
    }

    #[test]
    fn anchor_stops_at_non_letter() {
        assert_eq!(anchor(r"U.S.C. 2\d\d\d"), None); // 'U' alone is too short
        assert_eq!(anchor(r"Sec(\x)*\d"), Some("sec".to_string()));
        assert_eq!(anchor(r"spontan(\x)*"), Some("spontan".to_string()));
    }

    #[test]
    fn unanchored_patterns_yield_none() {
        assert_eq!(anchor(r"(no|num)\d"), None);
        assert_eq!(anchor(r"\d\d"), None);
        assert_eq!(anchor(r"(\x)*Sec"), None);
        assert_eq!(anchor(""), None);
    }

    #[test]
    fn anchor_is_lowercased() {
        assert_eq!(anchor("Third Reich"), Some("third".to_string()));
    }

    #[test]
    fn plus_of_literal_contributes_once() {
        // 'ab+' guarantees the match starts with "ab".
        assert_eq!(anchor("ab+c"), Some("ab".to_string()));
    }

    #[test]
    fn opt_breaks_the_anchor() {
        // 'ab?c': matches may start "ac", so only 'a' is guaranteed — too
        // short to anchor.
        assert_eq!(anchor("ab?cdef"), None);
    }

    fn literal(pattern: &str) -> Option<String> {
        required_literal(&parse(pattern).unwrap())
    }

    #[test]
    fn required_literal_keeps_case_and_punctuation() {
        assert_eq!(literal(r"U.S.C. 2\d\d\d"), Some("U.S.C. 2".to_string()));
        assert_eq!(
            literal(r"Public Law (8|9)\d"),
            Some("Public Law ".to_string())
        );
        assert_eq!(literal("President"), Some("President".to_string()));
    }

    #[test]
    fn required_literal_stops_where_the_prefix_stops() {
        assert_eq!(literal(r"Sec(\x)*\d"), Some("Sec".to_string()));
        assert_eq!(literal("ab+c"), Some("ab".to_string()));
        assert_eq!(literal(r"(no|num)\d"), None);
        assert_eq!(literal(r"\d\d"), None);
        assert_eq!(literal("a"), None);
        assert_eq!(literal(""), None);
    }
}
