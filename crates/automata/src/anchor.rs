//! Left-anchor extraction for index-assisted query evaluation.
//!
//! §2.1 defines *anchored* regular expressions as those that begin or end
//! with words of the language (`no.(2|3)` is anchored, `(no|num).(2|8)` is
//! not). §5.3's evaluation probes the inverted index with the leading
//! dictionary word of the pattern — e.g. `Public Law (8|9)\d` is probed
//! with the term `public`.
//!
//! [`left_anchor`] returns the longest literal *word prefix* of a pattern:
//! the maximal run of letter characters that every match must begin with.
//! The caller looks it (case-folded) up in the term dictionary; a miss
//! falls back to a filescan.

use crate::regex::{Ast, ByteClass};

/// Longest literal prefix of the pattern (characters every match starts
/// with), cut at the first alternation/repetition/multi-byte class.
fn literal_prefix(ast: &Ast, out: &mut String) -> bool {
    // Returns true if the whole sub-AST was consumed as literal text (so a
    // following sibling may continue the prefix).
    match ast {
        Ast::Empty => true,
        Ast::Class(c) => {
            if c.len() == 1 {
                let b = c.iter().next().expect("len checked");
                out.push(b as char);
                true
            } else {
                false
            }
        }
        Ast::Concat(parts) => {
            for p in parts {
                if !literal_prefix(p, out) {
                    return false;
                }
            }
            true
        }
        // A Plus of a single literal guarantees at least one occurrence.
        Ast::Plus(inner) => {
            literal_prefix(inner, out);
            false
        }
        Ast::Alt(_) | Ast::Star(_) | Ast::Opt(_) => false,
    }
}

/// Extract the left-anchor *word* of a pattern: the leading alphabetic run
/// of its literal prefix, lowercased for dictionary lookup. Returns `None`
/// when the pattern is not left-anchored by a word of length ≥ 2 (single
/// letters are useless as index probes).
pub fn left_anchor(ast: &Ast) -> Option<String> {
    let mut prefix = String::new();
    literal_prefix(ast, &mut prefix);
    let word: String = prefix
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    (word.len() >= 2).then_some(word)
}

/// Helper for checking whether a class is a single specific byte.
#[allow(dead_code)]
fn is_single(c: &ByteClass) -> bool {
    c.len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn anchor(pattern: &str) -> Option<String> {
        left_anchor(&parse(pattern).unwrap())
    }

    #[test]
    fn paper_example_public_law() {
        assert_eq!(anchor(r"Public Law (8|9)\d"), Some("public".to_string()));
    }

    #[test]
    fn keyword_is_its_own_anchor() {
        assert_eq!(anchor("President"), Some("president".to_string()));
    }

    #[test]
    fn anchor_stops_at_non_letter() {
        assert_eq!(anchor(r"U.S.C. 2\d\d\d"), None); // 'U' alone is too short
        assert_eq!(anchor(r"Sec(\x)*\d"), Some("sec".to_string()));
        assert_eq!(anchor(r"spontan(\x)*"), Some("spontan".to_string()));
    }

    #[test]
    fn unanchored_patterns_yield_none() {
        assert_eq!(anchor(r"(no|num)\d"), None);
        assert_eq!(anchor(r"\d\d"), None);
        assert_eq!(anchor(r"(\x)*Sec"), None);
        assert_eq!(anchor(""), None);
    }

    #[test]
    fn anchor_is_lowercased() {
        assert_eq!(anchor("Third Reich"), Some("third".to_string()));
    }

    #[test]
    fn plus_of_literal_contributes_once() {
        // 'ab+' guarantees the match starts with "ab".
        assert_eq!(anchor("ab+c"), Some("ab".to_string()));
    }

    #[test]
    fn opt_breaks_the_anchor() {
        // 'ab?c': matches may start "ac", so only 'a' is guaranteed — too
        // short to anchor.
        assert_eq!(anchor("ab?cdef"), None);
    }
}
