//! Byte-class-compressed dense DFA: the scan kernel's transition table.
//!
//! [`crate::Dfa`] stores one 128-entry row per state — simple, but a query
//! DFA rarely distinguishes more than a few dozen byte values, so most of
//! each row is duplicated columns and every `run_from` walks a sparse
//! 512-byte stride per state. [`DenseDfa`] compresses the table at query
//! compile time:
//!
//! * all 256 byte values (ASCII plus the out-of-alphabet range, which the
//!   source DFA sends to its dead state) are grouped into equivalence
//!   classes — two bytes share a class iff every state maps them to the
//!   same successor;
//! * the transition table is flattened to one contiguous `q × k` `u32`
//!   array (`k` = class count, typically well under 32), indexed
//!   `state * k + class`, so the inner loop is two dependent loads over a
//!   table that usually fits in L1;
//! * each state is classified by its self-loop escape set: states no byte
//!   leaves (the dead state, absorbing accepts) stop a run immediately,
//!   and states exactly one byte value leaves — where keyword containment
//!   runs spend almost all their time — advance by a word-at-a-time
//!   search for that byte instead of per-byte table loads.
//!
//! The dense table is transition-for-transition equivalent to the source
//! [`crate::Dfa`] over **all** byte values — including ≥ 0x80, which both
//! send to the dead state — so results computed through either table are
//! identical.

use crate::dfa::{Dfa, TABLE_WIDTH};

/// Self-loop classification: no byte value leaves the state (dead and
/// absorbing-accept states) — a run can return immediately.
const ESC_NONE: u16 = 256;
/// Self-loop classification: two or more byte values leave the state —
/// the run walks the table byte by byte.
const ESC_MANY: u16 = 257;

/// A byte-class-compressed, contiguous-table DFA compiled from a [`Dfa`].
#[derive(Debug, Clone)]
pub struct DenseDfa {
    /// Byte → equivalence class, for all 256 byte values.
    classes: [u8; 256],
    /// Row-major `q × k` successor table: `table[s * k + c]`.
    table: Vec<u32>,
    /// Number of byte classes (`k`).
    num_classes: usize,
    /// Per-state self-loop escape: the single byte value that leaves the
    /// state, or [`ESC_NONE`] / [`ESC_MANY`]. Keyword containment DFAs
    /// spend almost all their time in the no-progress state, which only
    /// the pattern's first byte escapes — `run_from` can then skip ahead
    /// with a word-at-a-time byte search instead of two table loads per
    /// input byte.
    escape: Vec<u16>,
    accept: Vec<bool>,
    start: u32,
    dead: u32,
}

/// Position of the first `needle` byte in `hay`, word-at-a-time (the
/// classic SWAR zero-byte test, eight bytes per step). Shared by
/// [`DenseDfa::run_from`]'s self-loop skip and the scan kernel's
/// byte-presence prescreen.
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    const ONES: u64 = 0x0101_0101_0101_0101;
    const HIGHS: u64 = 0x8080_8080_8080_8080;
    let broadcast = u64::from(needle) * ONES;
    let mut i = 0;
    while i + 8 <= hay.len() {
        let w = u64::from_le_bytes(hay[i..i + 8].try_into().expect("width"));
        let x = w ^ broadcast;
        let hit = x.wrapping_sub(ONES) & !x & HIGHS;
        if hit != 0 {
            return Some(i + (hit.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == needle).map(|j| i + j)
}

impl DenseDfa {
    /// Compress `dfa` into a dense byte-class table. Cost is one pass over
    /// the 128-column table (`O(128 · q · k)`), paid once per compiled
    /// query.
    pub fn new(dfa: &Dfa) -> DenseDfa {
        let q = dfa.state_count();
        let dead = dfa.dead();
        let mut classes = [0u8; 256];
        // One representative column per class, in first-seen order.
        let mut reps: Vec<Vec<u32>> = Vec::new();
        let mut col: Vec<u32> = vec![0; q];
        // Column TABLE_WIDTH is the synthetic out-of-alphabet column: every
        // state maps bytes >= 0x80 to the dead state (see `Dfa::next`).
        for b in 0..=TABLE_WIDTH {
            for (s, slot) in col.iter_mut().enumerate() {
                *slot = if b < TABLE_WIDTH {
                    dfa.row(s as u32)[b]
                } else {
                    dead
                };
            }
            let id = match reps.iter().position(|r| *r == col) {
                Some(id) => id,
                None => {
                    reps.push(col.clone());
                    reps.len() - 1
                }
            } as u8;
            if b < TABLE_WIDTH {
                classes[b] = id;
            } else {
                for slot in classes.iter_mut().skip(TABLE_WIDTH) {
                    *slot = id;
                }
            }
        }
        let k = reps.len();
        let mut table = vec![0u32; q * k];
        for (c, rep) in reps.iter().enumerate() {
            for (s, &t) in rep.iter().enumerate() {
                table[s * k + c] = t;
            }
        }
        let escape = (0..q)
            .map(|s| {
                let mut esc = ESC_NONE;
                for b in 0..=255u8 {
                    if table[s * k + classes[b as usize] as usize] != s as u32 {
                        esc = if esc == ESC_NONE {
                            u16::from(b)
                        } else {
                            ESC_MANY
                        };
                        if esc == ESC_MANY {
                            break;
                        }
                    }
                }
                esc
            })
            .collect();
        DenseDfa {
            classes,
            table,
            num_classes: k,
            escape,
            accept: (0..q as u32).map(|s| dfa.is_accept(s)).collect(),
            start: dfa.start(),
            dead,
        }
    }

    /// Number of states (`q`), same as the source DFA.
    pub fn state_count(&self) -> usize {
        self.accept.len()
    }

    /// Number of byte equivalence classes (`k ≤ 129`).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// The dead state (absorbs every byte, never accepts).
    #[inline]
    pub fn dead(&self) -> u32 {
        self.dead
    }

    /// Whether `state` accepts.
    #[inline]
    pub fn is_accept(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// Transition: successor of `state` on byte `b` (any byte value).
    #[inline]
    pub fn next(&self, state: u32, b: u8) -> u32 {
        self.table[state as usize * self.num_classes + self.classes[b as usize] as usize]
    }

    /// Run the table over `input` from `state`.
    ///
    /// States that no byte escapes (the dead state, absorbing accept
    /// states) return immediately; states that exactly one byte value
    /// escapes — a keyword containment DFA's no-progress state, where
    /// such runs spend almost all their bytes — skip ahead to that
    /// byte's next occurrence with [`find_byte`] instead of walking the
    /// table. Both shortcuts leave the reached state exactly as the
    /// plain byte-by-byte walk would.
    #[inline]
    pub fn run_from(&self, mut state: u32, input: &[u8]) -> u32 {
        let mut i = 0;
        while i < input.len() {
            match self.escape[state as usize] {
                ESC_NONE => return state,
                ESC_MANY => {
                    state = self.next(state, input[i]);
                    i += 1;
                }
                esc => match find_byte(&input[i..], esc as u8) {
                    Some(j) => {
                        state = self.next(state, input[i + j]);
                        i += j + 1;
                    }
                    None => return state,
                },
            }
        }
        state
    }

    /// Whether the DFA accepts the full input.
    #[inline]
    pub fn matches(&self, input: &[u8]) -> bool {
        self.is_accept(self.run_from(self.start, input))
    }

    /// Advance a set of states (bit `s` = state `s` live; requires
    /// `q ≤ 64`) through `label` in one pass. Equivalent to the union of
    /// `run_from(s, label)` over every live `s`, but the walk is shared:
    /// states that converge mid-label are advanced once, and the moment
    /// the set collapses to a single state the rest of the label runs
    /// through the scalar loop. Containment DFAs collapse on the first
    /// out-of-pattern byte (every state falls back to the no-progress
    /// state), so this is near `O(len)` instead of `O(len · |set|)`.
    pub fn advance_mask(&self, mut set: u64, label: &[u8]) -> u64 {
        debug_assert!(self.state_count() <= 64);
        let mut i = 0;
        while i < label.len() {
            if set & set.wrapping_sub(1) == 0 {
                return match set {
                    0 => 0,
                    _ => 1u64 << self.run_from(set.trailing_zeros(), &label[i..]),
                };
            }
            let c = self.classes[label[i] as usize] as usize;
            let mut out = 0u64;
            let mut rem = set;
            while rem != 0 {
                let s = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                out |= 1u64 << self.table[s * self.num_classes + c];
            }
            set = out;
            i += 1;
        }
        set
    }

    /// Advance each entry of `states` through `label` in place, sharing
    /// the walk. Result is exactly `run_from(states[k], label)` for every
    /// slot (duplicates allowed, any `q`). Once all entries converge to
    /// one state — which containment DFAs do on the first out-of-pattern
    /// byte — the remaining bytes are walked once, not per entry.
    pub fn advance_states(&self, states: &mut [u32], label: &[u8]) {
        if states.is_empty() {
            return;
        }
        let mut i = 0;
        while i < label.len() {
            let first = states[0];
            if states.iter().all(|&s| s == first) {
                let fin = self.run_from(first, &label[i..]);
                states.fill(fin);
                return;
            }
            let c = self.classes[label[i] as usize] as usize;
            for s in states.iter_mut() {
                *s = self.table[*s as usize * self.num_classes + c];
            }
            i += 1;
        }
    }

    /// Compose `label` into a full `state → state` transition vector:
    /// `out[s]` = the state reached from `s` after consuming all of
    /// `label`. `out` is overwritten and resized to `q`.
    ///
    /// Walking column-by-column over all states at once is equivalent to
    /// `q` independent `run_from` calls but touches each class column
    /// sequentially, and costs `O(len · q)` *once* per distinct label
    /// instead of per (row, state) pair in the evaluation DP.
    pub fn compose_label(&self, label: &[u8], out: &mut Vec<u32>) {
        let q = self.state_count();
        out.clear();
        out.extend(0..q as u32);
        for &b in label {
            let c = self.classes[b as usize] as usize;
            for s in out.iter_mut() {
                *s = self.table[*s as usize * self.num_classes + c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn dense(pattern: &str, containment: bool) -> (Dfa, DenseDfa) {
        let ast = parse(pattern).unwrap();
        let dfa = if containment {
            Dfa::compile_containment(&ast)
        } else {
            Dfa::compile(&ast)
        };
        let d = DenseDfa::new(&dfa);
        (dfa, d)
    }

    #[test]
    fn dense_agrees_with_dfa_on_every_transition() {
        for (pat, containment) in [
            ("Ford", true),
            (r"U.S.C. 2\d\d\d", true),
            (r"Sec(\x)*\d", true),
            ("a(b|c)*d", false),
            ("", true),
        ] {
            let (dfa, dense) = dense(pat, containment);
            assert_eq!(dense.state_count(), dfa.state_count());
            assert_eq!(dense.start(), dfa.start());
            assert_eq!(dense.dead(), dfa.dead());
            for s in 0..dfa.state_count() as u32 {
                assert_eq!(dense.is_accept(s), dfa.is_accept(s));
                for b in 0..=255u8 {
                    assert_eq!(dense.next(s, b), dfa.next(s, b), "{pat:?} s={s} b={b}");
                }
            }
        }
    }

    #[test]
    fn class_count_is_small_for_typical_queries() {
        let (_, d) = dense("President", true);
        // Distinct letters of the keyword + everything-else + dead column.
        assert!(d.num_classes() <= 12, "{} classes", d.num_classes());
        assert!(d.num_classes() >= 2);
    }

    #[test]
    fn run_from_matches_dfa_run_even_with_non_ascii() {
        let (dfa, d) = dense("Ford", true);
        for input in ["a Ford pickup", "no match", "", "F\u{00e9}ord Ford"] {
            assert_eq!(
                d.run_from(d.start(), input.as_bytes()),
                dfa.run_from(dfa.start(), input),
                "{input:?}"
            );
            assert_eq!(d.matches(input.as_bytes()), dfa.accepts(input));
        }
    }

    #[test]
    fn compose_label_equals_per_state_runs() {
        let (dfa, d) = dense(r"Public Law (8|9)\d", true);
        let mut out = Vec::new();
        for label in ["Pub", "lic", " Law 89", "zz", "", "\u{00ff}x"] {
            d.compose_label(label.as_bytes(), &mut out);
            assert_eq!(out.len(), dfa.state_count());
            for s in 0..dfa.state_count() as u32 {
                assert_eq!(out[s as usize], dfa.run_from(s, label), "{label:?} s={s}");
            }
        }
    }

    #[test]
    fn advance_mask_equals_per_state_runs() {
        for (pat, containment) in [
            ("Ford", true),
            (r"Public Law (8|9)\d", true),
            ("abc", false),
        ] {
            let (dfa, d) = dense(pat, containment);
            let q = dfa.state_count() as u32;
            assert!(q <= 64);
            for label in ["Pub", "zzzz", "Ford", " Law 89", "", "ab\u{00ff}c"] {
                for set in [
                    1u64 << d.start(),
                    (1u64 << q) - 1,
                    0,
                    0b101 & ((1 << q) - 1),
                ] {
                    let mut expect = 0u64;
                    for s in 0..q {
                        if set & (1 << s) != 0 {
                            expect |= 1u64 << dfa.run_from(s, label);
                        }
                    }
                    assert_eq!(
                        d.advance_mask(set, label.as_bytes()),
                        expect,
                        "{pat:?} {label:?} set={set:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn advance_states_equals_per_state_runs() {
        for (pat, containment) in [
            ("Ford", true),
            (r"Public Law (8|9)\d", true),
            (r"Sec(\x)*\d", true),
            ("abc", false),
        ] {
            let (dfa, d) = dense(pat, containment);
            let q = dfa.state_count() as u32;
            for label in ["Sec 9", "zz zz zz", "", "S", " Law 89", "ab\u{00ff}c"] {
                // Duplicates and arbitrary order are allowed.
                let mut states: Vec<u32> = (0..q).chain([0, q / 2, q - 1]).rev().collect();
                let expect: Vec<u32> = states.iter().map(|&s| dfa.run_from(s, label)).collect();
                d.advance_states(&mut states, label.as_bytes());
                assert_eq!(states, expect, "{pat:?} {label:?}");
                d.advance_states(&mut [], label.as_bytes());
            }
        }
    }

    #[test]
    fn escape_shortcuts_match_reference_runs() {
        // Long inputs exercise the word-at-a-time skip (≥ 8 bytes per
        // step), matches exercise the absorbing-accept early return, and
        // `\u{00ff}` the out-of-alphabet column.
        for (pat, containment) in [("the", true), (r"Public Law (8|9)\d", true), ("the", false)] {
            let (dfa, d) = dense(pat, containment);
            for input in [
                "a line with no pattern bytes at all, just prose............",
                "ttttttttttttttttttthe pattern appears mid-line and then more text",
                "the start",
                "ends with the",
                "t-h-e split up, then Public Law 89 and trailing text after a match",
                "short",
                "",
                "high bytes \u{00ff}\u{00ff} interleaved \u{00ff} with text",
            ] {
                for s in 0..dfa.state_count() as u32 {
                    assert_eq!(
                        d.run_from(s, input.as_bytes()),
                        dfa.run_from(s, input),
                        "{pat:?} (containment={containment}) from {s} over {input:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn dead_break_does_not_change_results() {
        // Exact-match DFAs hit the dead state quickly; the early break in
        // run_from must be invisible.
        let (dfa, d) = dense("abc", false);
        for input in ["abcd", "zabc", "abc", "ab"] {
            assert_eq!(d.matches(input.as_bytes()), dfa.accepts(input));
        }
    }
}
