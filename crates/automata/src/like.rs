//! SQL `LIKE` pattern support.
//!
//! Staccato's user-facing surface is the `LIKE` predicate
//! (`DocData LIKE '%Ford%'`, Figure 1C). A `LIKE` pattern is translated to
//! the same [`Ast`] the regex dialect produces:
//!
//! * `%` — any sequence of zero or more characters (`(\x)*`);
//! * `_` — any single character (`\x`);
//! * `\%`, `\_`, `\\` — escaped literals;
//! * everything else matches itself.
//!
//! A full-string `LIKE` match over the whole document is the *exact-match*
//! DFA of the translated AST; the common `'%p%'` form reduces to the
//! containment DFA of `p`.

use crate::error::PatternError;
use crate::regex::{Ast, ByteClass};
use crate::{ALPHA_HI, ALPHA_LO};

/// Translate a `LIKE` pattern into a regex [`Ast`] with exact-match
/// semantics over the whole document string.
pub fn like_to_ast(pattern: &str) -> Result<Ast, PatternError> {
    if !pattern.is_ascii() {
        return Err(PatternError::new(0, "LIKE pattern must be ASCII"));
    }
    let bytes = pattern.as_bytes();
    let mut parts: Vec<Ast> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'%' => parts.push(Ast::Star(Box::new(Ast::Class(ByteClass::any())))),
            b'_' => parts.push(Ast::Class(ByteClass::any())),
            b'\\' => {
                i += 1;
                let esc = *bytes
                    .get(i)
                    .ok_or_else(|| PatternError::new(i - 1, "dangling escape in LIKE"))?;
                parts.push(Ast::Class(ByteClass::single(esc)));
            }
            _ => {
                if !(ALPHA_LO..=ALPHA_HI).contains(&b) {
                    return Err(PatternError::new(i, "byte outside printable ASCII"));
                }
                parts.push(Ast::Class(ByteClass::single(b)));
            }
        }
        i += 1;
    }
    Ok(match parts.len() {
        0 => Ast::Empty,
        1 => parts.pop().expect("one part"),
        _ => Ast::Concat(parts),
    })
}

/// If the pattern has the common `'%inner%'` shape with no other
/// metacharacters, return the inner literal — queries of this shape run as
/// plain containment of a keyword, the fast path of every engine.
pub fn like_inner_literal(pattern: &str) -> Option<&str> {
    let inner = pattern.strip_prefix('%')?.strip_suffix('%')?;
    if inner.bytes().any(|b| matches!(b, b'%' | b'_' | b'\\')) {
        return None;
    }
    Some(inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;

    fn like_dfa(pattern: &str) -> Dfa {
        Dfa::compile(&like_to_ast(pattern).unwrap())
    }

    #[test]
    fn percent_wraps_match_anywhere() {
        let d = like_dfa("%Ford%");
        assert!(d.accepts("my Ford car"));
        assert!(d.accepts("Ford"));
        assert!(!d.accepts("my F0rd car"));
    }

    #[test]
    fn underscore_matches_single_char() {
        let d = like_dfa("F_rd");
        assert!(d.accepts("Ford"));
        assert!(d.accepts("F0rd"));
        assert!(!d.accepts("Frd"));
        assert!(!d.accepts("Foord"));
    }

    #[test]
    fn escapes_are_literal() {
        let d = like_dfa(r"100\%");
        assert!(d.accepts("100%"));
        assert!(!d.accepts("1000"));
    }

    #[test]
    fn no_wildcards_is_exact_match() {
        let d = like_dfa("Ford");
        assert!(d.accepts("Ford"));
        assert!(!d.accepts("a Ford"));
    }

    #[test]
    fn inner_literal_extraction() {
        assert_eq!(like_inner_literal("%Ford%"), Some("Ford"));
        assert_eq!(like_inner_literal("%Fo_d%"), None);
        assert_eq!(like_inner_literal("Ford%"), None);
        assert_eq!(like_inner_literal("%Ford"), None);
        assert_eq!(like_inner_literal("%%"), Some(""));
    }

    #[test]
    fn dangling_escape_rejected() {
        assert!(like_to_ast("abc\\").is_err());
    }

    #[test]
    fn empty_pattern_matches_empty_string() {
        let d = like_dfa("");
        assert!(d.accepts(""));
        assert!(!d.accepts("x"));
    }
}
