//! Parser for the paper's regular-expression dialect.
//!
//! The queries in the evaluation (Table 6) use keywords plus a small regex
//! vocabulary. The dialect implemented here:
//!
//! * plain characters match themselves — including `.`, which the paper
//!   writes literally in queries like `U.S.C. 2\d\d\d`;
//! * `\d` — any ASCII digit;
//! * `\x` — any character of the alphabet (printable ASCII), the paper's
//!   wildcard in `Sec(\x)*\d`;
//! * `\s` — a space;
//! * `\\`, `\(`, `\)`, `\|`, `\*`, `\+`, `\?`, `\[`, `\]` — escaped
//!   metacharacters;
//! * `(...)` grouping, `|` alternation, `*` `+` `?` repetition;
//! * `[a-z0-9]` character classes (ranges and singletons; `[^...]` negates
//!   within the alphabet).
//!
//! The parser is a hand-written recursive descent over bytes; patterns must
//! be ASCII.

use crate::error::PatternError;
use crate::{ALPHA_HI, ALPHA_LO};

/// A set of alphabet bytes, as a 128-bit mask over ASCII.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteClass {
    bits: [u64; 2],
}

impl ByteClass {
    /// The empty class.
    pub const fn empty() -> Self {
        ByteClass { bits: [0, 0] }
    }

    /// Class containing a single byte.
    pub fn single(b: u8) -> Self {
        let mut c = Self::empty();
        c.insert(b);
        c
    }

    /// Every byte of the query alphabet (printable ASCII).
    pub fn any() -> Self {
        let mut c = Self::empty();
        for b in ALPHA_LO..=ALPHA_HI {
            c.insert(b);
        }
        c
    }

    /// ASCII digits `0-9`.
    pub fn digits() -> Self {
        let mut c = Self::empty();
        for b in b'0'..=b'9' {
            c.insert(b);
        }
        c
    }

    /// Add a byte to the class.
    pub fn insert(&mut self, b: u8) {
        debug_assert!(b < 128);
        self.bits[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Whether the class contains `b`.
    pub fn contains(&self, b: u8) -> bool {
        b < 128 && self.bits[(b >> 6) as usize] >> (b & 63) & 1 == 1
    }

    /// Complement within the query alphabet.
    pub fn negate(&self) -> Self {
        let mut c = Self::empty();
        for b in ALPHA_LO..=ALPHA_HI {
            if !self.contains(b) {
                c.insert(b);
            }
        }
        c
    }

    /// Number of bytes in the class.
    pub fn len(&self) -> u32 {
        self.bits[0].count_ones() + self.bits[1].count_ones()
    }

    /// Whether the class is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == [0, 0]
    }

    /// Iterate the member bytes in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u8..128).filter(move |&b| self.contains(b))
    }
}

impl std::fmt::Debug for ByteClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteClass[")?;
        for b in self.iter() {
            write!(f, "{}", b as char)?;
        }
        write!(f, "]")
    }
}

/// Regular-expression abstract syntax tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the class.
    Class(ByteClass),
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Zero or more repetitions.
    Star(Box<Ast>),
    /// One or more repetitions.
    Plus(Box<Ast>),
    /// Zero or one occurrence.
    Opt(Box<Ast>),
}

impl Ast {
    /// Convenience: a literal string as a concatenation of single-byte
    /// classes. Panics on non-ASCII input (callers validate first).
    pub fn literal(s: &str) -> Ast {
        assert!(s.is_ascii(), "patterns are ASCII");
        Ast::Concat(
            s.bytes()
                .map(|b| Ast::Class(ByteClass::single(b)))
                .collect(),
        )
    }

    /// Minimum length of any string in the language — used by index
    /// projection to bound how far a match can extend.
    pub fn min_len(&self) -> usize {
        match self {
            Ast::Empty => 0,
            Ast::Class(_) => 1,
            Ast::Concat(parts) => parts.iter().map(Ast::min_len).sum(),
            Ast::Alt(parts) => parts.iter().map(Ast::min_len).min().unwrap_or(0),
            Ast::Star(_) => 0,
            Ast::Plus(inner) => inner.min_len(),
            Ast::Opt(_) => 0,
        }
    }

    /// Maximum length of any string in the language, or `None` if the
    /// language is infinite (`*` / `+`).
    pub fn max_len(&self) -> Option<usize> {
        match self {
            Ast::Empty => Some(0),
            Ast::Class(_) => Some(1),
            Ast::Concat(parts) => parts
                .iter()
                .map(Ast::max_len)
                .try_fold(0usize, |a, b| b.map(|b| a + b)),
            Ast::Alt(parts) => parts
                .iter()
                .map(Ast::max_len)
                .try_fold(0usize, |a, b| b.map(|b| a.max(b))),
            Ast::Star(_) | Ast::Plus(_) => None,
            Ast::Opt(inner) => inner.max_len(),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a pattern in the paper's dialect into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, PatternError> {
    if !pattern.is_ascii() {
        return Err(PatternError::new(0, "pattern must be ASCII"));
    }
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alt()?;
    if p.pos != p.bytes.len() {
        return Err(PatternError::new(p.pos, "unexpected ')'"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn alt(&mut self) -> Result<Ast, PatternError> {
        let mut parts = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            parts.push(self.concat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Ast::Alt(parts)
        })
    }

    fn concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, PatternError> {
        let mut node = self.atom()?;
        while let Some(b) = self.peek() {
            node = match b {
                b'*' => Ast::Star(Box::new(node)),
                b'+' => Ast::Plus(Box::new(node)),
                b'?' => Ast::Opt(Box::new(node)),
                _ => break,
            };
            self.bump();
        }
        Ok(node)
    }

    fn atom(&mut self) -> Result<Ast, PatternError> {
        let start = self.pos;
        let b = self
            .bump()
            .ok_or_else(|| PatternError::new(start, "unexpected end"))?;
        match b {
            b'(' => {
                let inner = self.alt()?;
                if self.bump() != Some(b')') {
                    return Err(PatternError::new(start, "unbalanced '('"));
                }
                Ok(inner)
            }
            b'[' => self.class(start),
            b'\\' => {
                let esc = self
                    .bump()
                    .ok_or_else(|| PatternError::new(start, "dangling escape"))?;
                match esc {
                    b'd' => Ok(Ast::Class(ByteClass::digits())),
                    b'x' => Ok(Ast::Class(ByteClass::any())),
                    b's' => Ok(Ast::Class(ByteClass::single(b' '))),
                    b'\\' | b'(' | b')' | b'|' | b'*' | b'+' | b'?' | b'[' | b']' | b'.' => {
                        Ok(Ast::Class(ByteClass::single(esc)))
                    }
                    other => Err(PatternError::new(
                        start,
                        format!("unknown escape '\\{}'", other as char),
                    )),
                }
            }
            b'*' | b'+' | b'?' => Err(PatternError::new(
                start,
                "repetition operator with nothing to repeat",
            )),
            b')' => Err(PatternError::new(start, "unbalanced ')'")),
            _ => {
                if !(ALPHA_LO..=ALPHA_HI).contains(&b) {
                    return Err(PatternError::new(start, "byte outside printable ASCII"));
                }
                Ok(Ast::Class(ByteClass::single(b)))
            }
        }
    }

    fn class(&mut self, start: usize) -> Result<Ast, PatternError> {
        let mut set = ByteClass::empty();
        let negate = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        loop {
            let b = match self.bump() {
                None => return Err(PatternError::new(start, "unbalanced '['")),
                Some(b']') => break,
                Some(b) => b,
            };
            let lo = if b == b'\\' {
                self.bump()
                    .ok_or_else(|| PatternError::new(start, "dangling escape"))?
            } else {
                b
            };
            if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hi = self
                    .bump()
                    .ok_or_else(|| PatternError::new(start, "unterminated range"))?;
                if hi < lo {
                    return Err(PatternError::new(start, "reversed range"));
                }
                for x in lo..=hi {
                    set.insert(x);
                }
            } else {
                set.insert(lo);
            }
        }
        if set.is_empty() {
            return Err(PatternError::new(start, "empty character class"));
        }
        Ok(Ast::Class(if negate { set.negate() } else { set }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_parses_to_concat_of_singles() {
        let ast = parse("Ford").unwrap();
        match ast {
            Ast::Concat(parts) => {
                assert_eq!(parts.len(), 4);
                assert_eq!(parts[0], Ast::Class(ByteClass::single(b'F')));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_query_usc_parses() {
        // CA2 from Table 4. '.' is literal in the dialect.
        let ast = parse(r"U.S.C. 2\d\d\d").unwrap();
        assert_eq!(ast.min_len(), 11);
        assert_eq!(ast.max_len(), Some(11));
    }

    #[test]
    fn paper_query_sec_wildcard_parses() {
        // DB2 from Table 4: Sec(\x)*\d — unbounded.
        let ast = parse(r"Sec(\x)*\d").unwrap();
        assert_eq!(ast.min_len(), 4);
        assert_eq!(ast.max_len(), None);
    }

    #[test]
    fn paper_query_public_law_parses() {
        let ast = parse(r"Public Law (8|9)\d").unwrap();
        assert_eq!(ast.min_len(), 13);
        assert_eq!(ast.max_len(), Some(13));
    }

    #[test]
    fn alternation_and_repetition_nest() {
        let ast = parse("a(b|c)*d+e?").unwrap();
        assert_eq!(ast.min_len(), 2); // a d
        assert_eq!(ast.max_len(), None);
    }

    #[test]
    fn class_ranges_and_negation() {
        let Ast::Class(c) = parse("[a-c]").unwrap() else {
            panic!("expected class")
        };
        assert!(c.contains(b'a') && c.contains(b'b') && c.contains(b'c'));
        assert!(!c.contains(b'd'));
        let Ast::Class(n) = parse("[^a-c]").unwrap() else {
            panic!("expected class")
        };
        assert!(!n.contains(b'a'));
        assert!(n.contains(b'd'));
        assert!(n.contains(b' '));
    }

    #[test]
    fn escapes_are_literal() {
        let Ast::Class(c) = parse(r"\*").unwrap() else {
            panic!("expected class")
        };
        assert!(c.contains(b'*'));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn errors_are_positioned() {
        assert_eq!(parse("a(b").unwrap_err().position, 1);
        assert!(parse("*a").unwrap_err().message.contains("repetition"));
        assert!(parse("a)").unwrap_err().message.contains("')'"));
        assert!(parse("[z-a]").unwrap_err().message.contains("reversed"));
        assert!(parse(r"\q").unwrap_err().message.contains("unknown escape"));
        assert!(parse("[]")
            .unwrap_err()
            .message
            .contains("empty character class"));
        assert!(parse("[ab").unwrap_err().message.contains("unbalanced '['"));
        assert!(parse("héllo").unwrap_err().message.contains("ASCII"));
    }

    #[test]
    fn empty_pattern_is_empty_ast() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        assert_eq!(
            parse("a|").unwrap(),
            Ast::Alt(vec![Ast::Class(ByteClass::single(b'a')), Ast::Empty])
        );
    }

    #[test]
    fn byteclass_basic_ops() {
        let any = ByteClass::any();
        assert_eq!(any.len(), (ALPHA_HI - ALPHA_LO + 1) as u32);
        assert!(any.contains(b' '));
        assert!(any.contains(b'~'));
        assert!(!any.contains(0x1F));
        let d = ByteClass::digits();
        assert_eq!(d.len(), 10);
        assert_eq!(
            d.iter().collect::<Vec<_>>(),
            (b'0'..=b'9').collect::<Vec<_>>()
        );
        assert_eq!(d.negate().len(), any.len() - 10);
    }

    #[test]
    fn literal_helper_min_max() {
        let ast = Ast::literal("President");
        assert_eq!(ast.min_len(), 9);
        assert_eq!(ast.max_len(), Some(9));
    }
}
