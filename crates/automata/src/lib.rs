//! # staccato-automata
//!
//! Deterministic finite automata for Staccato's query language.
//!
//! The paper's queries are SQL `LIKE` predicates and a small regular-
//! expression dialect (keywords, `\d` for digits, `\x` for any character,
//! alternation, Kleene star), which Staccato "translates into a DFA using
//! standard techniques [Hopcroft–Motwani–Ullman]" (§2.1). This crate is
//! that compiler, written from scratch:
//!
//! * [`regex`] — parser for the paper's dialect into an AST;
//! * [`like`] — SQL `LIKE` patterns (`%`, `_`) translated to the same AST;
//! * [`nfa`] — Thompson construction;
//! * [`dfa`] — subset construction, Moore minimization, and the
//!   *containment closure* `Σ* · L(R) · Σ*` with absorbing accept states,
//!   which is the form queries take when asking "does the document contain
//!   a match" over probabilistic text;
//! * [`dense`] — byte-class-compressed dense transition tables, the form
//!   the scan kernel executes;
//! * [`trie`] — the dictionary trie-automaton of §4 (a DFA with one final
//!   state per dictionary term) used to build the inverted index;
//! * [`anchor`] — left-anchor extraction for index-assisted evaluation of
//!   anchored regular expressions (§2.1, §5.3).
//!
//! The alphabet is printable ASCII (`0x20..=0x7E`), matching the OCR
//! channel's output alphabet.

pub mod anchor;
pub mod dense;
pub mod dfa;
pub mod error;
pub mod like;
pub mod nfa;
pub mod regex;
pub mod trie;

pub use anchor::{left_anchor, required_literal};
pub use dense::{find_byte, DenseDfa};
pub use dfa::Dfa;
pub use error::PatternError;
pub use like::like_to_ast;
pub use nfa::Nfa;
pub use regex::{parse, Ast, ByteClass};
pub use trie::{TermId, Trie};

/// Lowest byte of the query alphabet (space).
pub const ALPHA_LO: u8 = 0x20;
/// Highest byte of the query alphabet (`~`).
pub const ALPHA_HI: u8 = 0x7E;
