//! The dictionary trie-automaton of §4.
//!
//! "A dictionary of about 60,000 terms … was converted to a prefix-trie
//! automaton, and used for index construction." The trie is a DFA with one
//! final state per term; the index builder (Algorithms 3–4) advances trie
//! states over SFA emissions, starting a fresh walk at every offset and
//! carrying in-flight walks across edges as *augmented states*.
//!
//! Matching is case-insensitive (terms are stored folded to lowercase), and
//! a match only counts at a word boundary on the left — the builder
//! enforces that; the trie itself just answers state-machine questions.

use std::collections::HashMap;

/// Identifier of a dictionary term (index into the term list).
pub type TermId = u32;

/// Trie state id. State 0 is the root.
pub type TrieState = u32;

#[derive(Debug, Default, Clone)]
struct Node {
    /// Sorted by byte for binary search; children are (byte, state).
    children: Vec<(u8, TrieState)>,
    /// Term ending at this node, if any.
    terminal: Option<TermId>,
}

/// A prefix-trie automaton over lowercase ASCII terms.
#[derive(Debug, Clone)]
pub struct Trie {
    nodes: Vec<Node>,
    terms: Vec<String>,
}

impl Trie {
    /// Build a trie from a dictionary. Terms are folded to lowercase and
    /// deduplicated; empty and non-ASCII terms are skipped.
    pub fn build<I, S>(terms: I) -> Trie
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut trie = Trie {
            nodes: vec![Node::default()],
            terms: Vec::new(),
        };
        let mut seen: HashMap<String, ()> = HashMap::new();
        for term in terms {
            let folded = term.as_ref().to_ascii_lowercase();
            if folded.is_empty() || !folded.is_ascii() {
                continue;
            }
            if seen.insert(folded.clone(), ()).is_some() {
                continue;
            }
            let id = trie.terms.len() as TermId;
            trie.terms.push(folded.clone());
            let mut state: TrieState = 0;
            for b in folded.bytes() {
                state = match trie.child(state, b) {
                    Some(next) => next,
                    None => {
                        let next = trie.nodes.len() as TrieState;
                        trie.nodes.push(Node::default());
                        let node = &mut trie.nodes[state as usize];
                        let pos = node
                            .children
                            .binary_search_by_key(&b, |&(c, _)| c)
                            .expect_err("child absent");
                        node.children.insert(pos, (b, next));
                        next
                    }
                };
            }
            trie.nodes[state as usize].terminal = Some(id);
        }
        trie
    }

    fn child(&self, state: TrieState, b: u8) -> Option<TrieState> {
        let node = &self.nodes[state as usize];
        node.children
            .binary_search_by_key(&b, |&(c, _)| c)
            .ok()
            .map(|i| node.children[i].1)
    }

    /// The root state.
    pub fn root(&self) -> TrieState {
        0
    }

    /// Advance one (case-folded) byte; `None` means the walk dies.
    #[inline]
    pub fn step(&self, state: TrieState, b: u8) -> Option<TrieState> {
        self.child(state, b.to_ascii_lowercase())
    }

    /// The term that ends exactly at `state`, if any.
    #[inline]
    pub fn terminal(&self, state: TrieState) -> Option<TermId> {
        self.nodes[state as usize].terminal
    }

    /// Look up a whole term, returning its id.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        let mut state = self.root();
        for b in term.bytes() {
            state = self.step(state, b)?;
        }
        self.terminal(state)
    }

    /// The term text for an id.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of trie states (§4's construction is linear in this).
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trie {
        Trie::build(["public", "law", "president", "pub", "laws"])
    }

    #[test]
    fn lookup_finds_exact_terms() {
        let t = sample();
        assert!(t.lookup("public").is_some());
        assert!(t.lookup("law").is_some());
        assert!(t.lookup("laws").is_some());
        assert!(t.lookup("pub").is_some());
        assert!(t.lookup("lawx").is_none());
        assert!(t.lookup("la").is_none());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let t = sample();
        assert_eq!(t.lookup("Public"), t.lookup("PUBLIC"));
        assert!(t.lookup("PrEsIdEnT").is_some());
    }

    #[test]
    fn prefixes_share_states() {
        let t = Trie::build(["law", "laws"]);
        // l-a-w-s plus root = 5 states.
        assert_eq!(t.state_count(), 5);
        assert_eq!(t.term_count(), 2);
    }

    #[test]
    fn step_walks_incrementally() {
        let t = sample();
        let mut s = t.root();
        for b in b"pub" {
            s = t.step(s, *b).unwrap();
        }
        assert_eq!(t.terminal(s).map(|id| t.term(id)), Some("pub"));
        // Continue to "public".
        for b in b"lic" {
            s = t.step(s, *b).unwrap();
        }
        assert_eq!(t.terminal(s).map(|id| t.term(id)), Some("public"));
        assert!(t.step(s, b'z').is_none());
    }

    #[test]
    fn duplicates_and_empties_skipped() {
        let t = Trie::build(["a", "A", "", "a"]);
        assert_eq!(t.term_count(), 1);
    }

    #[test]
    fn large_dictionary_scales() {
        // Synthetic 10k-term dictionary; state count stays linear.
        let terms: Vec<String> = (0..10_000).map(|i| format!("term{i:05}")).collect();
        let t = Trie::build(&terms);
        assert_eq!(t.term_count(), 10_000);
        assert!(t.lookup("term04217").is_some());
        assert!(t.lookup("term10000").is_none());
        assert!(t.state_count() < 60_000);
    }
}
