//! Pattern-compilation errors.

use std::fmt;

/// Error produced while parsing a regex or LIKE pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Byte offset in the pattern where the problem was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl PatternError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        PatternError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = PatternError::new(3, "unbalanced parenthesis");
        assert!(e.to_string().contains("byte 3"));
        assert!(e.to_string().contains("unbalanced"));
    }
}
