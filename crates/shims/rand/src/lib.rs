//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this in-tree shim
//! provides exactly the surface the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension trait with
//! `random_bool` / `random_range` — with the same names and signatures as
//! rand 0.9's `Rng`-family API. The generator is xoshiro256** seeded via
//! SplitMix64: deterministic per seed, which is all the corpus generators
//! and property tests require. Swap this crate for the registry `rand`
//! when a network is available; no call sites need to change.

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for `StdRng`).
    type Seed;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (the same
    /// expansion rand uses, so small seeds still decorrelate streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range. Panics if empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring rand 0.9's `Rng`.
pub trait RngExt: RngCore {
    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits → f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    ///
    /// Not cryptographic — neither is the statistical `StdRng` use in this
    /// workspace (corpus synthesis and property tests).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| super::RngCore::next_u64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| super::RngCore::next_u64(&mut b)).collect();
        let zs: Vec<u64> = (0..8).map(|_| super::RngCore::next_u64(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.random_range(0x20..=0x7Eu8);
            assert!((0x20..=0x7E).contains(&w));
        }
    }

    #[test]
    fn random_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
