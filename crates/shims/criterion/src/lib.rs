//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the `staccato-bench` targets
//! use — [`Criterion::benchmark_group`], `sample_size`,
//! `measurement_time`, `bench_function`, `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! median-of-N wall-clock timer printed to stdout. Statistical analysis,
//! plots, and HTML reports are out of scope; swap this crate for the
//! registry `criterion` when a network is available.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test`/`cargo bench` pass filter/--test args; any arg we
        // don't understand switches to one-iteration smoke mode so CI
        // never burns minutes inside the shim.
        let quick = std::env::args().skip(1).any(|a| a != "--bench");
        Criterion { quick }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let samples = if self.quick { 1 } else { 10 };
        run_one(&id.into(), samples, Duration::from_secs(3), &mut f);
        self
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft cap on total measurement wall time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let samples = if self.criterion.quick {
            1
        } else {
            self.sample_size
        };
        run_one(
            &format!("{}/{}", self.name, id.into()),
            samples,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// End the group (parity with criterion; nothing to flush here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, f: &mut F) {
    let mut b = Bencher {
        sample: Duration::ZERO,
    };
    let mut times = Vec::with_capacity(samples);
    let started = Instant::now();
    for _ in 0..samples {
        f(&mut b);
        times.push(b.sample);
        if started.elapsed() > budget {
            break; // honour measurement_time as a soft cap
        }
    }
    times.sort();
    let median = times[times.len() / 2];
    println!("  {id:<40} median {median:?} ({} samples)", times.len());
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    sample: Duration,
}

impl Bencher {
    /// Time one sample of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.sample = start.elapsed();
        drop(out);
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export parity: criterion exposes its own `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_sample() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u32;
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran >= 1);
    }
}
