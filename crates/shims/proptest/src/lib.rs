//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset `tests/properties.rs` uses: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive`, tuple and range strategies,
//! `any::<T>()` for primitives, `prop::collection::vec`,
//! `prop::sample::select`, character-class string strategies
//! (`"[a-z0-9]{1,3}"`), and the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] macros. Cases are generated from a deterministic
//! per-test RNG; failing inputs are reported via panic message but NOT
//! shrunk — swap this crate for the registry `proptest` when a network
//! is available.

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::sync::Arc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Generation interface: no shrinking, just sampling.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf; `branch` wraps a
    /// strategy for subtrees into a strategy for one more level.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf: BoxedStrategy<Self::Value> = self.clone().boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Each level is a coin flip between bottoming out at a leaf
            // and growing one more ply, like proptest's weighted lazy
            // recursion but materialised to a fixed depth.
            cur = OneOf {
                options: vec![leaf.clone(), branch(cur).boxed()],
            }
            .boxed();
        }
        cur
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
pub struct OneOf<T> {
    /// The alternatives; chosen uniformly.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ------------------------------------------------------ leaf strategies --

/// `any::<T>()` marker (proptest's `Arbitrary`).
#[derive(Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform values of a primitive type.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $S:ident),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
}

/// `&str` character-class patterns like `"[a-z0-9]{1,3}"` are strategies
/// producing matching strings. Only `[class]{lo,hi}` (and a bare
/// `[class]`, meaning one char) is supported — the subset this workspace
/// uses; anything else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!(
                "unsupported pattern strategy {self:?} (shim supports only \"[class]{{lo,hi}}\")"
            )
        });
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    Some((alphabet, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

// ------------------------------------------------------------ modules --

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::RngExt;

        /// Strategy for `Vec`s with a length in `count`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            count: std::ops::Range<usize>,
        }

        /// `vec(element, lo..hi)`.
        pub fn vec<S: Strategy>(element: S, count: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, count }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.random_range(self.count.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::RngExt;

        /// Uniform choice from a fixed set.
        #[derive(Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// `select(&[..])` / `select(vec![..])`.
        pub fn select<T: Clone, I: AsRef<[T]>>(items: I) -> Select<T> {
            let items = items.as_ref().to_vec();
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.random_range(0..self.items.len())].clone()
            }
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Clone, Copy)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Strategy,
    };
}

/// Deterministic per-test seed: the test path hashed, so every test gets
/// its own reproducible stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

// ------------------------------------------------------------- macros --

/// Mirror of `proptest::proptest!`: expands each case into a `#[test]`
/// that samples `cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Mirror of `prop_oneof!`: uniform choice among the alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// Mirror of `prop_assert!` (panics instead of returning `Err`; the shim
/// runner treats any panic as a failed case).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_patterns_parse() {
        let (alpha, lo, hi) = super::parse_class_pattern("[a-c0-1]{2,5}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c', '0', '1']);
        assert_eq!((lo, hi), (2, 5));
        assert!(super::parse_class_pattern("hello").is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_strings_match_class(s in "[ab]{1,4}", n in 1usize..5) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (1usize..3).prop_map(|x| x * 10),
            prop::sample::select([7usize, 8]),
        ]) {
            prop_assert!(v == 10 || v == 20 || v == 7 || v == 8);
        }

        #[test]
        fn vec_and_tuple_strategies(items in prop::collection::vec((any::<bool>(), 0u8..4), 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|(_, x)| *x < 4));
        }
    }
}
