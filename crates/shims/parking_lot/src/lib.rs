//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the surface `staccato-storage` uses: a non-poisoning
//! [`Mutex`], and an [`RwLock`] with both borrowed (`read`/`write`) and
//! Arc-owned (`read_arc`/`write_arc`, the `arc_lock` feature) guards.
//!
//! The rwlock is a single atomic word (reader count, with a writer bit):
//! acquiring or releasing a read lock is **one uncontended RMW** — no
//! mutex, no condvar, no futex hand-off. This matters because the query
//! layer's read hot path goes through rwlocks twice per page touch (the
//! page-data latch) and once per statement (the batch-visibility gate);
//! the earlier mutex+condvar implementation made every one of those a
//! global-mutex critical section, which under concurrent clients turned
//! into scheduler churn. Waiters spin briefly then `yield_now` —
//! acceptable because writers (ingest applies, page writes) are rare and
//! short in this workload; writer-preference fairness and parking-lot's
//! adaptive parking are out of scope. Swap this crate for the registry
//! `parking_lot` when a network is available.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Marker type standing in for `parking_lot::RawRwLock` in guard
/// signatures (`ArcRwLockReadGuard<RawRwLock, T>`).
pub struct RawRwLock(());

/// Guard-type aliases matching `parking_lot::lock_api`.
pub mod lock_api {
    pub use crate::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
}

// ---------------------------------------------------------------- Mutex --

/// Non-poisoning mutex: `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire the lock only if it is free right now (parking_lot's
    /// `try_lock`, returning `Option` instead of a poison `Result`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

// --------------------------------------------------------------- RwLock --

/// Writer bit in [`RwLock::state`]; the bits below it count readers.
const WRITER: usize = 1 << (usize::BITS - 1);

/// Readers-writer lock with Arc-owned guard support. One atomic word:
/// the high bit is the writer flag, the rest the reader count.
pub struct RwLock<T: ?Sized> {
    state: AtomicUsize,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is mediated by the reader/writer protocol.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            state: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }
}

/// Spin briefly, then hand the core to whoever holds the lock. The
/// yield path matters on small machines: a waiter that only spins would
/// starve the holder of its time slice.
fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 32 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl<T: ?Sized> RwLock<T> {
    fn acquire_read(&self) {
        let mut spins = 0u32;
        loop {
            // Optimistic increment: if no writer held or arrived, done
            // in one RMW. AcqRel: acquire pairs with a releasing writer
            // so the reader sees its writes; release orders the
            // announcement for the writer's drain.
            let prev = self.state.fetch_add(1, Ordering::AcqRel);
            if prev & WRITER == 0 {
                return;
            }
            // A writer holds the lock: undo and wait.
            self.state.fetch_sub(1, Ordering::Release);
            while self.state.load(Ordering::Relaxed) & WRITER != 0 {
                backoff(&mut spins);
            }
        }
    }

    fn acquire_write(&self) {
        let mut spins = 0u32;
        // Claim the writer bit (one writer at a time) ...
        while self.state.fetch_or(WRITER, Ordering::AcqRel) & WRITER != 0 {
            backoff(&mut spins);
        }
        // ... then wait for the readers present at claim time to drain.
        // New readers see the bit and back off, so this terminates.
        while self.state.load(Ordering::Acquire) != WRITER {
            backoff(&mut spins);
        }
    }

    fn release_read(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    fn release_write(&self) {
        self.state.fetch_and(!WRITER, Ordering::Release);
    }

    /// Borrowed shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.acquire_read();
        RwLockReadGuard { lock: self }
    }

    /// Borrowed exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.acquire_write();
        RwLockWriteGuard { lock: self }
    }

    /// Owned shared access through an `Arc` (parking_lot's `arc_lock`).
    pub fn read_arc(this: &Arc<RwLock<T>>) -> ArcRwLockReadGuard<RawRwLock, T> {
        this.acquire_read();
        ArcRwLockReadGuard {
            lock: this.clone(),
            _raw: PhantomData,
        }
    }

    /// Owned exclusive access through an `Arc` (parking_lot's `arc_lock`).
    pub fn write_arc(this: &Arc<RwLock<T>>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        this.acquire_write();
        ArcRwLockWriteGuard {
            lock: this.clone(),
            _raw: PhantomData,
        }
    }
}

/// Borrowed read guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: reader count > 0 excludes writers.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_read();
    }
}

/// Borrowed write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusive hold.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive hold.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.release_write();
    }
}

/// Owned read guard keeping its lock alive via `Arc`.
pub struct ArcRwLockReadGuard<R, T: ?Sized> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> std::ops::Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: reader count > 0 excludes writers.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockReadGuard<R, T> {
    fn drop(&mut self) {
        self.lock.release_read();
    }
}

/// Owned write guard keeping its lock alive via `Arc`.
pub struct ArcRwLockWriteGuard<R, T: ?Sized> {
    lock: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T: ?Sized> std::ops::Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusive hold.
        unsafe { &*self.lock.data.get() }
    }
}

impl<R, T: ?Sized> std::ops::DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: exclusive hold.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<R, T: ?Sized> Drop for ArcRwLockWriteGuard<R, T> {
    fn drop(&mut self) {
        self.lock.release_write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_fails_while_held_and_succeeds_after() {
        let m = Mutex::new(5);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
        }
        *m.try_lock().expect("free now") += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let a = RwLock::read_arc(&l);
            let b = l.read(); // two concurrent readers
            assert_eq!(a.len() + b.len(), 4);
        }
        {
            let mut w = RwLock::write_arc(&l);
            w.push(3);
        }
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn arc_guard_outlives_binding_scope() {
        let guard;
        {
            let l = Arc::new(RwLock::new(7u8));
            guard = RwLock::read_arc(&l);
        } // original Arc dropped; guard keeps the lock alive
        assert_eq!(*guard, 7);
    }

    #[test]
    fn writer_excludes_readers_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let mut w = RwLock::write_arc(&l);
                    *w += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 4000);
    }
}
