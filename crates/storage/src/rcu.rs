//! `RcuCell`: a hand-rolled arc-swap — an `Arc<T>` snapshot that readers
//! load without taking any lock.
//!
//! The container has no registry access, so `arc-swap`/`crossbeam-epoch`
//! are unavailable; this is the minimal RCU shape the read hot path
//! needs. Readers are wait-free in the absence of a concurrent `store`
//! (two uncontended atomic RMWs on a striped gate line plus the work the
//! closure does); writers are serialized by an internal mutex and pay a
//! bounded spin draining in-flight readers.
//!
//! # Protocol
//!
//! The current snapshot lives in an `AtomicPtr` produced by
//! `Arc::into_raw`. A reader *announces* itself by incrementing one of
//! `GATE_SLOTS` cache-line-padded gate counters (chosen per thread, so
//! unrelated readers do not bounce one line), then loads the pointer and
//! uses the snapshot, then decrements the gate. A writer swaps the
//! pointer first and *then* waits for every gate to reach zero before
//! dropping its reference to the old snapshot — so any reader that could
//! have observed the old pointer has finished with it by the time it is
//! dropped.
//!
//! # Memory ordering
//!
//! The reader's gate increment and pointer load, and the writer's
//! pointer swap and gate reads, form the classic store-buffering shape
//! (reader: *write gate, read ptr*; writer: *write ptr, read gate*).
//! Acquire/Release alone permits both sides to read the stale value —
//! the reader could load the old pointer while the writer reads a zero
//! gate and frees it. All four operations are therefore `SeqCst`: the
//! single total order guarantees that either the reader's increment
//! precedes the writer's gate read (the writer waits), or the writer's
//! swap precedes the reader's pointer load (the reader sees the new
//! snapshot). On x86 the RMWs cost the same as Acquire/Release RMWs;
//! the plain `SeqCst` loads add one fence on weakly-ordered targets
//! only.
//!
//! # Rules
//!
//! * [`RcuCell::with`] runs a closure *inside* the gate: it must be
//!   short and must never call [`RcuCell::store`] on the same cell (the
//!   writer would wait for the reader's own gate — deadlock).
//! * [`RcuCell::load`] clones the snapshot `Arc` inside the gate and
//!   hands it out, for readers that need to keep the snapshot across
//!   blocking work (index probes doing page I/O).
//! * [`RcuCell::store`] returns only after every reader that might hold
//!   a reference *through the cell* has left the gate. Clones handed out
//!   by `load` keep the old snapshot alive independently — drain is
//!   about the cell's own reference, not theirs.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of striped reader gates. More slots than typical client
/// threads, so concurrent readers usually touch distinct cache lines.
const GATE_SLOTS: usize = 32;

/// One cache line per gate counter so reader announcements on different
/// slots never false-share.
#[repr(align(64))]
struct PaddedGate(AtomicU64);

/// Monotonic source for per-thread gate-slot assignment.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread parks on one gate slot for its lifetime; threads are
    /// dealt slots round-robin so a fixed client pool spreads evenly.
    static GATE_SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % GATE_SLOTS;
}

/// An atomically swappable `Arc<T>` snapshot (see the module docs).
pub struct RcuCell<T> {
    /// `Arc::into_raw` of the current snapshot.
    ptr: AtomicPtr<T>,
    gates: Box<[PaddedGate; GATE_SLOTS]>,
    /// Serializes writers: swap + drain + drop must not interleave.
    writer: Mutex<()>,
}

// Safety: T travels between threads inside an Arc; readers only get
// shared references.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// Wrap `value` as the initial snapshot.
    pub fn new(value: Arc<T>) -> RcuCell<T> {
        let gates: Vec<PaddedGate> = (0..GATE_SLOTS)
            .map(|_| PaddedGate(AtomicU64::new(0)))
            .collect();
        RcuCell {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            gates: gates.try_into().unwrap_or_else(|_| unreachable!()),
            writer: Mutex::new(()),
        }
    }

    fn slot(&self) -> &AtomicU64 {
        let idx = GATE_SLOT.with(|s| *s);
        &self.gates[idx].0
    }

    /// Run `f` against the current snapshot without cloning the `Arc`.
    /// The closure executes inside the reader gate: keep it short, never
    /// block, never call [`RcuCell::store`] on this cell from inside it.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let gate = self.slot();
        gate.fetch_add(1, Ordering::SeqCst);
        // Safety: the gate entry above is ordered before this load
        // (SeqCst total order), so a concurrent `store` either sees our
        // entry and waits, or its swap precedes our load and we see the
        // new snapshot. Either way the pointee is alive for the whole
        // closure.
        let out = {
            let value = unsafe { &*self.ptr.load(Ordering::SeqCst) };
            f(value)
        };
        gate.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Clone the current snapshot `Arc` — for readers that keep the
    /// snapshot across blocking work. Costs one refcount RMW on the
    /// snapshot's line in addition to the gate pair.
    pub fn load(&self) -> Arc<T> {
        let gate = self.slot();
        gate.fetch_add(1, Ordering::SeqCst);
        let ptr = self.ptr.load(Ordering::SeqCst);
        // Safety: gate-protected as in `with`; reconstruct the Arc the
        // cell owns, clone it for the caller, and forget the original so
        // the cell's reference count is untouched.
        let arc = unsafe { Arc::from_raw(ptr) };
        let out = Arc::clone(&arc);
        std::mem::forget(arc);
        gate.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Publish `new` as the snapshot. Returns only after every reader
    /// that might have loaded the *old* snapshot through this cell has
    /// left the gate — after `store` returns, `with`/`load` can only
    /// observe `new` (or something newer).
    pub fn store(&self, new: Arc<T>) {
        let _w = self.writer.lock();
        let old = self
            .ptr
            .swap(Arc::into_raw(new) as *mut T, Ordering::SeqCst);
        // Drain: wait for in-flight readers. Reader sections are a few
        // atomics plus a hash lookup, so this spin is short and bounded.
        for gate in self.gates.iter() {
            let mut spins = 0u32;
            while gate.0.load(Ordering::SeqCst) != 0 {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        // Safety: pointer no longer published and all gate readers are
        // gone; this drops the cell's own reference. Clones handed out
        // by `load` keep the value alive on their own.
        drop(unsafe { Arc::from_raw(old) });
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // Safety: exclusive access; reclaim the published reference.
        drop(unsafe { Arc::from_raw(self.ptr.load(Ordering::SeqCst)) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RcuCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.with(|v| f.debug_tuple("RcuCell").field(v).finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_store_roundtrip() {
        let cell = RcuCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(cell.with(|v| *v), 2);
        // The old snapshot survives through an outstanding clone.
        let held = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*held, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn store_drains_before_returning() {
        // After store() returns, readers can only see the new value.
        let cell = Arc::new(RcuCell::new(Arc::new(0u64)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..20_000 {
                        let v = cell.with(|v| *v);
                        assert!(v <= 64, "snapshot outlived its store: {v}");
                    }
                });
            }
            let cell = Arc::clone(&cell);
            scope.spawn(move || {
                for i in 1..=64u64 {
                    cell.store(Arc::new(i));
                }
            });
        });
        assert_eq!(*cell.load(), 64);
    }

    #[test]
    fn snapshots_drop_exactly_once() {
        // Count live snapshots through Arc strong counts: after the cell
        // drops, only explicitly held clones remain.
        let first = Arc::new(vec![1, 2, 3]);
        let cell = RcuCell::new(Arc::clone(&first));
        assert_eq!(Arc::strong_count(&first), 2);
        let second = Arc::new(vec![4]);
        cell.store(Arc::clone(&second));
        assert_eq!(Arc::strong_count(&first), 1, "old snapshot released");
        assert_eq!(Arc::strong_count(&second), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&second), 1, "drop releases the cell");
    }

    #[test]
    fn concurrent_readers_sum_consistent_snapshots() {
        // Snapshots are internally consistent: a pair (a, b) always
        // satisfies b == 2*a because every published snapshot does.
        let cell = Arc::new(RcuCell::new(Arc::new((1u64, 2u64))));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        let (a, b) = cell.with(|v| *v);
                        assert_eq!(b, 2 * a, "torn snapshot");
                    }
                });
            }
            for w in 0..2 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        let a = i * 2 + w;
                        cell.store(Arc::new((a, 2 * a)));
                    }
                });
            }
        });
    }
}
