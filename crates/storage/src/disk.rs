//! The page-device abstraction: fixed-size pages addressed by id.

use crate::error::StorageError;
use crate::PageId;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page size in bytes. 8 KiB, PostgreSQL's default.
pub const PAGE_SIZE: usize = 8192;

/// A device that stores fixed-size pages.
pub trait Disk: Send {
    /// Read page `pid` into `buf` (`buf.len() == PAGE_SIZE`).
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), StorageError>;
    /// Write `buf` to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<(), StorageError>;
    /// Append a zeroed page, returning its id.
    fn allocate(&mut self) -> Result<PageId, StorageError>;
    /// Number of allocated pages.
    fn page_count(&self) -> u64;
    /// Flush to durable storage.
    fn sync(&mut self) -> Result<(), StorageError>;
}

/// An in-memory device — for tests and for experiments that want to
/// isolate CPU cost from the filesystem.
#[derive(Default)]
pub struct MemDisk {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemDisk {
    /// Create an empty in-memory device.
    pub fn new() -> Self {
        MemDisk::default()
    }
}

impl Disk for MemDisk {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), StorageError> {
        let page = self
            .pages
            .get(pid as usize)
            .ok_or(StorageError::PageOutOfBounds(pid))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<(), StorageError> {
        let page = self
            .pages
            .get_mut(pid as usize)
            .ok_or(StorageError::PageOutOfBounds(pid))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(self.pages.len() as PageId - 1)
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        Ok(())
    }
}

/// A single-file device, one page per `PAGE_SIZE` slice of the file.
pub struct FileDisk {
    file: File,
    pages: u64,
}

impl FileDisk {
    /// Create (truncating) a database file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDisk { file, pages: 0 })
    }

    /// Open an existing database file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::CorruptPage {
                page: len / PAGE_SIZE as u64,
                reason: "file length is not a multiple of the page size",
            });
        }
        Ok(FileDisk {
            file,
            pages: len / PAGE_SIZE as u64,
        })
    }

    fn check(&self, pid: PageId) -> Result<(), StorageError> {
        if pid >= self.pages {
            return Err(StorageError::PageOutOfBounds(pid));
        }
        Ok(())
    }
}

impl Disk for FileDisk {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), StorageError> {
        self.check(pid)?;
        self.file.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8]) -> Result<(), StorageError> {
        self.check(pid)?;
        self.file.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageId, StorageError> {
        let pid = self.pages;
        self.file.seek(SeekFrom::Start(pid * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(pid)
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &mut dyn Disk) {
        let p0 = disk.allocate().unwrap();
        let p1 = disk.allocate().unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(disk.page_count(), 2);

        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        buf[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p1, &buf).unwrap();

        let mut out = vec![0u8; PAGE_SIZE];
        disk.read_page(p1, &mut out).unwrap();
        assert_eq!(out, buf);
        // Page 0 stays zeroed.
        disk.read_page(p0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        assert!(matches!(
            disk.read_page(99, &mut out),
            Err(StorageError::PageOutOfBounds(99))
        ));
        disk.sync().unwrap();
    }

    #[test]
    fn memdisk_roundtrip() {
        exercise(&mut MemDisk::new());
    }

    #[test]
    fn filedisk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("staccato-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        {
            let mut d = FileDisk::create(&path).unwrap();
            exercise(&mut d);
        }
        {
            let mut d = FileDisk::open(&path).unwrap();
            assert_eq!(d.page_count(), 2);
            let mut out = vec![0u8; PAGE_SIZE];
            d.read_page(1, &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
            assert_eq!(out[PAGE_SIZE - 1], 0xCD);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filedisk_open_rejects_ragged_file() {
        let dir = std::env::temp_dir().join(format!("staccato-disk-rg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(matches!(
            FileDisk::open(&path),
            Err(StorageError::CorruptPage { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
