//! The buffer pool: a fixed set of in-memory frames caching disk pages,
//! with LRU eviction, pin tracking, dirty write-back, and I/O statistics.
//!
//! # Sharding
//!
//! The frame table is *latch-striped*: frames are partitioned into up to
//! [`MAX_SHARDS`] shards keyed by a hash of the `PageId`, each behind its
//! own mutex, so concurrent readers touching different pages do not
//! contend on one pool-wide lock. The disk itself sits behind a separate
//! mutex that is only taken on the miss path (reads, eviction
//! write-backs, flushes) — a page-cache *hit*, the hot case for
//! read-heavy query traffic, takes exactly one shard latch. Small pools
//! (under 64 frames) collapse to a single shard so LRU behaves globally,
//! which keeps tiny test pools exactly as predictable as the unsharded
//! original.
//!
//! Statistics are counted per shard and aggregated on demand by
//! [`BufferPool::stats`], so counters never serialize fetches either.
//!
//! Lock order is always shard → disk; no path acquires a shard latch
//! while holding the disk latch, and no path holds two shard latches.
//!
//! Pinning is tracked through `Arc` strong counts: a page guard holds a
//! clone of the frame's data `Arc`, so a frame is evictable exactly when
//! its count drops back to one. Guards are handed out as owned
//! `parking_lot` read/write locks, so multiple pages can be held at once
//! (B+-tree splits hold parent and child) without borrowing the pool.
//! Eviction is per shard: a shard with every frame pinned reports
//! [`StorageError::PoolExhausted`] even if other shards have room, the
//! standard trade of striped pools.

use crate::disk::{Disk, PAGE_SIZE};
use crate::error::StorageError;
use crate::PageId;
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

type PageBuf = Box<[u8; PAGE_SIZE]>;
type PageArc = Arc<RwLock<PageBuf>>;

/// Upper bound on the number of latch-striped shards.
pub const MAX_SHARDS: usize = 16;

/// Read guard over a page's bytes.
pub struct PageRead {
    guard: ArcRwLockReadGuard<RawRwLock, PageBuf>,
}

impl std::ops::Deref for PageRead {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

/// Write guard over a page's bytes. Acquiring one marks the frame dirty.
pub struct PageWrite {
    guard: ArcRwLockWriteGuard<RawRwLock, PageBuf>,
}

impl std::ops::Deref for PageWrite {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl std::ops::DerefMut for PageWrite {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

struct Frame {
    pid: PageId,
    data: PageArc,
    dirty: bool,
    last_used: u64,
}

/// Buffer-pool counters; the experiment harness reports these as the I/O
/// cost of each query plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
    /// Frames evicted.
    pub evictions: u64,
}

impl PoolStats {
    /// The counters accumulated since `earlier` was sampled — per-query
    /// I/O accounting for `EXPLAIN ANALYZE`. Saturates at zero so a
    /// `reset_stats` between the two samples cannot underflow.
    pub fn delta_since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    /// Fraction of page requests served from memory (1.0 when idle).
    pub fn hit_rate(self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One latch-striped partition of the frame table.
struct Shard {
    frames: Vec<Frame>,
    table: HashMap<PageId, usize>,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn with_capacity(capacity: usize) -> Shard {
        Shard {
            frames: Vec::with_capacity(capacity),
            table: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
        }
    }
}

/// Per-shard statistics counters. Writers hold the shard latch, so
/// relaxed atomics suffice — the point of keeping them outside the latch
/// is that [`BufferPool::stats`] (sampled around every query for
/// `EXPLAIN ANALYZE` attribution) reads without touching any shard
/// mutex, keeping the read off the fetch hot path entirely.
#[derive(Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
    evictions: AtomicU64,
}

impl ShardStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, AtomicOrdering::Relaxed);
    }
}

/// The buffer pool: latch-striped frame shards over one shared device.
pub struct BufferPool {
    disk: Mutex<Box<dyn Disk>>,
    shards: Vec<Mutex<Shard>>,
    stats: Vec<ShardStats>,
    /// log2 of `shards.len()`, for the pid → shard hash.
    shard_bits: u32,
}

/// Shard count for a pool of `capacity` frames: the largest power of two
/// `<= MAX_SHARDS` leaving every shard at least 32 frames (so a shard can
/// absorb the handful of simultaneously pinned pages a B+-tree split
/// holds). Pools under 64 frames stay unsharded and keep the original
/// global-LRU behavior exactly.
fn shard_count(capacity: usize) -> usize {
    let limit = (capacity / 32).clamp(1, MAX_SHARDS);
    1 << (usize::BITS - 1 - limit.leading_zeros())
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Box<dyn Disk>, capacity: usize) -> BufferPool {
        assert!(capacity >= 2, "a useful pool needs at least two frames");
        let n = shard_count(capacity);
        let base = capacity / n;
        let extra = capacity % n;
        let shards = (0..n)
            .map(|i| Mutex::new(Shard::with_capacity(base + usize::from(i < extra))))
            .collect();
        BufferPool {
            disk: Mutex::new(disk),
            shards,
            stats: (0..n).map(|_| ShardStats::default()).collect(),
            shard_bits: n.trailing_zeros(),
        }
    }

    /// Number of latch-striped shards (1 for small pools).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, pid: PageId) -> usize {
        // Fibonacci multiplicative hash: consecutive PageIds (the common
        // allocation pattern) spread across shards instead of clustering.
        let h = pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if self.shard_bits == 0 {
            0
        } else {
            (h >> (64 - self.shard_bits)) as usize
        }
    }

    /// Fetch a page for reading.
    pub fn fetch_read(&self, pid: PageId) -> Result<PageRead, StorageError> {
        let arc = self.fetch_arc(pid, false)?;
        Ok(PageRead {
            guard: RwLock::read_arc(&arc),
        })
    }

    /// Fetch a page for writing (marks it dirty).
    pub fn fetch_write(&self, pid: PageId) -> Result<PageWrite, StorageError> {
        let arc = self.fetch_arc(pid, true)?;
        Ok(PageWrite {
            guard: RwLock::write_arc(&arc),
        })
    }

    /// Allocate a fresh zeroed page on disk and return its id.
    pub fn allocate(&self) -> Result<PageId, StorageError> {
        self.disk.lock().allocate()
    }

    /// Number of pages on the underlying device.
    pub fn page_count(&self) -> u64 {
        self.disk.lock().page_count()
    }

    /// Write all dirty frames back and sync the device.
    pub fn flush_all(&self) -> Result<(), StorageError> {
        for (shard, stats) in self.shards.iter().zip(&self.stats) {
            let mut shard = shard.lock();
            let dirty: Vec<usize> = shard
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.dirty)
                .map(|(i, _)| i)
                .collect();
            for i in dirty {
                let pid = shard.frames[i].pid;
                let data = shard.frames[i].data.clone();
                let buf = data.read();
                self.disk.lock().write_page(pid, &buf[..])?;
                drop(buf);
                shard.frames[i].dirty = false;
                ShardStats::bump(&stats.writebacks);
            }
        }
        self.disk.lock().sync()
    }

    /// Current I/O statistics, aggregated across shards. Lock-free: safe
    /// to sample around every query without touching the fetch path.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.stats {
            total.hits += s.hits.load(AtomicOrdering::Relaxed);
            total.misses += s.misses.load(AtomicOrdering::Relaxed);
            total.writebacks += s.writebacks.load(AtomicOrdering::Relaxed);
            total.evictions += s.evictions.load(AtomicOrdering::Relaxed);
        }
        total
    }

    /// Reset statistics (used between experiment phases).
    pub fn reset_stats(&self) {
        for s in &self.stats {
            s.hits.store(0, AtomicOrdering::Relaxed);
            s.misses.store(0, AtomicOrdering::Relaxed);
            s.writebacks.store(0, AtomicOrdering::Relaxed);
            s.evictions.store(0, AtomicOrdering::Relaxed);
        }
    }

    fn fetch_arc(&self, pid: PageId, dirty: bool) -> Result<PageArc, StorageError> {
        let idx = self.shard_of(pid);
        let stats = &self.stats[idx];
        let mut shard = self.shards[idx].lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(&idx) = shard.table.get(&pid) {
            ShardStats::bump(&stats.hits);
            let f = &mut shard.frames[idx];
            f.last_used = tick;
            f.dirty |= dirty;
            return Ok(f.data.clone());
        }
        ShardStats::bump(&stats.misses);

        // Read the page from disk into a fresh buffer. The shard latch is
        // held across the read so two threads missing on the same page
        // cannot both load it (and diverge on which copy is cached).
        let mut buf: PageBuf = Box::new([0u8; PAGE_SIZE]);
        self.disk.lock().read_page(pid, &mut buf[..])?;
        let arc: PageArc = Arc::new(RwLock::new(buf));

        if shard.frames.len() < shard.capacity {
            let idx = shard.frames.len();
            shard.frames.push(Frame {
                pid,
                data: arc.clone(),
                dirty,
                last_used: tick,
            });
            shard.table.insert(pid, idx);
            return Ok(arc);
        }

        // Evict the least-recently-used unpinned frame of this shard. A
        // frame is pinned while any guard (or returned Arc) is alive,
        // i.e. strong count > 1.
        let victim = shard
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| Arc::strong_count(&f.data) == 1)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .ok_or(StorageError::PoolExhausted)?;

        let old = &shard.frames[victim];
        let (old_pid, old_dirty, old_data) = (old.pid, old.dirty, old.data.clone());
        if old_dirty {
            let data = old_data.read();
            self.disk.lock().write_page(old_pid, &data[..])?;
            drop(data);
            ShardStats::bump(&stats.writebacks);
        }
        ShardStats::bump(&stats.evictions);
        shard.table.remove(&old_pid);
        shard.frames[victim] = Frame {
            pid,
            data: arc.clone(),
            dirty,
            last_used: tick,
        };
        shard.table.insert(pid, victim);
        Ok(arc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize, pages: usize) -> BufferPool {
        let mut disk = MemDisk::new();
        for _ in 0..pages {
            disk.allocate().unwrap();
        }
        BufferPool::new(Box::new(disk), frames)
    }

    #[test]
    fn read_after_write_roundtrips() {
        let p = pool(4, 2);
        {
            let mut w = p.fetch_write(1).unwrap();
            w[0] = 42;
            w[PAGE_SIZE - 1] = 7;
        }
        let r = p.fetch_read(1).unwrap();
        assert_eq!(r[0], 42);
        assert_eq!(r[PAGE_SIZE - 1], 7);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2, 4);
        {
            let mut w = p.fetch_write(0).unwrap();
            w[0] = 99;
        }
        // Touch three more pages to force 0 out of the 2-frame pool.
        for pid in 1..4 {
            let _ = p.fetch_read(pid).unwrap();
        }
        let stats = p.stats();
        assert!(stats.evictions >= 2, "{stats:?}");
        assert!(stats.writebacks >= 1, "{stats:?}");
        // Re-reading page 0 must see the written value (from disk).
        let r = p.fetch_read(0).unwrap();
        assert_eq!(r[0], 99);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let p = pool(2, 5);
        let pinned = p.fetch_read(0).unwrap();
        for pid in 1..5 {
            let _ = p.fetch_read(pid).unwrap();
        }
        // Page 0 must still be readable through the held guard.
        assert_eq!(pinned[0], 0);
    }

    #[test]
    fn all_pinned_pool_errors() {
        let p = pool(2, 3);
        let _a = p.fetch_read(0).unwrap();
        let _b = p.fetch_read(1).unwrap();
        assert!(matches!(p.fetch_read(2), Err(StorageError::PoolExhausted)));
    }

    #[test]
    fn hits_and_misses_counted() {
        let p = pool(4, 2);
        let _ = p.fetch_read(0).unwrap();
        let _ = p.fetch_read(0).unwrap();
        let _ = p.fetch_read(1).unwrap();
        let s = p.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        p.reset_stats();
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[test]
    fn flush_all_persists_and_clears_dirty() {
        let p = pool(4, 2);
        {
            let mut w = p.fetch_write(0).unwrap();
            w[10] = 5;
        }
        p.flush_all().unwrap();
        let s = p.stats();
        assert_eq!(s.writebacks, 1);
        // A second flush has nothing to do.
        p.flush_all().unwrap();
        assert_eq!(p.stats().writebacks, 1);
    }

    #[test]
    fn out_of_bounds_page_errors() {
        let p = pool(2, 1);
        assert!(matches!(
            p.fetch_read(9),
            Err(StorageError::PageOutOfBounds(9))
        ));
    }

    #[test]
    fn lru_prefers_older_frames() {
        let p = pool(2, 3);
        let _ = p.fetch_read(0).unwrap(); // old
        let _ = p.fetch_read(1).unwrap(); // newer
        let _ = p.fetch_read(0).unwrap(); // refresh 0 → 1 is now LRU
        let _ = p.fetch_read(2).unwrap(); // evicts 1
                                          // 0 still cached: hit.
        let before = p.stats().hits;
        let _ = p.fetch_read(0).unwrap();
        assert_eq!(p.stats().hits, before + 1);
    }

    #[test]
    fn small_pools_collapse_to_one_shard() {
        assert_eq!(pool(2, 1).shard_count(), 1);
        assert_eq!(pool(63, 1).shard_count(), 1);
        assert_eq!(pool(64, 1).shard_count(), 2);
        assert_eq!(pool(128, 1).shard_count(), 4);
        assert_eq!(pool(256, 1).shard_count(), 8);
        assert_eq!(pool(512, 1).shard_count(), 16);
        assert_eq!(pool(4096, 1).shard_count(), 16);
    }

    #[test]
    fn sharded_pool_roundtrips_and_aggregates_stats() {
        let p = pool(1024, 64);
        assert_eq!(p.shard_count(), MAX_SHARDS);
        for pid in 0..64u64 {
            let mut w = p.fetch_write(pid).unwrap();
            w[0] = pid as u8;
        }
        for pid in 0..64u64 {
            assert_eq!(p.fetch_read(pid).unwrap()[0], pid as u8);
        }
        let s = p.stats();
        assert_eq!(s.misses, 64, "{s:?}");
        assert_eq!(s.hits, 64, "{s:?}");
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        p.flush_all().unwrap();
        assert_eq!(p.stats().writebacks, 64);
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let a = PoolStats {
            hits: 10,
            misses: 4,
            writebacks: 1,
            evictions: 2,
        };
        let b = PoolStats {
            hits: 25,
            misses: 4,
            writebacks: 3,
            evictions: 2,
        };
        let d = b.delta_since(a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 0);
        assert_eq!(d.writebacks, 2);
        assert_eq!(d.evictions, 0);
        // A reset between samples saturates instead of underflowing.
        let d = a.delta_since(b);
        assert_eq!(d.hits, 0);
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let p = std::sync::Arc::new(pool(256, 64));
        for pid in 0..64u64 {
            let mut w = p.fetch_write(pid).unwrap();
            w[..8].copy_from_slice(&pid.to_le_bytes());
        }
        std::thread::scope(|scope| {
            for t in 0..8 {
                let p = std::sync::Arc::clone(&p);
                scope.spawn(move || {
                    for round in 0..4u64 {
                        for pid in 0..64u64 {
                            let pid = (pid + t + round) % 64;
                            let r = p.fetch_read(pid).unwrap();
                            assert_eq!(
                                u64::from_le_bytes(r[..8].try_into().unwrap()),
                                pid,
                                "page content raced"
                            );
                        }
                    }
                });
            }
        });
        let s = p.stats();
        assert_eq!(s.hits + s.misses, 64 + 8 * 4 * 64);
    }
}
