//! The buffer pool: a fixed set of in-memory frames caching disk pages,
//! with LRU eviction, pin tracking, dirty write-back, and I/O statistics.
//!
//! # Contention-free hits
//!
//! The frame table is split into up to [`MAX_SHARDS`] shards keyed by a
//! hash of the `PageId`. Each shard publishes its `PageId → Frame` map
//! as an RCU snapshot ([`RcuCell`]): a page *hit* — the hot case for
//! read-heavy query traffic — is a gate-protected hash lookup plus an
//! `Arc` pin, with **no latch at all**. The per-shard mutex is taken
//! only on the miss path (disk reads, eviction, write-backs) and by
//! `flush_all`. Statistics are relaxed per-shard atomics aggregated on
//! demand by [`BufferPool::stats`], so `EXPLAIN ANALYZE` attribution
//! never touches the fetch path either.
//!
//! # Eviction vs. lock-free pinning
//!
//! Pinning is an `Arc` clone of the frame's data (`strong_count > 1` ⇔
//! pinned), and hitters pin without a latch, so eviction cannot rely on
//! a stable count check alone. The protocol (under the shard mutex):
//!
//! 1. pick the least-recently-used candidate with `strong_count == 1`;
//! 2. *unpublish* it — store a snapshot without the victim; the RCU
//!    store drains all in-gate readers before returning, so after it no
//!    new pin of the victim can begin (the miss path for its `PageId`
//!    blocks on the shard mutex we hold);
//! 3. re-check `strong_count == 1`: a reader that pinned in the window
//!    between the candidate scan and the drain is now visible. If it
//!    raced us, restore the victim and try the next candidate;
//! 4. only then write back (if dirty) and reuse the slot.
//!
//! The dirty flag rides the same drain: hitters set it inside the
//! reader gate (`Release`), so once the drain completes the evictor's
//! `Acquire` load observes any flag set through the unpublished map.
//!
//! Lock order is shard → (neighbor shard, `try_lock` only) → disk; no
//! path blocks on a second shard latch, and no path acquires a shard
//! latch while holding the disk latch.
//!
//! # Exhaustion fairness
//!
//! A shard whose frames are all pinned no longer fails while its
//! neighbors have room: the miss path *steals a frame of capacity* from
//! the first neighbor shard (probed in order, `try_lock` so two shards
//! can never deadlock stealing from each other) that can evict one of
//! its own unpinned frames. The donor shrinks by one frame, the
//! starved shard grows by one — total pool capacity is conserved, and a
//! shard never donates below half its original budget (or 2 frames),
//! so drift is bounded. Only when every reachable neighbor is also
//! pinned-out does [`StorageError::PoolExhausted`] surface.

use crate::disk::{Disk, PAGE_SIZE};
use crate::error::StorageError;
use crate::rcu::RcuCell;
use crate::PageId;
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

type PageBuf = Box<[u8; PAGE_SIZE]>;
type PageArc = Arc<RwLock<PageBuf>>;

/// Upper bound on the number of frame-table shards.
pub const MAX_SHARDS: usize = 16;

/// Read guard over a page's bytes.
pub struct PageRead {
    guard: ArcRwLockReadGuard<RawRwLock, PageBuf>,
}

impl std::ops::Deref for PageRead {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

/// Write guard over a page's bytes. Acquiring one marks the frame dirty.
pub struct PageWrite {
    guard: ArcRwLockWriteGuard<RawRwLock, PageBuf>,
}

impl std::ops::Deref for PageWrite {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl std::ops::DerefMut for PageWrite {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

/// One resident page. Hitters touch `last_used`/`dirty` without the
/// shard mutex, so both are atomics; `data`'s strong count doubles as
/// the pin count (1 = only the frame itself holds it).
struct Frame {
    pid: PageId,
    data: PageArc,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

type FrameRef = Arc<Frame>;
type FrameMap = HashMap<PageId, FrameRef>;

/// Buffer-pool counters; the experiment harness reports these as the I/O
/// cost of each query plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
    /// Frames evicted.
    pub evictions: u64,
    /// Frames of capacity stolen from a neighbor shard because every
    /// local frame was pinned.
    pub steals: u64,
}

impl PoolStats {
    /// The counters accumulated since `earlier` was sampled — per-query
    /// I/O accounting for `EXPLAIN ANALYZE`. Saturates at zero so a
    /// `reset_stats` between the two samples cannot underflow.
    pub fn delta_since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            steals: self.steals.saturating_sub(earlier.steals),
        }
    }

    /// Fraction of page requests served from memory (1.0 when idle).
    pub fn hit_rate(self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The mutex-protected half of a shard: the authoritative resident set
/// and its capacity budget. The published [`FrameMap`] snapshot always
/// mirrors `frames` exactly at mutex release.
struct ShardInner {
    frames: Vec<FrameRef>,
    capacity: usize,
    /// The capacity this shard was built with — the floor for donations
    /// is derived from it, so steal drift stays bounded.
    original_capacity: usize,
}

impl ShardInner {
    fn position(&self, pid: PageId) -> Option<usize> {
        self.frames.iter().position(|f| f.pid == pid)
    }
}

/// One shard: RCU-published read snapshot + mutexed writer state + the
/// relaxed statistics hitters bump outside any latch.
struct Shard {
    map: RcuCell<FrameMap>,
    inner: Mutex<ShardInner>,
    /// LRU clock; hitters bump it without the mutex.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writebacks: AtomicU64,
    evictions: AtomicU64,
    steals: AtomicU64,
}

impl Shard {
    fn with_capacity(capacity: usize) -> Shard {
        Shard {
            map: RcuCell::new(Arc::new(FrameMap::new())),
            inner: Mutex::new(ShardInner {
                frames: Vec::with_capacity(capacity),
                capacity,
                original_capacity: capacity,
            }),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Publish the current `frames` vec as the read snapshot. Called
    /// with the shard mutex held; returns after draining readers.
    fn publish(&self, inner: &ShardInner) {
        let map: FrameMap = inner
            .frames
            .iter()
            .map(|f| (f.pid, Arc::clone(f)))
            .collect();
        self.map.store(Arc::new(map));
    }

    /// Next LRU clock value (relaxed — the clock orders recency, it
    /// synchronizes nothing).
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, AtomicOrdering::Relaxed) + 1
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, AtomicOrdering::Relaxed);
    }

    /// Evict the least-recently-used unpinned frame, following the
    /// unpublish → drain → re-check protocol from the module docs.
    /// Returns the freed frame's slot index, or `None` if every frame
    /// is pinned. Writes back dirty victims. Caller holds the mutex.
    fn evict_one(
        &self,
        inner: &mut ShardInner,
        disk: &Mutex<Box<dyn Disk>>,
    ) -> Result<Option<usize>, StorageError> {
        loop {
            let victim = inner
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| Arc::strong_count(&f.data) == 1)
                .min_by_key(|(_, f)| f.last_used.load(AtomicOrdering::Relaxed))
                .map(|(i, _)| i);
            let Some(slot) = victim else {
                return Ok(None);
            };
            let frame = Arc::clone(&inner.frames[slot]);
            // Unpublish: after this store returns, no reader can begin a
            // new pin of the victim (its PageId now misses, and the miss
            // path blocks on the mutex we hold).
            inner.frames.remove(slot);
            self.publish(inner);
            if Arc::strong_count(&frame.data) != 1 {
                // A reader pinned it between the scan and the drain —
                // put it back and look for another victim.
                inner.frames.insert(slot, frame);
                self.publish(inner);
                continue;
            }
            // Quiescent: nobody holds the data Arc, nobody can set the
            // dirty flag anymore (the drain flushed in-gate setters).
            if frame.dirty.load(AtomicOrdering::Acquire) {
                let buf = frame.data.read();
                disk.lock().write_page(frame.pid, &buf[..])?;
                Shard::bump(&self.writebacks);
            }
            Shard::bump(&self.evictions);
            return Ok(Some(slot));
        }
    }
}

/// The buffer pool: RCU-snapshot frame shards over one shared device.
pub struct BufferPool {
    disk: Mutex<Box<dyn Disk>>,
    shards: Vec<Shard>,
    /// log2 of `shards.len()`, for the pid → shard hash.
    shard_bits: u32,
}

/// Shard count for a pool of `capacity` frames: the largest power of two
/// `<= MAX_SHARDS` leaving every shard at least 32 frames (so a shard can
/// absorb the handful of simultaneously pinned pages a B+-tree split
/// holds). Pools under 64 frames stay unsharded and keep the original
/// global-LRU behavior exactly.
fn shard_count(capacity: usize) -> usize {
    let limit = (capacity / 32).clamp(1, MAX_SHARDS);
    1 << (usize::BITS - 1 - limit.leading_zeros())
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Box<dyn Disk>, capacity: usize) -> BufferPool {
        assert!(capacity >= 2, "a useful pool needs at least two frames");
        let n = shard_count(capacity);
        let base = capacity / n;
        let extra = capacity % n;
        let shards = (0..n)
            .map(|i| Shard::with_capacity(base + usize::from(i < extra)))
            .collect();
        BufferPool {
            disk: Mutex::new(disk),
            shards,
            shard_bits: n.trailing_zeros(),
        }
    }

    /// Number of frame-table shards (1 for small pools).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, pid: PageId) -> usize {
        // Fibonacci multiplicative hash: consecutive PageIds (the common
        // allocation pattern) spread across shards instead of clustering.
        let h = pid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if self.shard_bits == 0 {
            0
        } else {
            (h >> (64 - self.shard_bits)) as usize
        }
    }

    /// Fetch a page for reading.
    pub fn fetch_read(&self, pid: PageId) -> Result<PageRead, StorageError> {
        let arc = self.fetch_arc(pid, false)?;
        Ok(PageRead {
            guard: RwLock::read_arc(&arc),
        })
    }

    /// Fetch a page for writing (marks it dirty).
    pub fn fetch_write(&self, pid: PageId) -> Result<PageWrite, StorageError> {
        let arc = self.fetch_arc(pid, true)?;
        Ok(PageWrite {
            guard: RwLock::write_arc(&arc),
        })
    }

    /// Allocate a fresh zeroed page on disk and return its id.
    pub fn allocate(&self) -> Result<PageId, StorageError> {
        self.disk.lock().allocate()
    }

    /// Number of pages on the underlying device.
    pub fn page_count(&self) -> u64 {
        self.disk.lock().page_count()
    }

    /// Write all dirty frames back and sync the device.
    ///
    /// The dirty flag is cleared *before* the bytes are copied (swap,
    /// then read): a hitter that re-dirties the page concurrently
    /// leaves the flag set for the next flush instead of being lost.
    /// A write guard already handed out before this flush is — as in
    /// every prior revision — the caller's to order; the checkpoint
    /// path holds the session writer latch for exactly that reason.
    pub fn flush_all(&self) -> Result<(), StorageError> {
        for shard in &self.shards {
            let inner = shard.inner.lock();
            for frame in &inner.frames {
                if frame.dirty.swap(false, AtomicOrdering::AcqRel) {
                    let buf = frame.data.read();
                    self.disk.lock().write_page(frame.pid, &buf[..])?;
                    drop(buf);
                    Shard::bump(&shard.writebacks);
                }
            }
        }
        self.disk.lock().sync()
    }

    /// Current I/O statistics, aggregated across shards. Lock-free: safe
    /// to sample around every query without touching the fetch path.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            total.hits += s.hits.load(AtomicOrdering::Relaxed);
            total.misses += s.misses.load(AtomicOrdering::Relaxed);
            total.writebacks += s.writebacks.load(AtomicOrdering::Relaxed);
            total.evictions += s.evictions.load(AtomicOrdering::Relaxed);
            total.steals += s.steals.load(AtomicOrdering::Relaxed);
        }
        total
    }

    /// Reset statistics (used between experiment phases).
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.hits.store(0, AtomicOrdering::Relaxed);
            s.misses.store(0, AtomicOrdering::Relaxed);
            s.writebacks.store(0, AtomicOrdering::Relaxed);
            s.evictions.store(0, AtomicOrdering::Relaxed);
            s.steals.store(0, AtomicOrdering::Relaxed);
        }
    }

    /// The latch-free hit path: one gate-protected snapshot lookup.
    /// Pins (clones the data Arc) *inside* the reader gate, so eviction's
    /// drain orders every pin against its re-check; `dirty`/`last_used`
    /// ride the same gate section.
    fn try_hit(&self, shard: &Shard, pid: PageId, dirty: bool, tick: u64) -> Option<PageArc> {
        shard.map.with(|map| {
            let frame = map.get(&pid)?;
            let data = Arc::clone(&frame.data);
            if dirty {
                // Release pairs with the evictor's Acquire after drain.
                frame.dirty.store(true, AtomicOrdering::Release);
            }
            frame.last_used.store(tick, AtomicOrdering::Relaxed);
            Some(data)
        })
    }

    fn fetch_arc(&self, pid: PageId, dirty: bool) -> Result<PageArc, StorageError> {
        let idx = self.shard_of(pid);
        let shard = &self.shards[idx];
        let tick = shard.next_tick();
        if let Some(data) = self.try_hit(shard, pid, dirty, tick) {
            Shard::bump(&shard.hits);
            return Ok(data);
        }

        // Miss path: serialize on the shard mutex. Re-check first — a
        // racing miss on the same page may have loaded it while we
        // waited, and caching one copy per page is the pool's invariant.
        let mut inner = shard.inner.lock();
        if let Some(slot) = inner.position(pid) {
            let frame = &inner.frames[slot];
            let data = Arc::clone(&frame.data);
            if dirty {
                frame.dirty.store(true, AtomicOrdering::Release);
            }
            frame.last_used.store(tick, AtomicOrdering::Relaxed);
            Shard::bump(&shard.hits);
            return Ok(data);
        }
        Shard::bump(&shard.misses);

        // Read the page from disk into a fresh buffer. The shard mutex
        // is held across the read so two threads missing on the same
        // page cannot both load it (and diverge on which copy is
        // cached); hits on other pages of this shard proceed latch-free
        // the whole time.
        let mut buf: PageBuf = Box::new([0u8; PAGE_SIZE]);
        self.disk.lock().read_page(pid, &mut buf[..])?;
        let frame = Arc::new(Frame {
            pid,
            data: Arc::new(RwLock::new(buf)),
            dirty: AtomicBool::new(dirty),
            last_used: AtomicU64::new(tick),
        });
        let data = Arc::clone(&frame.data);

        if inner.frames.len() >= inner.capacity {
            let evicted = shard.evict_one(&mut inner, &self.disk)?;
            if evicted.is_none() {
                // Every local frame is pinned: borrow capacity from a
                // neighbor before giving up (see module docs).
                if !self.steal_capacity(idx, &mut inner) {
                    return Err(StorageError::PoolExhausted);
                }
                Shard::bump(&shard.steals);
            }
        }
        inner.frames.push(frame);
        shard.publish(&inner);
        Ok(data)
    }

    /// Try to move one frame of capacity from a neighbor shard into
    /// `starved` (whose mutex guard the caller holds). Probes neighbors
    /// in index order with `try_lock`, so two starved shards can never
    /// deadlock on each other; a donor must be able to evict an unpinned
    /// frame *and* stay at or above its donation floor.
    fn steal_capacity(&self, starved: usize, inner: &mut ShardInner) -> bool {
        let n = self.shards.len();
        for step in 1..n {
            let donor_idx = (starved + step) % n;
            let donor = &self.shards[donor_idx];
            let Some(mut donor_inner) = donor.inner.try_lock() else {
                continue;
            };
            let floor = (donor_inner.original_capacity / 2).max(2);
            if donor_inner.capacity <= floor {
                continue;
            }
            let donated = if donor_inner.frames.len() >= donor_inner.capacity {
                // Donor is full: it must free a frame to shrink.
                match donor.evict_one(&mut donor_inner, &self.disk) {
                    Ok(Some(_)) => true,
                    Ok(None) | Err(_) => false,
                }
            } else {
                true
            };
            if donated {
                donor_inner.capacity -= 1;
                inner.capacity += 1;
                return true;
            }
        }
        false
    }

    #[cfg(test)]
    fn shard_of_for_tests(&self, pid: PageId) -> usize {
        self.shard_of(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize, pages: usize) -> BufferPool {
        let mut disk = MemDisk::new();
        for _ in 0..pages {
            disk.allocate().unwrap();
        }
        BufferPool::new(Box::new(disk), frames)
    }

    #[test]
    fn read_after_write_roundtrips() {
        let p = pool(4, 2);
        {
            let mut w = p.fetch_write(1).unwrap();
            w[0] = 42;
            w[PAGE_SIZE - 1] = 7;
        }
        let r = p.fetch_read(1).unwrap();
        assert_eq!(r[0], 42);
        assert_eq!(r[PAGE_SIZE - 1], 7);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2, 4);
        {
            let mut w = p.fetch_write(0).unwrap();
            w[0] = 99;
        }
        // Touch three more pages to force 0 out of the 2-frame pool.
        for pid in 1..4 {
            let _ = p.fetch_read(pid).unwrap();
        }
        let stats = p.stats();
        assert!(stats.evictions >= 2, "{stats:?}");
        assert!(stats.writebacks >= 1, "{stats:?}");
        // Re-reading page 0 must see the written value (from disk).
        let r = p.fetch_read(0).unwrap();
        assert_eq!(r[0], 99);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let p = pool(2, 5);
        let pinned = p.fetch_read(0).unwrap();
        for pid in 1..5 {
            let _ = p.fetch_read(pid).unwrap();
        }
        // Page 0 must still be readable through the held guard.
        assert_eq!(pinned[0], 0);
    }

    #[test]
    fn all_pinned_pool_errors() {
        let p = pool(2, 3);
        let _a = p.fetch_read(0).unwrap();
        let _b = p.fetch_read(1).unwrap();
        assert!(matches!(p.fetch_read(2), Err(StorageError::PoolExhausted)));
    }

    #[test]
    fn hits_and_misses_counted() {
        let p = pool(4, 2);
        let _ = p.fetch_read(0).unwrap();
        let _ = p.fetch_read(0).unwrap();
        let _ = p.fetch_read(1).unwrap();
        let s = p.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        p.reset_stats();
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[test]
    fn flush_all_persists_and_clears_dirty() {
        let p = pool(4, 2);
        {
            let mut w = p.fetch_write(0).unwrap();
            w[10] = 5;
        }
        p.flush_all().unwrap();
        let s = p.stats();
        assert_eq!(s.writebacks, 1);
        // A second flush has nothing to do.
        p.flush_all().unwrap();
        assert_eq!(p.stats().writebacks, 1);
    }

    #[test]
    fn out_of_bounds_page_errors() {
        let p = pool(2, 1);
        assert!(matches!(
            p.fetch_read(9),
            Err(StorageError::PageOutOfBounds(9))
        ));
    }

    #[test]
    fn lru_prefers_older_frames() {
        let p = pool(2, 3);
        let _ = p.fetch_read(0).unwrap(); // old
        let _ = p.fetch_read(1).unwrap(); // newer
        let _ = p.fetch_read(0).unwrap(); // refresh 0 → 1 is now LRU
        let _ = p.fetch_read(2).unwrap(); // evicts 1
                                          // 0 still cached: hit.
        let before = p.stats().hits;
        let _ = p.fetch_read(0).unwrap();
        assert_eq!(p.stats().hits, before + 1);
    }

    #[test]
    fn small_pools_collapse_to_one_shard() {
        assert_eq!(pool(2, 1).shard_count(), 1);
        assert_eq!(pool(63, 1).shard_count(), 1);
        assert_eq!(pool(64, 1).shard_count(), 2);
        assert_eq!(pool(128, 1).shard_count(), 4);
        assert_eq!(pool(256, 1).shard_count(), 8);
        assert_eq!(pool(512, 1).shard_count(), 16);
        assert_eq!(pool(4096, 1).shard_count(), 16);
    }

    #[test]
    fn sharded_pool_roundtrips_and_aggregates_stats() {
        let p = pool(1024, 64);
        assert_eq!(p.shard_count(), MAX_SHARDS);
        for pid in 0..64u64 {
            let mut w = p.fetch_write(pid).unwrap();
            w[0] = pid as u8;
        }
        for pid in 0..64u64 {
            assert_eq!(p.fetch_read(pid).unwrap()[0], pid as u8);
        }
        let s = p.stats();
        assert_eq!(s.misses, 64, "{s:?}");
        assert_eq!(s.hits, 64, "{s:?}");
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        p.flush_all().unwrap();
        assert_eq!(p.stats().writebacks, 64);
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let a = PoolStats {
            hits: 10,
            misses: 4,
            writebacks: 1,
            evictions: 2,
            steals: 0,
        };
        let b = PoolStats {
            hits: 25,
            misses: 4,
            writebacks: 3,
            evictions: 2,
            steals: 1,
        };
        let d = b.delta_since(a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 0);
        assert_eq!(d.writebacks, 2);
        assert_eq!(d.evictions, 0);
        assert_eq!(d.steals, 1);
        // A reset between samples saturates instead of underflowing.
        let d = a.delta_since(b);
        assert_eq!(d.hits, 0);
        assert_eq!(PoolStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let p = std::sync::Arc::new(pool(256, 64));
        for pid in 0..64u64 {
            let mut w = p.fetch_write(pid).unwrap();
            w[..8].copy_from_slice(&pid.to_le_bytes());
        }
        std::thread::scope(|scope| {
            for t in 0..8 {
                let p = std::sync::Arc::clone(&p);
                scope.spawn(move || {
                    for round in 0..4u64 {
                        for pid in 0..64u64 {
                            let pid = (pid + t + round) % 64;
                            let r = p.fetch_read(pid).unwrap();
                            assert_eq!(
                                u64::from_le_bytes(r[..8].try_into().unwrap()),
                                pid,
                                "page content raced"
                            );
                        }
                    }
                });
            }
        });
        let s = p.stats();
        assert_eq!(s.hits + s.misses, 64 + 8 * 4 * 64);
    }

    #[test]
    fn concurrent_hits_race_eviction_without_losing_pages() {
        // A pool under heavy eviction pressure (32 frames/shard over
        // ~128 pages/shard) with 8 threads: the unpublish → drain →
        // re-check protocol must never serve torn or stale page
        // contents and never lose a write-back.
        let p = std::sync::Arc::new(pool(64, 256));
        for pid in 0..256u64 {
            let mut w = p.fetch_write(pid).unwrap();
            w[..8].copy_from_slice(&pid.to_le_bytes());
        }
        p.flush_all().unwrap();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let p = std::sync::Arc::clone(&p);
                scope.spawn(move || {
                    for round in 0..8u64 {
                        for i in 0..64u64 {
                            let pid = (i * 7 + t * 13 + round) % 256;
                            let r = p.fetch_read(pid).unwrap();
                            assert_eq!(
                                u64::from_le_bytes(r[..8].try_into().unwrap()),
                                pid,
                                "page {pid} torn under eviction pressure"
                            );
                        }
                    }
                });
            }
        });
        let s = p.stats();
        assert!(s.evictions > 0, "pressure must evict: {s:?}");
        assert_eq!(s.hits + s.misses, 256 + 8 * 8 * 64);
    }

    #[test]
    fn starved_shard_steals_capacity_from_a_neighbor() {
        // Two shards of 32 frames each. Pin every frame of one shard,
        // then fetch one more page of that shard: instead of
        // PoolExhausted, the miss must steal capacity from the other
        // (entirely free) shard.
        let p = pool(64, 512);
        assert_eq!(p.shard_count(), 2);
        let shard0: Vec<PageId> = (0..512)
            .filter(|&pid| p.shard_of_for_tests(pid) == 0)
            .collect();
        assert!(shard0.len() > 33, "hash must spread pages over shard 0");
        let pins: Vec<_> = shard0[..32]
            .iter()
            .map(|&pid| p.fetch_read(pid).unwrap())
            .collect();
        // 33rd page of shard 0: every local frame pinned, neighbor free.
        let extra = p.fetch_read(shard0[32]).unwrap();
        assert_eq!(extra[0], 0);
        assert_eq!(p.stats().steals, 1, "{:?}", p.stats());
        drop(pins);
        // Donation floor: capacity cannot be stolen below half the
        // donor's original budget — 16 more steals must eventually fail.
        let mut pins = vec![p.fetch_read(shard0[32]).unwrap(), extra];
        let mut exhausted = false;
        for &pid in &shard0[..shard0.len().min(128)] {
            match p.fetch_read(pid) {
                Ok(g) => pins.push(g),
                Err(StorageError::PoolExhausted) => {
                    exhausted = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(exhausted, "the donation floor must eventually hold");
    }

    #[test]
    fn steals_conserve_total_capacity() {
        let p = pool(64, 512);
        let shard0: Vec<PageId> = (0..512)
            .filter(|&pid| p.shard_of_for_tests(pid) == 0)
            .collect();
        let _pins: Vec<_> = shard0[..32]
            .iter()
            .map(|&pid| p.fetch_read(pid).unwrap())
            .collect();
        let _extra = p.fetch_read(shard0[32]).unwrap();
        let total: usize = p.shards.iter().map(|s| s.inner.lock().capacity).sum();
        assert_eq!(total, 64, "steals move capacity, never create it");
    }
}
