//! The buffer pool: a fixed set of in-memory frames caching disk pages,
//! with LRU eviction, pin tracking, dirty write-back, and I/O statistics.
//!
//! Pinning is tracked through `Arc` strong counts: a page guard holds a
//! clone of the frame's data `Arc`, so a frame is evictable exactly when
//! its count drops back to one. Guards are handed out as owned
//! `parking_lot` read/write locks, so multiple pages can be held at once
//! (B+-tree splits hold parent and child) without borrowing the pool.

use crate::disk::{Disk, PAGE_SIZE};
use crate::error::StorageError;
use crate::PageId;
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

type PageBuf = Box<[u8; PAGE_SIZE]>;
type PageArc = Arc<RwLock<PageBuf>>;

/// Read guard over a page's bytes.
pub struct PageRead {
    guard: ArcRwLockReadGuard<RawRwLock, PageBuf>,
}

impl std::ops::Deref for PageRead {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

/// Write guard over a page's bytes. Acquiring one marks the frame dirty.
pub struct PageWrite {
    guard: ArcRwLockWriteGuard<RawRwLock, PageBuf>,
}

impl std::ops::Deref for PageWrite {
    type Target = [u8; PAGE_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl std::ops::DerefMut for PageWrite {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

struct Frame {
    pid: PageId,
    data: PageArc,
    dirty: bool,
    last_used: u64,
}

/// Buffer-pool counters; the experiment harness reports these as the I/O
/// cost of each query plan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
    /// Frames evicted.
    pub evictions: u64,
}

struct Inner {
    disk: Box<dyn Disk>,
    frames: Vec<Frame>,
    table: HashMap<PageId, usize>,
    capacity: usize,
    tick: u64,
    stats: PoolStats,
}

/// The buffer pool. Cheap to clone conceptually — it is internally a
/// single mutex-protected structure sized at construction.
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Box<dyn Disk>, capacity: usize) -> BufferPool {
        assert!(capacity >= 2, "a useful pool needs at least two frames");
        BufferPool {
            inner: Mutex::new(Inner {
                disk,
                frames: Vec::with_capacity(capacity),
                table: HashMap::with_capacity(capacity),
                capacity,
                tick: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Fetch a page for reading.
    pub fn fetch_read(&self, pid: PageId) -> Result<PageRead, StorageError> {
        let arc = self.fetch_arc(pid, false)?;
        Ok(PageRead {
            guard: RwLock::read_arc(&arc),
        })
    }

    /// Fetch a page for writing (marks it dirty).
    pub fn fetch_write(&self, pid: PageId) -> Result<PageWrite, StorageError> {
        let arc = self.fetch_arc(pid, true)?;
        Ok(PageWrite {
            guard: RwLock::write_arc(&arc),
        })
    }

    /// Allocate a fresh zeroed page on disk and return its id.
    pub fn allocate(&self) -> Result<PageId, StorageError> {
        let mut inner = self.inner.lock();
        inner.disk.allocate()
    }

    /// Number of pages on the underlying device.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().disk.page_count()
    }

    /// Write all dirty frames back and sync the device.
    pub fn flush_all(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        let dirty: Vec<usize> = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.dirty)
            .map(|(i, _)| i)
            .collect();
        for i in dirty {
            let pid = inner.frames[i].pid;
            let data = inner.frames[i].data.clone();
            let buf = data.read();
            inner.disk.write_page(pid, &buf[..])?;
            drop(buf);
            inner.frames[i].dirty = false;
            inner.stats.writebacks += 1;
        }
        inner.disk.sync()
    }

    /// Current I/O statistics.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Reset statistics (used between experiment phases).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = PoolStats::default();
    }

    fn fetch_arc(&self, pid: PageId, dirty: bool) -> Result<PageArc, StorageError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&idx) = inner.table.get(&pid) {
            inner.stats.hits += 1;
            let f = &mut inner.frames[idx];
            f.last_used = tick;
            f.dirty |= dirty;
            return Ok(f.data.clone());
        }
        inner.stats.misses += 1;

        // Read the page from disk into a fresh buffer.
        let mut buf: PageBuf = Box::new([0u8; PAGE_SIZE]);
        inner.disk.read_page(pid, &mut buf[..])?;
        let arc: PageArc = Arc::new(RwLock::new(buf));

        if inner.frames.len() < inner.capacity {
            let idx = inner.frames.len();
            inner.frames.push(Frame {
                pid,
                data: arc.clone(),
                dirty,
                last_used: tick,
            });
            inner.table.insert(pid, idx);
            return Ok(arc);
        }

        // Evict the least-recently-used unpinned frame. A frame is pinned
        // while any guard (or returned Arc) is alive, i.e. strong count > 1.
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| Arc::strong_count(&f.data) == 1)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .ok_or(StorageError::PoolExhausted)?;

        let old = &inner.frames[victim];
        let (old_pid, old_dirty, old_data) = (old.pid, old.dirty, old.data.clone());
        if old_dirty {
            let data = old_data.read();
            inner.disk.write_page(old_pid, &data[..])?;
            drop(data);
            inner.stats.writebacks += 1;
        }
        inner.stats.evictions += 1;
        inner.table.remove(&old_pid);
        inner.frames[victim] = Frame {
            pid,
            data: arc.clone(),
            dirty,
            last_used: tick,
        };
        inner.table.insert(pid, victim);
        Ok(arc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize, pages: usize) -> BufferPool {
        let mut disk = MemDisk::new();
        for _ in 0..pages {
            disk.allocate().unwrap();
        }
        BufferPool::new(Box::new(disk), frames)
    }

    #[test]
    fn read_after_write_roundtrips() {
        let p = pool(4, 2);
        {
            let mut w = p.fetch_write(1).unwrap();
            w[0] = 42;
            w[PAGE_SIZE - 1] = 7;
        }
        let r = p.fetch_read(1).unwrap();
        assert_eq!(r[0], 42);
        assert_eq!(r[PAGE_SIZE - 1], 7);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2, 4);
        {
            let mut w = p.fetch_write(0).unwrap();
            w[0] = 99;
        }
        // Touch three more pages to force 0 out of the 2-frame pool.
        for pid in 1..4 {
            let _ = p.fetch_read(pid).unwrap();
        }
        let stats = p.stats();
        assert!(stats.evictions >= 2, "{stats:?}");
        assert!(stats.writebacks >= 1, "{stats:?}");
        // Re-reading page 0 must see the written value (from disk).
        let r = p.fetch_read(0).unwrap();
        assert_eq!(r[0], 99);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let p = pool(2, 5);
        let pinned = p.fetch_read(0).unwrap();
        for pid in 1..5 {
            let _ = p.fetch_read(pid).unwrap();
        }
        // Page 0 must still be readable through the held guard.
        assert_eq!(pinned[0], 0);
    }

    #[test]
    fn all_pinned_pool_errors() {
        let p = pool(2, 3);
        let _a = p.fetch_read(0).unwrap();
        let _b = p.fetch_read(1).unwrap();
        assert!(matches!(p.fetch_read(2), Err(StorageError::PoolExhausted)));
    }

    #[test]
    fn hits_and_misses_counted() {
        let p = pool(4, 2);
        let _ = p.fetch_read(0).unwrap();
        let _ = p.fetch_read(0).unwrap();
        let _ = p.fetch_read(1).unwrap();
        let s = p.stats();
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 1);
        p.reset_stats();
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[test]
    fn flush_all_persists_and_clears_dirty() {
        let p = pool(4, 2);
        {
            let mut w = p.fetch_write(0).unwrap();
            w[10] = 5;
        }
        p.flush_all().unwrap();
        let s = p.stats();
        assert_eq!(s.writebacks, 1);
        // A second flush has nothing to do.
        p.flush_all().unwrap();
        assert_eq!(p.stats().writebacks, 1);
    }

    #[test]
    fn out_of_bounds_page_errors() {
        let p = pool(2, 1);
        assert!(matches!(
            p.fetch_read(9),
            Err(StorageError::PageOutOfBounds(9))
        ));
    }

    #[test]
    fn lru_prefers_older_frames() {
        let p = pool(2, 3);
        let _ = p.fetch_read(0).unwrap(); // old
        let _ = p.fetch_read(1).unwrap(); // newer
        let _ = p.fetch_read(0).unwrap(); // refresh 0 → 1 is now LRU
        let _ = p.fetch_read(2).unwrap(); // evicts 1
                                          // 0 still cached: hit.
        let before = p.stats().hits;
        let _ = p.fetch_read(0).unwrap();
        assert_eq!(p.stats().hits, before + 1);
    }
}
