//! Write-ahead log: append-only segments with CRC-framed records and a
//! group-commit flusher.
//!
//! The durability contract of the ingest path (query layer) rests on
//! this module: a batch is *committed* once its record is appended and
//! the covering bytes are fsynced; everything after that — heap
//! inserts, index postings, history rows — can be replayed from the
//! log. The WAL knows nothing about batches: records are opaque byte
//! payloads framed as
//!
//! ```text
//! +----------------+----------------+=================+
//! | len: u32 (LE)  | crc32: u32 (LE)| payload (len B) |
//! +----------------+----------------+=================+
//! ```
//!
//! packed back to back in numbered segment files
//! (`wal-00000001.seg`, `wal-00000002.seg`, ...) inside one directory.
//! A segment rotates once it crosses the segment byte limit, so
//! no single file grows without bound and sealed segments can be
//! garbage-collected once a checkpoint covers them
//! ([`Wal::gc_after_checkpoint`]).
//!
//! # Group commit
//!
//! Every append advances a monotone **LSN** — the total framed bytes
//! written through this handle. Concurrent writers append under the
//! caller's write latch, then wait for durability *outside* it through
//! a [`WalFlusher`] (cloned from [`Wal::flusher`]): `wait_durable(lsn)`
//! blocks until `durable_lsn >= lsn`. The first waiter to find no
//! flush in flight becomes the **leader**: it snapshots the current
//! appended LSN, releases the group lock, issues one `fsync`, then
//! advances the durable LSN to the snapshot and wakes every follower.
//! A single fsync thereby covers every record enqueued since the last
//! flush; followers whose LSN the leader's snapshot covers never touch
//! the disk at all. There is no busy-wait — followers sleep on a
//! condvar — and no dedicated thread to shut down.
//!
//! # Recovery
//!
//! [`Wal::open`] scans the segments in order and stops at the first
//! frame that does not check out — a torn length prefix, a length
//! running past end-of-file, or a CRC mismatch (a crash mid-`write`
//! leaves exactly such a tail). The bad tail is **truncated** and any
//! later segments are deleted, so the log ends at the last record that
//! was fully on disk; the payloads up to that point are returned for
//! the caller to replay. Truncation makes recovery idempotent at this
//! layer: re-opening a recovered log finds only whole records.

use crate::error::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Frame header size: `len` + `crc32`.
const HEADER: u64 = 8;

/// Upper bound on one record's payload; a length prefix beyond this is
/// treated as corruption rather than an allocation request.
const MAX_RECORD: u32 = 64 * 1024 * 1024;

/// Default segment rotation threshold.
const DEFAULT_SEGMENT_LIMIT: u64 = 8 * 1024 * 1024;

/// Flush-wait samples kept for the p95 estimate.
const WAIT_RING: usize = 1024;

/// When the log forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record (safest, slowest).
    Always,
    /// fsync on [`Wal::commit`] or through the group-commit flusher —
    /// at most one sync per flush group. The default for the ingest
    /// path.
    Commit,
    /// Never fsync; the OS flushes when it pleases. A crash can lose
    /// records that `append` already returned for. Benchmarks only.
    Never,
}

/// Counters the log keeps about itself (surfaced in `GET /stats` and
/// `ExecStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalStats {
    /// Records appended through this handle.
    pub records_appended: u64,
    /// Payload + framing bytes written through this handle.
    pub bytes_logged: u64,
    /// fsync calls issued (appender-side + group-commit flusher).
    pub fsyncs: u64,
    /// Whole records recovered by the opening scan.
    pub records_replayed: u64,
    /// Torn-tail bytes truncated by the opening scan.
    pub truncated_bytes: u64,
    /// fsyncs issued by the group-commit flusher (each one led by the
    /// first waiter to find no flush in flight).
    pub group_commits: u64,
    /// Durability waits served by the flusher (≈ batches acknowledged
    /// through the group-commit path).
    pub commits: u64,
    /// `commits / group_commits` — how many batches each group fsync
    /// amortized. 0 when no group fsync has happened.
    pub batches_per_fsync: f64,
    /// p95 time a waiter spent blocked in `wait_durable` (over the
    /// last `WAIT_RING` (1024) waits).
    pub flush_wait_p95: Duration,
    /// Sealed segments deleted by checkpoint GC.
    pub segments_deleted: u64,
}

/// Shared state between the appender and the group-commit waiters. All
/// fields sit under one mutex: the critical sections are nanoseconds
/// against the milliseconds of the fsync they amortize, and the fsync
/// itself runs with the lock *released*.
struct GroupState {
    /// The active segment's file, shared so the flush leader can sync
    /// without borrowing the `Wal`. Rotation swaps it; bytes at or
    /// below the pre-rotation LSN live in already-sealed segments.
    file: Option<Arc<File>>,
    /// Total framed bytes appended (mirror of `Wal::appended_lsn`).
    appended_lsn: u64,
    /// Everything at or below this LSN is on stable storage.
    durable_lsn: u64,
    /// A leader is between snapshot and fsync-completion.
    flushing: bool,
    /// A leader's fsync failed; the log is unusable for durability.
    poisoned: bool,
    /// Group fsyncs issued.
    fsyncs: u64,
    /// Waits served.
    commits: u64,
    wait_ns: Vec<u64>,
    wait_next: usize,
}

impl GroupState {
    fn record_wait(&mut self, wait: Duration) {
        let ns = wait.as_nanos().min(u64::MAX as u128) as u64;
        if self.wait_ns.len() < WAIT_RING {
            self.wait_ns.push(ns);
        } else {
            self.wait_ns[self.wait_next] = ns;
            self.wait_next = (self.wait_next + 1) % WAIT_RING;
        }
    }

    fn wait_p95(&self) -> Duration {
        if self.wait_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.wait_ns.clone();
        sorted.sort_unstable();
        Duration::from_nanos(sorted[(sorted.len() - 1) * 95 / 100])
    }
}

struct GroupCommit {
    state: Mutex<GroupState>,
    flushed: Condvar,
}

impl GroupCommit {
    fn new(file: Arc<File>) -> Arc<GroupCommit> {
        Arc::new(GroupCommit {
            state: Mutex::new(GroupState {
                file: Some(file),
                appended_lsn: 0,
                durable_lsn: 0,
                flushing: false,
                poisoned: false,
                fsyncs: 0,
                commits: 0,
                wait_ns: Vec::new(),
                wait_next: 0,
            }),
            flushed: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, GroupState> {
        // A panicking waiter must not wedge the whole write path.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// What one `wait_durable` call observed — folded into per-statement
/// `ExecStats` by the session.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlushTicket {
    /// How long the caller was blocked waiting for its LSN.
    pub wait: Duration,
    /// Group fsyncs this caller led on behalf of everyone (0 when it
    /// rode a flush someone else issued).
    pub fsyncs_led: u64,
}

/// A cloneable handle for waiting on durability without holding the
/// `Wal` (and therefore without holding the caller's write latch).
#[derive(Clone)]
pub struct WalFlusher {
    group: Arc<GroupCommit>,
}

impl WalFlusher {
    /// Block until every byte at or below `lsn` is on stable storage.
    ///
    /// Leader/follower: if no flush is in flight, this caller becomes
    /// the leader — it snapshots the appended LSN and the active file
    /// under the group lock, drops the lock, issues **one**
    /// `sync_data`, then advances the durable LSN to the snapshot and
    /// wakes all followers. The snapshot argument makes this safe:
    /// every byte at or below the snapshot LSN was written either to
    /// the snapshotted file or to an earlier segment that rotation
    /// already sealed and synced.
    pub fn wait_durable(&self, lsn: u64) -> Result<FlushTicket, StorageError> {
        let started = Instant::now();
        let mut led = 0u64;
        let mut state = self.group.lock();
        loop {
            if state.poisoned {
                return Err(poisoned_error());
            }
            if state.durable_lsn >= lsn {
                state.commits += 1;
                let wait = started.elapsed();
                state.record_wait(wait);
                return Ok(FlushTicket {
                    wait,
                    fsyncs_led: led,
                });
            }
            if !state.flushing {
                state.flushing = true;
                let target = state.appended_lsn;
                let file = state.file.clone();
                drop(state);
                let synced = match &file {
                    Some(f) => f.sync_data(),
                    None => Ok(()),
                };
                state = self.group.lock();
                state.flushing = false;
                match synced {
                    Ok(()) => {
                        state.durable_lsn = state.durable_lsn.max(target);
                        state.fsyncs += 1;
                        led += 1;
                    }
                    Err(e) => {
                        state.poisoned = true;
                        self.group.flushed.notify_all();
                        return Err(e.into());
                    }
                }
                self.group.flushed.notify_all();
            } else {
                state = self
                    .group
                    .flushed
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

fn poisoned_error() -> StorageError {
    StorageError::Io(std::io::Error::other(
        "WAL flusher poisoned by an earlier fsync failure",
    ))
}

/// An open write-ahead log, positioned to append at the clean tail.
pub struct Wal {
    dir: PathBuf,
    policy: SyncPolicy,
    file: Arc<File>,
    seg_index: u64,
    seg_bytes: u64,
    segment_limit: u64,
    /// Total framed bytes appended through this handle — the LSN of
    /// the last appended record's end.
    appended_lsn: u64,
    group: Arc<GroupCommit>,
    stats: WalStats,
}

impl Wal {
    /// Create a log in `dir` (created if missing; must hold no
    /// segments yet).
    pub fn create(dir: impl AsRef<Path>, policy: SyncPolicy) -> Result<Wal, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if !segment_indexes(&dir)?.is_empty() {
            return Err(StorageError::DuplicateObject(format!(
                "WAL directory {} already holds segments; use Wal::open",
                dir.display()
            )));
        }
        let file = Arc::new(open_segment(&dir, 1)?);
        Ok(Wal {
            dir,
            policy,
            group: GroupCommit::new(Arc::clone(&file)),
            file,
            seg_index: 1,
            seg_bytes: 0,
            segment_limit: DEFAULT_SEGMENT_LIMIT,
            appended_lsn: 0,
            stats: WalStats::default(),
        })
    }

    /// Open an existing log: scan every segment in order, truncate the
    /// torn tail (if any), and return the committed payloads together
    /// with a handle appending after the last whole record.
    pub fn open(
        dir: impl AsRef<Path>,
        policy: SyncPolicy,
    ) -> Result<(Wal, Vec<Vec<u8>>), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let segments = segment_indexes(&dir)?;
        if segments.is_empty() {
            let wal = Wal::create(&dir, policy)?;
            return Ok((wal, Vec::new()));
        }
        let mut payloads = Vec::new();
        let mut stats = WalStats::default();
        let mut clean = (segments[0], 0u64); // (segment, byte offset of the clean tail)
        let mut torn_at: Option<usize> = None;
        for (i, &seg) in segments.iter().enumerate() {
            let path = segment_path(&dir, seg);
            let bytes = std::fs::read(&path)?;
            let valid = scan_segment(&bytes, &mut payloads);
            stats.records_replayed = payloads.len() as u64;
            clean = (seg, valid);
            if valid < bytes.len() as u64 {
                // Torn or corrupt tail: truncate this segment here and
                // drop everything after it.
                stats.truncated_bytes += bytes.len() as u64 - valid;
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid)?;
                file.sync_all()?;
                stats.fsyncs += 1;
                torn_at = Some(i);
                break;
            }
        }
        if let Some(i) = torn_at {
            for &seg in &segments[i + 1..] {
                let path = segment_path(&dir, seg);
                stats.truncated_bytes += std::fs::metadata(&path)?.len();
                std::fs::remove_file(&path)?;
            }
        }
        let (seg_index, seg_bytes) = clean;
        let mut file = open_segment(&dir, seg_index)?;
        file.seek(SeekFrom::Start(seg_bytes))?;
        let file = Arc::new(file);
        Ok((
            Wal {
                dir,
                policy,
                group: GroupCommit::new(Arc::clone(&file)),
                file,
                seg_index,
                seg_bytes,
                segment_limit: DEFAULT_SEGMENT_LIMIT,
                appended_lsn: 0,
                stats,
            },
            payloads,
        ))
    }

    /// Rotate segments once the current one crosses `limit` bytes.
    pub fn set_segment_limit(&mut self, limit: u64) {
        self.segment_limit = limit.max(HEADER + 1);
    }

    /// The directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters accumulated by this handle (appends, GC), its opening
    /// scan (replays, truncation), and the group-commit flusher.
    pub fn stats(&self) -> WalStats {
        let mut merged = self.stats;
        let state = self.group.lock();
        merged.fsyncs += state.fsyncs;
        merged.group_commits = state.fsyncs;
        merged.commits = state.commits;
        merged.batches_per_fsync = if state.fsyncs > 0 {
            state.commits as f64 / state.fsyncs as f64
        } else {
            0.0
        };
        merged.flush_wait_p95 = state.wait_p95();
        merged
    }

    /// fsyncs issued by this handle alone (appends, commits, rotation
    /// seals — not the group flusher's).
    pub fn appender_fsyncs(&self) -> u64 {
        self.stats.fsyncs
    }

    /// The LSN of the last appended record's end: pass it to
    /// [`WalFlusher::wait_durable`] to block until that record is on
    /// stable storage.
    pub fn last_lsn(&self) -> u64 {
        self.appended_lsn
    }

    /// A cloneable durability handle, usable without holding the `Wal`
    /// (and therefore without the caller's write latch).
    pub fn flusher(&self) -> WalFlusher {
        WalFlusher {
            group: Arc::clone(&self.group),
        }
    }

    /// Append one record. Under [`SyncPolicy::Always`] the segment is
    /// fsynced before returning; otherwise durability waits for
    /// [`Wal::commit`] or [`WalFlusher::wait_durable`]. Returns the
    /// framed size in bytes.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StorageError> {
        if payload.len() as u64 > MAX_RECORD as u64 {
            return Err(StorageError::TupleTooLarge {
                size: payload.len(),
                max: MAX_RECORD as usize,
            });
        }
        if self.seg_bytes >= self.segment_limit {
            self.rotate(true)?;
        }
        let mut frame = Vec::with_capacity(payload.len() + HEADER as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        (&*self.file).write_all(&frame)?;
        self.seg_bytes += frame.len() as u64;
        self.appended_lsn += frame.len() as u64;
        self.stats.records_appended += 1;
        self.stats.bytes_logged += frame.len() as u64;
        if self.policy == SyncPolicy::Always {
            self.file.sync_data()?;
            self.stats.fsyncs += 1;
        }
        let mut state = self.group.lock();
        state.appended_lsn = self.appended_lsn;
        if self.policy != SyncPolicy::Commit {
            // Always: the sync above covered it. Never: nothing will
            // ever sync, so waiting would hang — declare it "durable".
            state.durable_lsn = state.durable_lsn.max(self.appended_lsn);
        }
        Ok(frame.len() as u64)
    }

    /// Make everything appended so far durable (per policy). This is
    /// the synchronous commit point for single-writer callers; the
    /// concurrent ingest path uses [`WalFlusher::wait_durable`]
    /// instead so one fsync can cover many batches.
    pub fn commit(&mut self) -> Result<(), StorageError> {
        match self.policy {
            SyncPolicy::Always => Ok(()), // every append already synced
            SyncPolicy::Commit => {
                self.file.sync_data()?;
                self.stats.fsyncs += 1;
                let mut state = self.group.lock();
                state.durable_lsn = state.durable_lsn.max(self.appended_lsn);
                Ok(())
            }
            SyncPolicy::Never => {
                (&*self.file).flush()?;
                Ok(())
            }
        }
    }

    /// Checkpoint barrier: force every appended byte to stable storage
    /// regardless of how the group flusher is pacing (no-op under
    /// [`SyncPolicy::Never`]). The session calls this under its write
    /// latch right before saving the database, so the saved state is
    /// always a subset of the durable log.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        if self.policy == SyncPolicy::Never {
            (&*self.file).flush()?;
            return Ok(());
        }
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        let mut state = self.group.lock();
        state.durable_lsn = state.durable_lsn.max(self.appended_lsn);
        Ok(())
    }

    /// Garbage-collect the log after a checkpoint: rotate to a fresh
    /// segment (if the current one holds records) and delete every
    /// sealed segment. Returns the number of segments deleted.
    ///
    /// # Safety rule
    ///
    /// Only call once a checkpoint has persisted the effect of **every
    /// appended record** — the session does this under its write latch
    /// (so no append can race in) right after `Database::save`, which
    /// itself runs after [`Wal::flush`]. Every deleted record's effect
    /// is then in the saved database, so recovery never needs it.
    pub fn gc_after_checkpoint(&mut self) -> Result<u64, StorageError> {
        if self.seg_bytes > 0 {
            // The caller just flushed; no second seal-sync needed.
            self.rotate(false)?;
        }
        let mut deleted = 0u64;
        for seg in segment_indexes(&self.dir)? {
            if seg < self.seg_index {
                std::fs::remove_file(segment_path(&self.dir, seg))?;
                deleted += 1;
            }
        }
        self.stats.segments_deleted += deleted;
        Ok(deleted)
    }

    fn rotate(&mut self, sync_old: bool) -> Result<(), StorageError> {
        // Seal the old segment before the new one accepts records.
        if sync_old && self.policy != SyncPolicy::Never {
            self.file.sync_data()?;
            self.stats.fsyncs += 1;
        }
        self.seg_index += 1;
        self.file = Arc::new(open_segment(&self.dir, self.seg_index)?);
        self.seg_bytes = 0;
        let mut state = self.group.lock();
        state.file = Some(Arc::clone(&self.file));
        // Everything before the rotation lives in sealed segments that
        // were just synced (or needs no sync under Never): a flush
        // leader snapshotting now must not fsync the fresh empty file
        // and then mark old bytes durable without covering them.
        state.durable_lsn = state.durable_lsn.max(self.appended_lsn);
        Ok(())
    }
}

/// Scan one segment's bytes, pushing whole payloads onto `out`.
/// Returns the offset of the first byte that is not part of a valid
/// record (== `bytes.len()` when the segment is clean).
fn scan_segment(bytes: &[u8], out: &mut Vec<Vec<u8>>) -> u64 {
    let mut pos = 0usize;
    loop {
        let Some(header) = bytes.get(pos..pos + HEADER as usize) else {
            return pos as u64; // torn header (or clean EOF)
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as u32 > MAX_RECORD {
            return pos as u64; // absurd length: corrupt frame
        }
        let Some(payload) = bytes.get(pos + HEADER as usize..pos + HEADER as usize + len) else {
            return pos as u64; // torn payload
        };
        if crc32(payload) != crc {
            return pos as u64; // bit rot or torn write inside the payload
        }
        out.push(payload.to_vec());
        pos += HEADER as usize + len;
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

fn open_segment(dir: &Path, index: u64) -> Result<File, StorageError> {
    Ok(OpenOptions::new()
        .create(true)
        .append(true)
        .read(true)
        .open(segment_path(dir, index))?)
}

/// Segment indexes present in `dir`, ascending.
fn segment_indexes(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
        {
            if let Ok(n) = num.parse::<u64>() {
                out.push(n);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Hand-rolled
/// because the build is dependency-free by policy.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("staccato_wal_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_open_replays_everything() {
        let tmp = TempDir::new("roundtrip");
        let payloads: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; (i as usize) * 7 + 1]).collect();
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.commit().unwrap();
            assert_eq!(wal.stats().records_appended, 20);
            assert_eq!(wal.stats().fsyncs, 1);
        }
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed, payloads);
        assert_eq!(wal.stats().records_replayed, 20);
        assert_eq!(wal.stats().truncated_bytes, 0);
    }

    #[test]
    fn appends_continue_after_reopen() {
        let tmp = TempDir::new("continue");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Never).unwrap();
            wal.append(b"one").unwrap();
            wal.commit().unwrap();
        }
        {
            let (mut wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Never).unwrap();
            assert_eq!(replayed.len(), 1);
            wal.append(b"two").unwrap();
            wal.commit().unwrap();
        }
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(replayed, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_whole_record() {
        let tmp = TempDir::new("torn");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.append(b"committed record").unwrap();
            wal.append(b"the batch a crash tears").unwrap();
            wal.commit().unwrap();
        }
        // Tear the tail: chop the last record mid-payload.
        let seg = segment_path(&tmp.0, 1);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed, vec![b"committed record".to_vec()]);
        assert!(wal.stats().truncated_bytes > 0);
        // Idempotent: a second recovery finds a clean log.
        drop(wal);
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(wal.stats().truncated_bytes, 0);
    }

    #[test]
    fn corrupt_crc_cuts_the_log_at_the_bad_record() {
        let tmp = TempDir::new("crc");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.append(b"good one").unwrap();
            wal.append(b"about to rot").unwrap();
            wal.append(b"unreachable after the rot").unwrap();
            wal.commit().unwrap();
        }
        // Flip one payload byte of the second record.
        let seg = segment_path(&tmp.0, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let second_payload = HEADER as usize + b"good one".len() + HEADER as usize;
        bytes[second_payload] ^= 0xA5;
        std::fs::write(&seg, &bytes).unwrap();
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed, vec![b"good one".to_vec()]);
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let tmp = TempDir::new("rotate");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.set_segment_limit(64);
            for i in 0u32..40 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
            wal.commit().unwrap();
        }
        assert!(
            segment_indexes(&tmp.0).unwrap().len() > 1,
            "the limit must force rotation"
        );
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        let got: Vec<u32> = replayed
            .iter()
            .map(|p| u32::from_le_bytes(p[..4].try_into().unwrap()))
            .collect();
        assert_eq!(got, (0u32..40).collect::<Vec<_>>());
    }

    #[test]
    fn torn_segment_drops_later_segments_entirely() {
        let tmp = TempDir::new("cascade");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.set_segment_limit(32);
            for i in 0u32..20 {
                wal.append(&[i as u8; 16]).unwrap();
            }
            wal.commit().unwrap();
        }
        let segments = segment_indexes(&tmp.0).unwrap();
        assert!(segments.len() >= 3);
        // Corrupt the *first* segment's second record: everything after
        // it — including whole later segments — is unreachable.
        let seg = segment_path(&tmp.0, segments[0]);
        let mut bytes = std::fs::read(&seg).unwrap();
        let second = HEADER as usize + 16 + 4;
        bytes[second] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(segment_indexes(&tmp.0).unwrap(), vec![segments[0]]);
        assert!(wal.stats().truncated_bytes > 0);
    }

    #[test]
    fn sync_policies_count_fsyncs() {
        let tmp = TempDir::new("sync");
        let mut wal = Wal::create(tmp.0.join("always"), SyncPolicy::Always).unwrap();
        wal.append(b"x").unwrap();
        wal.append(b"y").unwrap();
        wal.commit().unwrap();
        assert_eq!(wal.stats().fsyncs, 2, "Always syncs per append");

        let mut wal = Wal::create(tmp.0.join("never"), SyncPolicy::Never).unwrap();
        wal.append(b"x").unwrap();
        wal.commit().unwrap();
        assert_eq!(wal.stats().fsyncs, 0, "Never never syncs");
    }

    #[test]
    fn create_refuses_a_dirty_directory() {
        let tmp = TempDir::new("dirty");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Never).unwrap();
            wal.append(b"x").unwrap();
        }
        assert!(matches!(
            Wal::create(&tmp.0, SyncPolicy::Never),
            Err(StorageError::DuplicateObject(_))
        ));
    }

    #[test]
    fn one_group_fsync_covers_every_pending_batch() {
        let tmp = TempDir::new("group");
        let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
        let mut lsns = Vec::new();
        for i in 0u8..5 {
            wal.append(&[i; 9]).unwrap();
            lsns.push(wal.last_lsn());
        }
        let flusher = wal.flusher();
        // The first waiter leads one fsync whose snapshot covers all
        // five records; the rest find their LSN already durable.
        for &lsn in &lsns {
            flusher.wait_durable(lsn).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.group_commits, 1, "one leader fsync");
        assert_eq!(stats.fsyncs, 1);
        assert_eq!(stats.commits, 5);
        assert!((stats.batches_per_fsync - 5.0).abs() < 1e-9);
        drop(wal);
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed.len(), 5);
    }

    #[test]
    fn wait_durable_returns_immediately_when_already_durable() {
        let tmp = TempDir::new("group_nowait");
        let mut wal = Wal::create(&tmp.0, SyncPolicy::Always).unwrap();
        wal.append(b"synced at append").unwrap();
        let lsn = wal.last_lsn();
        let ticket = wal.flusher().wait_durable(lsn).unwrap();
        assert_eq!(ticket.fsyncs_led, 0, "Always needs no group fsync");
        assert_eq!(wal.stats().group_commits, 0);
    }

    #[test]
    fn concurrent_waiters_all_reach_durability() {
        const THREADS: usize = 8;
        const BATCHES: usize = 5;
        let tmp = TempDir::new("group_threads");
        let wal = Mutex::new(Wal::create(&tmp.0, SyncPolicy::Commit).unwrap());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let wal = &wal;
                scope.spawn(move || {
                    for b in 0..BATCHES {
                        let (flusher, lsn) = {
                            let mut w = wal.lock().unwrap();
                            w.append(&[t as u8, b as u8, 0xAB]).unwrap();
                            (w.flusher(), w.last_lsn())
                        };
                        flusher.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        let wal = wal.into_inner().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.commits, (THREADS * BATCHES) as u64);
        assert!(stats.group_commits >= 1);
        assert!(stats.group_commits <= (THREADS * BATCHES) as u64);
        drop(wal);
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed.len(), THREADS * BATCHES);
    }

    #[test]
    fn gc_after_checkpoint_deletes_sealed_segments() {
        let tmp = TempDir::new("gc");
        let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
        wal.set_segment_limit(64);
        for i in 0u32..40 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.flush().unwrap();
        let live_before = segment_indexes(&tmp.0).unwrap().len();
        assert!(live_before > 1, "the limit must force rotation");
        let deleted = wal.gc_after_checkpoint().unwrap();
        assert_eq!(deleted as usize, live_before, "every sealed segment goes");
        assert_eq!(segment_indexes(&tmp.0).unwrap().len(), 1);
        assert_eq!(wal.stats().segments_deleted, deleted);
        // Appends continue in the fresh segment and replay alone.
        wal.append(b"after the checkpoint").unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed, vec![b"after the checkpoint".to_vec()]);
    }

    #[test]
    fn gc_on_an_empty_segment_deletes_nothing() {
        let tmp = TempDir::new("gc_empty");
        let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(wal.gc_after_checkpoint().unwrap(), 0);
        assert_eq!(segment_indexes(&tmp.0).unwrap().len(), 1);
        assert_eq!(wal.stats().segments_deleted, 0);
    }
}
