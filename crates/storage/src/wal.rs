//! Write-ahead log: append-only segments with CRC-framed records.
//!
//! The durability contract of the ingest path (query layer) rests on
//! this module: a batch is *committed* once its record is appended and
//! the segment is fsynced per [`SyncPolicy`]; everything after that —
//! heap inserts, index postings, history rows — can be replayed from
//! the log. The WAL knows nothing about batches: records are opaque
//! byte payloads framed as
//!
//! ```text
//! +----------------+----------------+=================+
//! | len: u32 (LE)  | crc32: u32 (LE)| payload (len B) |
//! +----------------+----------------+=================+
//! ```
//!
//! packed back to back in numbered segment files
//! (`wal-00000001.seg`, `wal-00000002.seg`, ...) inside one directory.
//! A segment rotates once it crosses the segment byte limit, so
//! no single file grows without bound and old segments can be archived
//! wholesale.
//!
//! # Recovery
//!
//! [`Wal::open`] scans the segments in order and stops at the first
//! frame that does not check out — a torn length prefix, a length
//! running past end-of-file, or a CRC mismatch (a crash mid-`write`
//! leaves exactly such a tail). The bad tail is **truncated** and any
//! later segments are deleted, so the log ends at the last record that
//! was fully on disk; the payloads up to that point are returned for
//! the caller to replay. Truncation makes recovery idempotent at this
//! layer: re-opening a recovered log finds only whole records.

use crate::error::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Frame header size: `len` + `crc32`.
const HEADER: u64 = 8;

/// Upper bound on one record's payload; a length prefix beyond this is
/// treated as corruption rather than an allocation request.
const MAX_RECORD: u32 = 64 * 1024 * 1024;

/// Default segment rotation threshold.
const DEFAULT_SEGMENT_LIMIT: u64 = 8 * 1024 * 1024;

/// When the log forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record (safest, slowest).
    Always,
    /// fsync on [`Wal::commit`] — one sync per ingest batch. The
    /// default for the ingest path.
    Commit,
    /// Never fsync; the OS flushes when it pleases. A crash can lose
    /// records that `append` already returned for. Benchmarks only.
    Never,
}

/// Counters the log keeps about itself (surfaced in `GET /stats` and
/// `ExecStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended through this handle.
    pub records_appended: u64,
    /// Payload + framing bytes written through this handle.
    pub bytes_logged: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Whole records recovered by the opening scan.
    pub records_replayed: u64,
    /// Torn-tail bytes truncated by the opening scan.
    pub truncated_bytes: u64,
}

/// An open write-ahead log, positioned to append at the clean tail.
pub struct Wal {
    dir: PathBuf,
    policy: SyncPolicy,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
    segment_limit: u64,
    stats: WalStats,
}

impl Wal {
    /// Create a log in `dir` (created if missing; must hold no
    /// segments yet).
    pub fn create(dir: impl AsRef<Path>, policy: SyncPolicy) -> Result<Wal, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if !segment_indexes(&dir)?.is_empty() {
            return Err(StorageError::DuplicateObject(format!(
                "WAL directory {} already holds segments; use Wal::open",
                dir.display()
            )));
        }
        let file = open_segment(&dir, 1)?;
        Ok(Wal {
            dir,
            policy,
            file,
            seg_index: 1,
            seg_bytes: 0,
            segment_limit: DEFAULT_SEGMENT_LIMIT,
            stats: WalStats::default(),
        })
    }

    /// Open an existing log: scan every segment in order, truncate the
    /// torn tail (if any), and return the committed payloads together
    /// with a handle appending after the last whole record.
    pub fn open(
        dir: impl AsRef<Path>,
        policy: SyncPolicy,
    ) -> Result<(Wal, Vec<Vec<u8>>), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let segments = segment_indexes(&dir)?;
        if segments.is_empty() {
            let wal = Wal::create(&dir, policy)?;
            return Ok((wal, Vec::new()));
        }
        let mut payloads = Vec::new();
        let mut stats = WalStats::default();
        let mut clean = (segments[0], 0u64); // (segment, byte offset of the clean tail)
        let mut torn_at: Option<usize> = None;
        for (i, &seg) in segments.iter().enumerate() {
            let path = segment_path(&dir, seg);
            let bytes = std::fs::read(&path)?;
            let valid = scan_segment(&bytes, &mut payloads);
            stats.records_replayed = payloads.len() as u64;
            clean = (seg, valid);
            if valid < bytes.len() as u64 {
                // Torn or corrupt tail: truncate this segment here and
                // drop everything after it.
                stats.truncated_bytes += bytes.len() as u64 - valid;
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid)?;
                file.sync_all()?;
                stats.fsyncs += 1;
                torn_at = Some(i);
                break;
            }
        }
        if let Some(i) = torn_at {
            for &seg in &segments[i + 1..] {
                let path = segment_path(&dir, seg);
                stats.truncated_bytes += std::fs::metadata(&path)?.len();
                std::fs::remove_file(&path)?;
            }
        }
        let (seg_index, seg_bytes) = clean;
        let mut file = open_segment(&dir, seg_index)?;
        file.seek(SeekFrom::Start(seg_bytes))?;
        Ok((
            Wal {
                dir,
                policy,
                file,
                seg_index,
                seg_bytes,
                segment_limit: DEFAULT_SEGMENT_LIMIT,
                stats,
            },
            payloads,
        ))
    }

    /// Rotate segments once the current one crosses `limit` bytes.
    pub fn set_segment_limit(&mut self, limit: u64) {
        self.segment_limit = limit.max(HEADER + 1);
    }

    /// The directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters accumulated by this handle (appends) plus its opening
    /// scan (replays, truncation).
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Append one record. Under [`SyncPolicy::Always`] the segment is
    /// fsynced before returning; otherwise durability waits for
    /// [`Wal::commit`]. Returns the framed size in bytes.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StorageError> {
        if payload.len() as u64 > MAX_RECORD as u64 {
            return Err(StorageError::TupleTooLarge {
                size: payload.len(),
                max: MAX_RECORD as usize,
            });
        }
        if self.seg_bytes >= self.segment_limit {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(payload.len() + HEADER as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.seg_bytes += frame.len() as u64;
        self.stats.records_appended += 1;
        self.stats.bytes_logged += frame.len() as u64;
        if self.policy == SyncPolicy::Always {
            self.file.sync_data()?;
            self.stats.fsyncs += 1;
        }
        Ok(frame.len() as u64)
    }

    /// Make everything appended so far durable (per policy). This is
    /// the commit point of the ingest path: a batch whose `commit`
    /// returned survives any crash after it.
    pub fn commit(&mut self) -> Result<(), StorageError> {
        match self.policy {
            SyncPolicy::Always => Ok(()), // every append already synced
            SyncPolicy::Commit => {
                self.file.sync_data()?;
                self.stats.fsyncs += 1;
                Ok(())
            }
            SyncPolicy::Never => {
                self.file.flush()?;
                Ok(())
            }
        }
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        // Seal the old segment before the new one accepts records.
        if self.policy != SyncPolicy::Never {
            self.file.sync_data()?;
            self.stats.fsyncs += 1;
        }
        self.seg_index += 1;
        self.file = open_segment(&self.dir, self.seg_index)?;
        self.seg_bytes = 0;
        Ok(())
    }
}

/// Scan one segment's bytes, pushing whole payloads onto `out`.
/// Returns the offset of the first byte that is not part of a valid
/// record (== `bytes.len()` when the segment is clean).
fn scan_segment(bytes: &[u8], out: &mut Vec<Vec<u8>>) -> u64 {
    let mut pos = 0usize;
    loop {
        let Some(header) = bytes.get(pos..pos + HEADER as usize) else {
            return pos as u64; // torn header (or clean EOF)
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as u32 > MAX_RECORD {
            return pos as u64; // absurd length: corrupt frame
        }
        let Some(payload) = bytes.get(pos + HEADER as usize..pos + HEADER as usize + len) else {
            return pos as u64; // torn payload
        };
        if crc32(payload) != crc {
            return pos as u64; // bit rot or torn write inside the payload
        }
        out.push(payload.to_vec());
        pos += HEADER as usize + len;
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

fn open_segment(dir: &Path, index: u64) -> Result<File, StorageError> {
    Ok(OpenOptions::new()
        .create(true)
        .append(true)
        .read(true)
        .open(segment_path(dir, index))?)
}

/// Segment indexes present in `dir`, ascending.
fn segment_indexes(dir: &Path) -> Result<Vec<u64>, StorageError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
        {
            if let Ok(n) = num.parse::<u64>() {
                out.push(n);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Hand-rolled
/// because the build is dependency-free by policy.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path =
                std::env::temp_dir().join(format!("staccato_wal_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_open_replays_everything() {
        let tmp = TempDir::new("roundtrip");
        let payloads: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; (i as usize) * 7 + 1]).collect();
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.commit().unwrap();
            assert_eq!(wal.stats().records_appended, 20);
            assert_eq!(wal.stats().fsyncs, 1);
        }
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed, payloads);
        assert_eq!(wal.stats().records_replayed, 20);
        assert_eq!(wal.stats().truncated_bytes, 0);
    }

    #[test]
    fn appends_continue_after_reopen() {
        let tmp = TempDir::new("continue");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Never).unwrap();
            wal.append(b"one").unwrap();
            wal.commit().unwrap();
        }
        {
            let (mut wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Never).unwrap();
            assert_eq!(replayed.len(), 1);
            wal.append(b"two").unwrap();
            wal.commit().unwrap();
        }
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(replayed, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_whole_record() {
        let tmp = TempDir::new("torn");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.append(b"committed record").unwrap();
            wal.append(b"the batch a crash tears").unwrap();
            wal.commit().unwrap();
        }
        // Tear the tail: chop the last record mid-payload.
        let seg = segment_path(&tmp.0, 1);
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed, vec![b"committed record".to_vec()]);
        assert!(wal.stats().truncated_bytes > 0);
        // Idempotent: a second recovery finds a clean log.
        drop(wal);
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(wal.stats().truncated_bytes, 0);
    }

    #[test]
    fn corrupt_crc_cuts_the_log_at_the_bad_record() {
        let tmp = TempDir::new("crc");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.append(b"good one").unwrap();
            wal.append(b"about to rot").unwrap();
            wal.append(b"unreachable after the rot").unwrap();
            wal.commit().unwrap();
        }
        // Flip one payload byte of the second record.
        let seg = segment_path(&tmp.0, 1);
        let mut bytes = std::fs::read(&seg).unwrap();
        let second_payload = HEADER as usize + b"good one".len() + HEADER as usize;
        bytes[second_payload] ^= 0xA5;
        std::fs::write(&seg, &bytes).unwrap();
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed, vec![b"good one".to_vec()]);
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let tmp = TempDir::new("rotate");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.set_segment_limit(64);
            for i in 0u32..40 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
            wal.commit().unwrap();
        }
        assert!(
            segment_indexes(&tmp.0).unwrap().len() > 1,
            "the limit must force rotation"
        );
        let (_, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        let got: Vec<u32> = replayed
            .iter()
            .map(|p| u32::from_le_bytes(p[..4].try_into().unwrap()))
            .collect();
        assert_eq!(got, (0u32..40).collect::<Vec<_>>());
    }

    #[test]
    fn torn_segment_drops_later_segments_entirely() {
        let tmp = TempDir::new("cascade");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Commit).unwrap();
            wal.set_segment_limit(32);
            for i in 0u32..20 {
                wal.append(&[i as u8; 16]).unwrap();
            }
            wal.commit().unwrap();
        }
        let segments = segment_indexes(&tmp.0).unwrap();
        assert!(segments.len() >= 3);
        // Corrupt the *first* segment's second record: everything after
        // it — including whole later segments — is unreachable.
        let seg = segment_path(&tmp.0, segments[0]);
        let mut bytes = std::fs::read(&seg).unwrap();
        let second = HEADER as usize + 16 + 4;
        bytes[second] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        let (wal, replayed) = Wal::open(&tmp.0, SyncPolicy::Commit).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(segment_indexes(&tmp.0).unwrap(), vec![segments[0]]);
        assert!(wal.stats().truncated_bytes > 0);
    }

    #[test]
    fn sync_policies_count_fsyncs() {
        let tmp = TempDir::new("sync");
        let mut wal = Wal::create(tmp.0.join("always"), SyncPolicy::Always).unwrap();
        wal.append(b"x").unwrap();
        wal.append(b"y").unwrap();
        wal.commit().unwrap();
        assert_eq!(wal.stats().fsyncs, 2, "Always syncs per append");

        let mut wal = Wal::create(tmp.0.join("never"), SyncPolicy::Never).unwrap();
        wal.append(b"x").unwrap();
        wal.commit().unwrap();
        assert_eq!(wal.stats().fsyncs, 0, "Never never syncs");
    }

    #[test]
    fn create_refuses_a_dirty_directory() {
        let tmp = TempDir::new("dirty");
        {
            let mut wal = Wal::create(&tmp.0, SyncPolicy::Never).unwrap();
            wal.append(b"x").unwrap();
        }
        assert!(matches!(
            Wal::create(&tmp.0, SyncPolicy::Never),
            Err(StorageError::DuplicateObject(_))
        ));
    }
}
