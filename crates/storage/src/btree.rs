//! A page-based B+-tree over byte-string keys with `u64` values.
//!
//! Used for the primary keys of the paper's Table 5 schema and as the
//! index structure of §5.3 ("we implement the index as a relational table
//! with a B+-tree on top of it"). Keys are arbitrary byte strings (up to
//! [`MAX_KEY`]), values are `u64` (packed RIDs, blob ids, or posting
//! payloads); range and prefix scans walk the leaf chain.
//!
//! Nodes are read-modify-written whole: a node is deserialized into an
//! entry vector, mutated, and written back — simple, obviously correct,
//! and plenty fast at 8 KiB pages. Splits are size-balanced so any node
//! that fit before an insert fits after a split. Deletion is by key
//! removal without rebalancing (lazy deletion), which matches the
//! append-then-query workload of the paper.

use crate::error::StorageError;
use crate::pager::BufferPool;
use crate::{PageId, NO_PAGE, PAGE_SIZE};

/// Maximum key length in bytes.
pub const MAX_KEY: usize = 1024;

const LEAF: u8 = 1;
const INTERNAL: u8 = 2;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        next: PageId,
        entries: Vec<(Vec<u8>, u64)>,
    },
    Internal {
        leftmost: PageId,
        entries: Vec<(Vec<u8>, PageId)>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                11 + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
            Node::Internal { entries, .. } => {
                11 + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }

    fn write(&self, buf: &mut [u8; PAGE_SIZE]) {
        debug_assert!(
            self.serialized_size() <= PAGE_SIZE,
            "node overflow on write"
        );
        let mut pos = 0usize;
        match self {
            Node::Leaf { next, entries } => {
                buf[pos] = LEAF;
                pos += 1;
                buf[pos..pos + 2].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                pos += 2;
                buf[pos..pos + 8].copy_from_slice(&next.to_le_bytes());
                pos += 8;
                for (k, v) in entries {
                    buf[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    pos += 2;
                    buf[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    buf[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
                    pos += 8;
                }
            }
            Node::Internal { leftmost, entries } => {
                buf[pos] = INTERNAL;
                pos += 1;
                buf[pos..pos + 2].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                pos += 2;
                buf[pos..pos + 8].copy_from_slice(&leftmost.to_le_bytes());
                pos += 8;
                for (k, c) in entries {
                    buf[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    pos += 2;
                    buf[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    buf[pos..pos + 8].copy_from_slice(&c.to_le_bytes());
                    pos += 8;
                }
            }
        }
    }

    fn read(page: PageId, buf: &[u8; PAGE_SIZE]) -> Result<Node, StorageError> {
        let corrupt = |reason| StorageError::CorruptPage { page, reason };
        let tag = buf[0];
        let n = u16::from_le_bytes(buf[1..3].try_into().expect("len")) as usize;
        let head = u64::from_le_bytes(buf[3..11].try_into().expect("len"));
        let mut pos = 11usize;
        let mut read_entries = |n: usize| -> Result<Vec<(Vec<u8>, u64)>, StorageError> {
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                if pos + 2 > PAGE_SIZE {
                    return Err(corrupt("entry header out of range"));
                }
                let klen = u16::from_le_bytes(buf[pos..pos + 2].try_into().expect("len")) as usize;
                pos += 2;
                if klen > MAX_KEY || pos + klen + 8 > PAGE_SIZE {
                    return Err(corrupt("entry body out of range"));
                }
                let key = buf[pos..pos + klen].to_vec();
                pos += klen;
                let val = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("len"));
                pos += 8;
                entries.push((key, val));
            }
            Ok(entries)
        };
        match tag {
            LEAF => Ok(Node::Leaf {
                next: head,
                entries: read_entries(n)?,
            }),
            INTERNAL => Ok(Node::Internal {
                leftmost: head,
                entries: read_entries(n)?,
            }),
            _ => Err(corrupt("unknown node tag")),
        }
    }
}

/// A B+-tree handle. Only the meta page id needs to be persisted (the
/// root pointer lives inside the meta page, so root splits do not touch
/// the catalog).
pub struct BTree {
    meta: PageId,
}

impl BTree {
    /// Create an empty tree; returns the handle whose `meta_page` goes in
    /// the catalog.
    pub fn create(pool: &BufferPool) -> Result<BTree, StorageError> {
        let meta = pool.allocate()?;
        let root = pool.allocate()?;
        write_node(
            pool,
            root,
            &Node::Leaf {
                next: NO_PAGE,
                entries: Vec::new(),
            },
        )?;
        let mut mp = pool.fetch_write(meta)?;
        mp[0..8].copy_from_slice(&root.to_le_bytes());
        drop(mp);
        Ok(BTree { meta })
    }

    /// Reopen from the catalog.
    pub fn open(meta: PageId) -> BTree {
        BTree { meta }
    }

    /// The persisted meta page id.
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    fn root(&self, pool: &BufferPool) -> Result<PageId, StorageError> {
        let mp = pool.fetch_read(self.meta)?;
        Ok(u64::from_le_bytes(mp[0..8].try_into().expect("len")))
    }

    fn set_root(&self, pool: &BufferPool, root: PageId) -> Result<(), StorageError> {
        let mut mp = pool.fetch_write(self.meta)?;
        mp[0..8].copy_from_slice(&root.to_le_bytes());
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, pool: &BufferPool, key: &[u8]) -> Result<Option<u64>, StorageError> {
        let mut pid = self.root(pool)?;
        loop {
            match read_node(pool, pid)? {
                Node::Internal { leftmost, entries } => {
                    pid = child_for(&entries, leftmost, key);
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1));
                }
            }
        }
    }

    /// Insert or overwrite; returns the previous value if any.
    pub fn insert(
        &self,
        pool: &BufferPool,
        key: &[u8],
        value: u64,
    ) -> Result<Option<u64>, StorageError> {
        if key.len() > MAX_KEY {
            return Err(StorageError::TupleTooLarge {
                size: key.len(),
                max: MAX_KEY,
            });
        }
        let root = self.root(pool)?;
        let (old, split) = insert_rec(pool, root, key, value)?;
        if let Some((sep, new_child)) = split {
            let new_root = pool.allocate()?;
            write_node(
                pool,
                new_root,
                &Node::Internal {
                    leftmost: root,
                    entries: vec![(sep, new_child)],
                },
            )?;
            self.set_root(pool, new_root)?;
        }
        Ok(old)
    }

    /// Delete a key; returns whether it existed. Lazy (no rebalancing).
    pub fn delete(&self, pool: &BufferPool, key: &[u8]) -> Result<bool, StorageError> {
        let mut pid = self.root(pool)?;
        loop {
            match read_node(pool, pid)? {
                Node::Internal { leftmost, entries } => {
                    pid = child_for(&entries, leftmost, key);
                }
                Node::Leaf { next, mut entries } => {
                    match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => {
                            entries.remove(i);
                            write_node(pool, pid, &Node::Leaf { next, entries })?;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
            }
        }
    }

    /// All `(key, value)` pairs with `lo ≤ key < hi` (unbounded above when
    /// `hi` is `None`), in key order.
    pub fn scan_range(
        &self,
        pool: &BufferPool,
        lo: &[u8],
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, u64)>, StorageError> {
        let mut pid = self.root(pool)?;
        while let Node::Internal { leftmost, entries } = read_node(pool, pid)? {
            pid = child_for(&entries, leftmost, lo);
        }
        let mut out = Vec::new();
        loop {
            let Node::Leaf { next, entries } = read_node(pool, pid)? else {
                return Err(StorageError::CorruptPage {
                    page: pid,
                    reason: "leaf chain reached an internal node",
                });
            };
            for (k, v) in entries {
                if k.as_slice() < lo {
                    continue;
                }
                if let Some(hi) = hi {
                    if k.as_slice() >= hi {
                        return Ok(out);
                    }
                }
                out.push((k, v));
            }
            if next == NO_PAGE {
                return Ok(out);
            }
            pid = next;
        }
    }

    /// All pairs whose key starts with `prefix`, in key order.
    pub fn scan_prefix(
        &self,
        pool: &BufferPool,
        prefix: &[u8],
    ) -> Result<Vec<(Vec<u8>, u64)>, StorageError> {
        let hi = prefix_upper_bound(prefix);
        self.scan_range(pool, prefix, hi.as_deref())
    }

    /// Total number of keys (walks every leaf).
    pub fn count(&self, pool: &BufferPool) -> Result<usize, StorageError> {
        Ok(self.scan_range(pool, &[], None)?.len())
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self, pool: &BufferPool) -> Result<usize, StorageError> {
        let mut pid = self.root(pool)?;
        let mut h = 1;
        loop {
            match read_node(pool, pid)? {
                Node::Internal { leftmost, .. } => {
                    pid = leftmost;
                    h += 1;
                }
                Node::Leaf { .. } => return Ok(h),
            }
        }
    }
}

/// Smallest byte string strictly greater than every string with `prefix`,
/// or `None` if no such bound exists (prefix is all `0xFF`).
fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut hi = prefix.to_vec();
    while let Some(&last) = hi.last() {
        if last == 0xFF {
            hi.pop();
        } else {
            *hi.last_mut().expect("non-empty") += 1;
            return Some(hi);
        }
    }
    None
}

fn child_for(entries: &[(Vec<u8>, PageId)], leftmost: PageId, key: &[u8]) -> PageId {
    // Rightmost separator ≤ key; else leftmost child.
    match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
        Ok(i) => entries[i].1,
        Err(0) => leftmost,
        Err(i) => entries[i - 1].1,
    }
}

fn read_node(pool: &BufferPool, pid: PageId) -> Result<Node, StorageError> {
    let page = pool.fetch_read(pid)?;
    Node::read(pid, &page)
}

fn write_node(pool: &BufferPool, pid: PageId, node: &Node) -> Result<(), StorageError> {
    let mut page = pool.fetch_write(pid)?;
    node.write(&mut page);
    Ok(())
}

/// Size-balanced split point: smallest index whose prefix reaches half the
/// payload, kept within `1..len`.
fn split_point<T>(entries: &[(Vec<u8>, T)]) -> usize {
    let total: usize = entries.iter().map(|(k, _)| 2 + k.len() + 8).sum();
    let mut acc = 0usize;
    for (i, (k, _)) in entries.iter().enumerate() {
        acc += 2 + k.len() + 8;
        if acc >= total / 2 {
            return (i + 1).clamp(1, entries.len() - 1);
        }
    }
    entries.len() / 2
}

type SplitInfo = Option<(Vec<u8>, PageId)>;

fn insert_rec(
    pool: &BufferPool,
    pid: PageId,
    key: &[u8],
    value: u64,
) -> Result<(Option<u64>, SplitInfo), StorageError> {
    match read_node(pool, pid)? {
        Node::Leaf { next, mut entries } => {
            let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                Ok(i) => {
                    let old = entries[i].1;
                    entries[i].1 = value;
                    Some(old)
                }
                Err(i) => {
                    entries.insert(i, (key.to_vec(), value));
                    None
                }
            };
            let node = Node::Leaf { next, entries };
            if node.serialized_size() <= PAGE_SIZE {
                write_node(pool, pid, &node)?;
                return Ok((old, None));
            }
            // Split.
            let Node::Leaf { next, mut entries } = node else {
                unreachable!()
            };
            let mid = split_point(&entries);
            let right_entries = entries.split_off(mid);
            let sep = right_entries[0].0.clone();
            let right_pid = pool.allocate()?;
            write_node(
                pool,
                right_pid,
                &Node::Leaf {
                    next,
                    entries: right_entries,
                },
            )?;
            write_node(
                pool,
                pid,
                &Node::Leaf {
                    next: right_pid,
                    entries,
                },
            )?;
            Ok((old, Some((sep, right_pid))))
        }
        Node::Internal {
            leftmost,
            mut entries,
        } => {
            let child = child_for(&entries, leftmost, key);
            let (old, split) = insert_rec(pool, child, key, value)?;
            let Some((sep, new_child)) = split else {
                return Ok((old, None));
            };
            let pos = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(&sep)) {
                Ok(i) => i + 1,
                Err(i) => i,
            };
            entries.insert(pos, (sep, new_child));
            let node = Node::Internal { leftmost, entries };
            if node.serialized_size() <= PAGE_SIZE {
                write_node(pool, pid, &node)?;
                return Ok((old, None));
            }
            let Node::Internal {
                leftmost,
                mut entries,
            } = node
            else {
                unreachable!()
            };
            let mid = split_point(&entries);
            let mut right_entries = entries.split_off(mid);
            // Promote the first right entry; its child becomes the right
            // node's leftmost pointer.
            let (promoted, right_leftmost) = right_entries.remove(0);
            let right_pid = pool.allocate()?;
            write_node(
                pool,
                right_pid,
                &Node::Internal {
                    leftmost: right_leftmost,
                    entries: right_entries,
                },
            )?;
            write_node(pool, pid, &Node::Internal { leftmost, entries })?;
            Ok((old, Some((promoted, right_pid))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::BTreeMap;

    fn pool() -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new()), 64)
    }

    #[test]
    fn insert_get_small() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        assert_eq!(t.insert(&pool, b"b", 2).unwrap(), None);
        assert_eq!(t.insert(&pool, b"a", 1).unwrap(), None);
        assert_eq!(t.insert(&pool, b"c", 3).unwrap(), None);
        assert_eq!(t.get(&pool, b"a").unwrap(), Some(1));
        assert_eq!(t.get(&pool, b"b").unwrap(), Some(2));
        assert_eq!(t.get(&pool, b"c").unwrap(), Some(3));
        assert_eq!(t.get(&pool, b"d").unwrap(), None);
    }

    #[test]
    fn overwrite_returns_old_value() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        assert_eq!(t.insert(&pool, b"k", 1).unwrap(), None);
        assert_eq!(t.insert(&pool, b"k", 2).unwrap(), Some(1));
        assert_eq!(t.get(&pool, b"k").unwrap(), Some(2));
        assert_eq!(t.count(&pool).unwrap(), 1);
    }

    #[test]
    fn thousands_of_keys_split_and_stay_sorted() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        let n = 5000u64;
        for i in 0..n {
            let key = format!("key{:08}", (i * 2654435761) % n);
            t.insert(&pool, key.as_bytes(), i).unwrap();
        }
        assert!(t.height(&pool).unwrap() >= 2, "tree must have split");
        let all = t.scan_range(&pool, &[], None).unwrap();
        assert_eq!(all.len() as u64, n);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "keys out of order");
        }
    }

    #[test]
    fn matches_btreemap_model_under_random_ops() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..4000 {
            let key = format!("k{:04}", rng.random_range(0..800u32)).into_bytes();
            match rng.random_range(0..10u8) {
                0..=5 => {
                    let v = step as u64;
                    assert_eq!(
                        t.insert(&pool, &key, v).unwrap(),
                        model.insert(key.clone(), v),
                        "insert mismatch at step {step}"
                    );
                }
                6..=7 => {
                    assert_eq!(
                        t.delete(&pool, &key).unwrap(),
                        model.remove(&key).is_some(),
                        "delete mismatch at step {step}"
                    );
                }
                _ => {
                    assert_eq!(
                        t.get(&pool, &key).unwrap(),
                        model.get(&key).copied(),
                        "get mismatch at step {step}"
                    );
                }
            }
        }
        let ours = t.scan_range(&pool, &[], None).unwrap();
        let theirs: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn range_scan_respects_bounds() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for i in 0..100u64 {
            t.insert(&pool, format!("{i:03}").as_bytes(), i).unwrap();
        }
        let mid = t.scan_range(&pool, b"020", Some(b"030")).unwrap();
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0].0, b"020".to_vec());
        assert_eq!(mid[9].0, b"029".to_vec());
        let tail = t.scan_range(&pool, b"098", None).unwrap();
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn prefix_scan_finds_exactly_prefixed_keys() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for term in ["public", "publication", "pub", "law", "president", "pq"] {
            t.insert(&pool, term.as_bytes(), 1).unwrap();
        }
        let hits: Vec<String> = t
            .scan_prefix(&pool, b"pub")
            .unwrap()
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(hits, vec!["pub", "public", "publication"]);
    }

    #[test]
    fn prefix_upper_bound_handles_ff() {
        assert_eq!(prefix_upper_bound(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_upper_bound(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_upper_bound(b""), None);
    }

    #[test]
    fn large_keys_force_early_splits() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        for i in 0..50u64 {
            let key = vec![i as u8; MAX_KEY];
            t.insert(&pool, &key, i).unwrap();
        }
        for i in 0..50u64 {
            let key = vec![i as u8; MAX_KEY];
            assert_eq!(t.get(&pool, &key).unwrap(), Some(i));
        }
        assert!(t.height(&pool).unwrap() >= 2);
    }

    #[test]
    fn oversized_key_rejected() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        let e = t.insert(&pool, &vec![0u8; MAX_KEY + 1], 0).unwrap_err();
        assert!(matches!(e, StorageError::TupleTooLarge { .. }));
    }

    #[test]
    fn reopen_by_meta_page() {
        let pool = pool();
        let meta;
        {
            let t = BTree::create(&pool).unwrap();
            meta = t.meta_page();
            for i in 0..2000u64 {
                t.insert(&pool, format!("{i:05}").as_bytes(), i).unwrap();
            }
        }
        let t = BTree::open(meta);
        assert_eq!(t.get(&pool, b"01234").unwrap(), Some(1234));
        assert_eq!(t.count(&pool).unwrap(), 2000);
    }

    #[test]
    fn empty_tree_behaviour() {
        let pool = pool();
        let t = BTree::create(&pool).unwrap();
        assert_eq!(t.get(&pool, b"x").unwrap(), None);
        assert!(!t.delete(&pool, b"x").unwrap());
        assert_eq!(t.count(&pool).unwrap(), 0);
        assert_eq!(t.height(&pool).unwrap(), 1);
        assert!(t.scan_prefix(&pool, b"").unwrap().is_empty());
    }
}
