//! Typed values and row (de)serialization against a schema.
//!
//! Covers the column types of the paper's Table 5: `INTEGER`, `FLOAT8`,
//! `VARCHAR`/`TEXT`, and `OID` (blob reference). Rows are encoded
//! schema-directed (no per-value tags): fixed-width for `Int`/`Float`/
//! `Blob`, length-prefixed for `Text`.

use crate::error::StorageError;
use crate::PageId;

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer (`INTEGER`).
    Int,
    /// 64-bit float (`FLOAT8`).
    Float,
    /// Variable-length string (`VARCHAR`/`TEXT`).
    Text,
    /// Blob reference (`OID`).
    Blob,
}

/// A table schema: named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Column definitions in order.
    pub cols: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(cols: &[(&str, ColumnType)]) -> Schema {
        Schema {
            cols: cols.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    /// Index of a named column.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n == name)
    }
}

/// A single value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Text.
    Text(String),
    /// Blob id (first page of the chain).
    Blob(PageId),
}

impl Value {
    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        if let Value::Int(v) = self {
            Some(*v)
        } else {
            None
        }
    }

    /// The float inside, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        if let Value::Float(v) = self {
            Some(*v)
        } else {
            None
        }
    }

    /// The text inside, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        if let Value::Text(v) = self {
            Some(v)
        } else {
            None
        }
    }

    /// The blob id inside, if this is a `Blob`.
    pub fn as_blob(&self) -> Option<PageId> {
        if let Value::Blob(v) = self {
            Some(*v)
        } else {
            None
        }
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// Encode a row against its schema.
pub fn encode_row(schema: &Schema, row: &Row) -> Result<Vec<u8>, StorageError> {
    if row.len() != schema.cols.len() {
        return Err(StorageError::SchemaMismatch("wrong column count"));
    }
    let mut out = Vec::with_capacity(row.len() * 9);
    for ((_, ty), val) in schema.cols.iter().zip(row) {
        match (ty, val) {
            (ColumnType::Int, Value::Int(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (ColumnType::Float, Value::Float(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (ColumnType::Blob, Value::Blob(v)) => out.extend_from_slice(&v.to_le_bytes()),
            (ColumnType::Text, Value::Text(s)) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            _ => {
                return Err(StorageError::SchemaMismatch(
                    "value type does not match column",
                ))
            }
        }
    }
    Ok(out)
}

/// Decode a row against its schema.
pub fn decode_row(schema: &Schema, bytes: &[u8]) -> Result<Row, StorageError> {
    let mut pos = 0usize;
    let mut row = Vec::with_capacity(schema.cols.len());
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], StorageError> {
        if bytes.len() - *pos < n {
            return Err(StorageError::SchemaMismatch("row too short"));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    for (_, ty) in &schema.cols {
        match ty {
            ColumnType::Int => row.push(Value::Int(i64::from_le_bytes(
                take(&mut pos, 8)?.try_into().expect("len"),
            ))),
            ColumnType::Float => row.push(Value::Float(f64::from_le_bytes(
                take(&mut pos, 8)?.try_into().expect("len"),
            ))),
            ColumnType::Blob => row.push(Value::Blob(u64::from_le_bytes(
                take(&mut pos, 8)?.try_into().expect("len"),
            ))),
            ColumnType::Text => {
                let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len")) as usize;
                let s = take(&mut pos, len)?;
                row.push(Value::Text(
                    std::str::from_utf8(s)
                        .map_err(|_| StorageError::SchemaMismatch("text is not UTF-8"))?
                        .to_string(),
                ));
            }
        }
    }
    if pos != bytes.len() {
        return Err(StorageError::SchemaMismatch("trailing bytes after row"));
    }
    Ok(row)
}

/// Borrowed, allocation-free row reader: walks a row's encoded bytes
/// field by field against the schema, lending `&str` text slices instead
/// of allocating `String`s the way [`decode_row`] does. The scan hot path
/// decodes every MAP/k-MAP row through this, so a filescan performs zero
/// per-row string allocations.
///
/// Call the typed readers in schema order, then [`RowReader::finish`] to
/// assert the row was fully consumed; every check [`decode_row`] performs
/// (length, UTF-8, type agreement, trailing bytes) is performed here with
/// the same errors.
#[derive(Debug)]
pub struct RowReader<'a> {
    schema: &'a Schema,
    bytes: &'a [u8],
    pos: usize,
    col: usize,
}

impl<'a> RowReader<'a> {
    /// Start reading `bytes` as a row of `schema`.
    pub fn new(schema: &'a Schema, bytes: &'a [u8]) -> RowReader<'a> {
        RowReader {
            schema,
            bytes,
            pos: 0,
            col: 0,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.bytes.len() - self.pos < n {
            return Err(StorageError::SchemaMismatch("row too short"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn expect(&mut self, ty: ColumnType) -> Result<(), StorageError> {
        match self.schema.cols.get(self.col) {
            Some((_, t)) if *t == ty => {
                self.col += 1;
                Ok(())
            }
            _ => Err(StorageError::SchemaMismatch(
                "value type does not match column",
            )),
        }
    }

    /// Read the next column as an `Int`.
    pub fn int(&mut self) -> Result<i64, StorageError> {
        self.expect(ColumnType::Int)?;
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Read the next column as a `Float`.
    pub fn float(&mut self) -> Result<f64, StorageError> {
        self.expect(ColumnType::Float)?;
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Read the next column as a `Blob` reference.
    pub fn blob(&mut self) -> Result<PageId, StorageError> {
        self.expect(ColumnType::Blob)?;
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    /// Read the next column as `Text`, borrowing from the row bytes.
    pub fn text(&mut self) -> Result<&'a str, StorageError> {
        self.expect(ColumnType::Text)?;
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("len")) as usize;
        std::str::from_utf8(self.take(len)?)
            .map_err(|_| StorageError::SchemaMismatch("text is not UTF-8"))
    }

    /// Assert every column was read and no bytes trail the row — the same
    /// completeness checks [`decode_row`] applies.
    pub fn finish(self) -> Result<(), StorageError> {
        if self.col != self.schema.cols.len() {
            return Err(StorageError::SchemaMismatch("row read ended early"));
        }
        if self.pos != self.bytes.len() {
            return Err(StorageError::SchemaMismatch("trailing bytes after row"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claims_schema() -> Schema {
        // The paper's §2.1 Claims(DocID, Year, Loss, DocData) example.
        Schema::new(&[
            ("DocID", ColumnType::Int),
            ("Year", ColumnType::Int),
            ("Loss", ColumnType::Float),
            ("DocData", ColumnType::Blob),
        ])
    }

    #[test]
    fn roundtrip_all_types() {
        let schema = Schema::new(&[
            ("i", ColumnType::Int),
            ("f", ColumnType::Float),
            ("t", ColumnType::Text),
            ("b", ColumnType::Blob),
        ]);
        let row: Row = vec![
            Value::Int(-42),
            Value::Float(2.75),
            Value::Text("U.S.C. 2345".into()),
            Value::Blob(9001),
        ];
        let bytes = encode_row(&schema, &row).unwrap();
        assert_eq!(decode_row(&schema, &bytes).unwrap(), row);
    }

    #[test]
    fn claims_row_roundtrip() {
        let schema = claims_schema();
        let row: Row = vec![
            Value::Int(7),
            Value::Int(2010),
            Value::Float(1200.50),
            Value::Blob(3),
        ];
        let bytes = encode_row(&schema, &row).unwrap();
        let back = decode_row(&schema, &bytes).unwrap();
        assert_eq!(back[1].as_int(), Some(2010));
        assert_eq!(back[2].as_float(), Some(1200.50));
        assert_eq!(back[3].as_blob(), Some(3));
    }

    #[test]
    fn wrong_arity_rejected() {
        let schema = claims_schema();
        let row: Row = vec![Value::Int(7)];
        assert!(matches!(
            encode_row(&schema, &row),
            Err(StorageError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn wrong_type_rejected() {
        let schema = Schema::new(&[("i", ColumnType::Int)]);
        assert!(matches!(
            encode_row(&schema, &vec![Value::Text("no".into())]),
            Err(StorageError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn truncated_and_trailing_bytes_rejected() {
        let schema = Schema::new(&[("t", ColumnType::Text)]);
        let bytes = encode_row(&schema, &vec![Value::Text("hello".into())]).unwrap();
        assert!(decode_row(&schema, &bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_row(&schema, &extra).is_err());
    }

    #[test]
    fn empty_text_roundtrip() {
        let schema = Schema::new(&[("t", ColumnType::Text)]);
        let bytes = encode_row(&schema, &vec![Value::Text(String::new())]).unwrap();
        assert_eq!(decode_row(&schema, &bytes).unwrap()[0].as_text(), Some(""));
    }

    #[test]
    fn row_reader_borrows_and_agrees_with_decode_row() {
        let schema = Schema::new(&[
            ("i", ColumnType::Int),
            ("f", ColumnType::Float),
            ("t", ColumnType::Text),
            ("b", ColumnType::Blob),
        ]);
        let row: Row = vec![
            Value::Int(-42),
            Value::Float(2.75),
            Value::Text("U.S.C. 2345".into()),
            Value::Blob(9001),
        ];
        let bytes = encode_row(&schema, &row).unwrap();
        let mut r = RowReader::new(&schema, &bytes);
        assert_eq!(r.int().unwrap(), -42);
        assert_eq!(r.float().unwrap(), 2.75);
        assert_eq!(r.text().unwrap(), "U.S.C. 2345");
        assert_eq!(r.blob().unwrap(), 9001);
        r.finish().unwrap();
    }

    #[test]
    fn row_reader_rejects_misuse_and_corruption() {
        let schema = Schema::new(&[("t", ColumnType::Text), ("f", ColumnType::Float)]);
        let bytes =
            encode_row(&schema, &vec![Value::Text("hi".into()), Value::Float(0.5)]).unwrap();
        // Wrong type for the column.
        assert!(RowReader::new(&schema, &bytes).int().is_err());
        // Ending early.
        let mut r = RowReader::new(&schema, &bytes);
        r.text().unwrap();
        assert!(r.finish().is_err());
        // Trailing bytes.
        let mut extra = bytes.clone();
        extra.push(0);
        let mut r = RowReader::new(&schema, &extra);
        r.text().unwrap();
        r.float().unwrap();
        assert!(r.finish().is_err());
        // Truncated text.
        let mut r = RowReader::new(&schema, &bytes[..bytes.len() - 9]);
        assert!(r.text().is_err() || r.float().is_err());
        // Invalid UTF-8.
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(RowReader::new(&schema, &bad).text().is_err());
    }

    #[test]
    fn schema_col_lookup() {
        let schema = claims_schema();
        assert_eq!(schema.col("Year"), Some(1));
        assert_eq!(schema.col("Nope"), None);
    }
}
