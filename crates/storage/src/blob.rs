//! Large-object storage: byte strings of arbitrary length as page chains.
//!
//! This is the analogue of PostgreSQL's large objects (the `OID` columns
//! of Table 5): `FullSFAData.SFABlob` and `StaccatoGraph.GraphBlob` are
//! stored here. A blob id is the id of its first page.
//!
//! Page layout: `[next u64][len u32][payload …]`. Reading a 600 kB
//! line-SFA therefore touches ~75 pages — exactly the I/O amplification
//! the paper's FullSFA baseline pays.

use crate::error::StorageError;
use crate::pager::BufferPool;
use crate::{PageId, NO_PAGE, PAGE_SIZE};

const HEADER: usize = 12;
/// Payload bytes per blob page.
pub const BLOB_PAYLOAD: usize = PAGE_SIZE - HEADER;

/// Stateless accessor for blob chains.
pub struct BlobStore;

impl BlobStore {
    /// Store `bytes`, returning the blob id.
    pub fn put(pool: &BufferPool, bytes: &[u8]) -> Result<PageId, StorageError> {
        let chunks: Vec<&[u8]> = if bytes.is_empty() {
            vec![&[][..]]
        } else {
            bytes.chunks(BLOB_PAYLOAD).collect()
        };
        // Allocate the whole chain first so `next` pointers are known.
        let mut pids = Vec::with_capacity(chunks.len());
        for _ in 0..chunks.len() {
            pids.push(pool.allocate()?);
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let mut page = pool.fetch_write(pids[i])?;
            let next = pids.get(i + 1).copied().unwrap_or(NO_PAGE);
            page[0..8].copy_from_slice(&next.to_le_bytes());
            page[8..12].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            page[HEADER..HEADER + chunk.len()].copy_from_slice(chunk);
        }
        Ok(pids[0])
    }

    /// Read a whole blob.
    pub fn get(pool: &BufferPool, id: PageId) -> Result<Vec<u8>, StorageError> {
        let mut out = Vec::new();
        Self::get_into(pool, id, &mut out)?;
        Ok(out)
    }

    /// Read a whole blob into a caller-owned buffer, which is cleared
    /// first. On a blob-table scan this keeps one warm buffer per worker
    /// instead of allocating (and growing) a fresh `Vec` per row.
    pub fn get_into(pool: &BufferPool, id: PageId, out: &mut Vec<u8>) -> Result<(), StorageError> {
        out.clear();
        let mut pid = id;
        let mut hops: u64 = 0;
        let limit = pool.page_count() + 1;
        while pid != NO_PAGE {
            hops += 1;
            if hops > limit {
                return Err(StorageError::CorruptBlob { first_page: id });
            }
            let page = pool.fetch_read(pid)?;
            let next = u64::from_le_bytes(page[0..8].try_into().expect("len"));
            let len = u32::from_le_bytes(page[8..12].try_into().expect("len")) as usize;
            if len > BLOB_PAYLOAD {
                return Err(StorageError::CorruptBlob { first_page: id });
            }
            out.extend_from_slice(&page[HEADER..HEADER + len]);
            pid = next;
        }
        Ok(())
    }

    /// Run `f` over a blob's bytes without materializing them when
    /// possible: a single-page blob (the common case for row-sized
    /// payloads — `BLOB_PAYLOAD` is just under 4 kB) is borrowed
    /// straight from the buffer-pool page under its read latch; longer
    /// chains are assembled into `buf` first. `f` runs with the latch
    /// held, so it must not write through the same pool (reads of other
    /// pages are fine).
    pub fn with_blob<R>(
        pool: &BufferPool,
        id: PageId,
        buf: &mut Vec<u8>,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, StorageError> {
        {
            let page = pool.fetch_read(id)?;
            let next = u64::from_le_bytes(page[0..8].try_into().expect("len"));
            let len = u32::from_le_bytes(page[8..12].try_into().expect("len")) as usize;
            if len > BLOB_PAYLOAD {
                return Err(StorageError::CorruptBlob { first_page: id });
            }
            if next == NO_PAGE {
                return Ok(f(&page[HEADER..HEADER + len]));
            }
        }
        Self::get_into(pool, id, buf)?;
        Ok(f(buf))
    }

    /// Length of a blob in bytes without materializing it.
    pub fn len(pool: &BufferPool, id: PageId) -> Result<usize, StorageError> {
        let mut total = 0usize;
        let mut pid = id;
        let mut hops: u64 = 0;
        let limit = pool.page_count() + 1;
        while pid != NO_PAGE {
            hops += 1;
            if hops > limit {
                return Err(StorageError::CorruptBlob { first_page: id });
            }
            let page = pool.fetch_read(pid)?;
            total += u32::from_le_bytes(page[8..12].try_into().expect("len")) as usize;
            pid = u64::from_le_bytes(page[0..8].try_into().expect("len"));
        }
        Ok(total)
    }

    /// Number of pages in a blob chain.
    pub fn page_span(pool: &BufferPool, id: PageId) -> Result<u64, StorageError> {
        let mut hops: u64 = 0;
        let mut pid = id;
        let limit = pool.page_count() + 1;
        while pid != NO_PAGE {
            hops += 1;
            if hops > limit {
                return Err(StorageError::CorruptBlob { first_page: id });
            }
            let page = pool.fetch_read(pid)?;
            pid = u64::from_le_bytes(page[0..8].try_into().expect("len"));
        }
        Ok(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool() -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new()), 32)
    }

    #[test]
    fn small_blob_roundtrip() {
        let pool = pool();
        let id = BlobStore::put(&pool, b"tiny").unwrap();
        assert_eq!(BlobStore::get(&pool, id).unwrap(), b"tiny");
        assert_eq!(BlobStore::len(&pool, id).unwrap(), 4);
        assert_eq!(BlobStore::page_span(&pool, id).unwrap(), 1);
    }

    #[test]
    fn multi_page_blob_roundtrip() {
        let pool = pool();
        // ~600 kB, the paper's per-line SFA size.
        let data: Vec<u8> = (0..600_000u32).map(|i| (i % 251) as u8).collect();
        let id = BlobStore::put(&pool, &data).unwrap();
        assert_eq!(BlobStore::get(&pool, id).unwrap(), data);
        assert_eq!(BlobStore::len(&pool, id).unwrap(), data.len());
        let span = BlobStore::page_span(&pool, id).unwrap();
        assert_eq!(span, data.len().div_ceil(BLOB_PAYLOAD) as u64);
        assert!(span >= 73, "a 600 kB blob must span many pages, got {span}");
    }

    #[test]
    fn empty_blob_roundtrip() {
        let pool = pool();
        let id = BlobStore::put(&pool, b"").unwrap();
        assert_eq!(BlobStore::get(&pool, id).unwrap(), Vec::<u8>::new());
        assert_eq!(BlobStore::len(&pool, id).unwrap(), 0);
    }

    #[test]
    fn exact_boundary_sizes() {
        let pool = pool();
        for size in [
            BLOB_PAYLOAD - 1,
            BLOB_PAYLOAD,
            BLOB_PAYLOAD + 1,
            2 * BLOB_PAYLOAD,
        ] {
            let data = vec![7u8; size];
            let id = BlobStore::put(&pool, &data).unwrap();
            assert_eq!(
                BlobStore::get(&pool, id).unwrap().len(),
                size,
                "size {size}"
            );
        }
    }

    #[test]
    fn cyclic_chain_detected() {
        let pool = pool();
        let id = BlobStore::put(&pool, &vec![1u8; 2 * BLOB_PAYLOAD]).unwrap();
        // Corrupt: point the second page back at the first.
        {
            let first = pool.fetch_read(id).unwrap();
            let second = u64::from_le_bytes(first[0..8].try_into().unwrap());
            drop(first);
            let mut p = pool.fetch_write(second).unwrap();
            p[0..8].copy_from_slice(&id.to_le_bytes());
        }
        assert!(matches!(
            BlobStore::get(&pool, id),
            Err(StorageError::CorruptBlob { .. })
        ));
        assert!(matches!(
            BlobStore::len(&pool, id),
            Err(StorageError::CorruptBlob { .. })
        ));
    }

    #[test]
    fn corrupt_length_detected() {
        let pool = pool();
        let id = BlobStore::put(&pool, b"data").unwrap();
        {
            let mut p = pool.fetch_write(id).unwrap();
            p[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
        }
        assert!(matches!(
            BlobStore::get(&pool, id),
            Err(StorageError::CorruptBlob { .. })
        ));
    }
}
