//! Heap files: unordered tuple storage over a linked chain of slotted
//! pages, addressed by RID (page, slot) — the layout behind every table in
//! the paper's Table 5 schema.

use crate::error::StorageError;
use crate::page::SlottedPage;
use crate::pager::BufferPool;
use crate::{PageId, NO_PAGE};
use std::sync::atomic::{AtomicU64, Ordering};

/// Record id: a physical tuple address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page id.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Pack into a u64 for storage in index values (page in the high 48
    /// bits, slot in the low 16).
    pub fn to_u64(self) -> u64 {
        (self.page << 16) | self.slot as u64
    }

    /// Unpack from [`Rid::to_u64`].
    pub fn from_u64(v: u64) -> Rid {
        Rid {
            page: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// A heap file rooted at its first page.
pub struct HeapFile {
    first: PageId,
    /// Cached tail page for O(1) appends; lazily discovered.
    last_hint: AtomicU64,
}

impl HeapFile {
    /// Create a fresh heap file (allocates and initializes its first page).
    pub fn create(pool: &BufferPool) -> Result<HeapFile, StorageError> {
        let first = pool.allocate()?;
        let mut page = pool.fetch_write(first)?;
        SlottedPage::init(&mut page);
        Ok(HeapFile {
            first,
            last_hint: AtomicU64::new(first),
        })
    }

    /// Reopen a heap file by its first page (from the catalog).
    pub fn open(first: PageId) -> HeapFile {
        HeapFile {
            first,
            last_hint: AtomicU64::new(first),
        }
    }

    /// The first page (persisted in the catalog).
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// Append a tuple, growing the chain as needed.
    pub fn insert(&self, pool: &BufferPool, tuple: &[u8]) -> Result<Rid, StorageError> {
        if tuple.len() > crate::page::MAX_TUPLE {
            return Err(StorageError::TupleTooLarge {
                size: tuple.len(),
                max: crate::page::MAX_TUPLE,
            });
        }
        let mut pid = self.last_hint.load(Ordering::Relaxed);
        loop {
            let mut page = pool.fetch_write(pid)?;
            let mut sp = SlottedPage::new(&mut page);
            if let Some(slot) = sp.insert(tuple) {
                self.last_hint.store(pid, Ordering::Relaxed);
                return Ok(Rid { page: pid, slot });
            }
            let next = sp.next();
            if next != NO_PAGE {
                drop(page);
                pid = next;
                continue;
            }
            // Grow the chain.
            let new_pid = pool.allocate()?;
            sp.set_next(new_pid);
            drop(page);
            let mut new_page = pool.fetch_write(new_pid)?;
            SlottedPage::init(&mut new_page);
            drop(new_page);
            pid = new_pid;
        }
    }

    /// Fetch a tuple by RID.
    pub fn get(&self, pool: &BufferPool, rid: Rid) -> Result<Vec<u8>, StorageError> {
        let mut page = pool.fetch_write(rid.page)?;
        let sp = SlottedPage::new(&mut page);
        sp.get(rid.slot)
            .map(|b| b.to_vec())
            .map_err(|_| StorageError::TupleNotFound {
                page: rid.page,
                slot: rid.slot,
            })
    }

    /// Delete a tuple by RID (tombstone).
    pub fn delete(&self, pool: &BufferPool, rid: Rid) -> Result<(), StorageError> {
        let mut page = pool.fetch_write(rid.page)?;
        let mut sp = SlottedPage::new(&mut page);
        sp.delete(rid.slot)
            .map_err(|_| StorageError::TupleNotFound {
                page: rid.page,
                slot: rid.slot,
            })
    }

    /// Visit every tuple in chain order with *borrowed* bytes: each page
    /// is copied once into a reusable buffer, its latch released, and `f`
    /// called on tuple slices into that copy. The allocation-free sibling
    /// of [`HeapFile::scan`] for tight sequential scans — no per-row
    /// `Vec`, and `f` runs with no page pinned, so it may take as long as
    /// it likes without blocking writers or eviction.
    pub fn for_each_row<E: From<StorageError>>(
        &self,
        pool: &BufferPool,
        mut f: impl FnMut(Rid, &[u8]) -> Result<(), E>,
    ) -> Result<(), E> {
        let mut copy: Box<[u8; crate::PAGE_SIZE]> = Box::new([0u8; crate::PAGE_SIZE]);
        let mut pid = self.first;
        while pid != NO_PAGE {
            {
                let page = pool.fetch_read(pid)?;
                copy.copy_from_slice(&page[..]);
            }
            let sp = SlottedPage::new(&mut copy);
            let next = sp.next();
            for (slot, bytes) in sp.iter() {
                f(Rid { page: pid, slot }, bytes)?;
            }
            pid = next;
        }
        Ok(())
    }

    /// Full scan in chain order. Tuples are copied out page by page, so
    /// the iterator holds no page pins between steps.
    pub fn scan<'p>(&self, pool: &'p BufferPool) -> HeapScan<'p> {
        HeapScan {
            pool,
            next_page: self.first,
            buffer: Vec::new(),
            pos: 0,
            failed: false,
        }
    }
}

/// Iterator over `(Rid, tuple bytes)` of a heap file.
pub struct HeapScan<'p> {
    pool: &'p BufferPool,
    next_page: PageId,
    buffer: Vec<(Rid, Vec<u8>)>,
    pos: usize,
    failed: bool,
}

impl Iterator for HeapScan<'_> {
    type Item = Result<(Rid, Vec<u8>), StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.pos < self.buffer.len() {
                let item = self.buffer[self.pos].clone();
                self.pos += 1;
                return Some(Ok(item));
            }
            if self.next_page == NO_PAGE {
                return None;
            }
            let pid = self.next_page;
            let mut page = match self.pool.fetch_write(pid) {
                Ok(p) => p,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            let sp = SlottedPage::new(&mut page);
            self.buffer = sp
                .iter()
                .map(|(slot, t)| (Rid { page: pid, slot }, t.to_vec()))
                .collect();
            self.pos = 0;
            self.next_page = sp.next();
        }
    }
}

/// Number of pages a heap file occupies (walks the chain).
pub fn chain_length(pool: &BufferPool, first: PageId) -> Result<u64, StorageError> {
    let mut n = 0;
    let mut pid = first;
    let limit = pool.page_count() + 1;
    while pid != NO_PAGE {
        n += 1;
        if n > limit {
            return Err(StorageError::CorruptPage {
                page: pid,
                reason: "page chain cycle",
            });
        }
        let mut page = pool.fetch_write(pid)?;
        pid = SlottedPage::new(&mut page).next();
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::disk::PAGE_SIZE;

    fn pool() -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new()), 16)
    }

    #[test]
    fn insert_get_roundtrip() {
        let pool = pool();
        let heap = HeapFile::create(&pool).unwrap();
        let r1 = heap.insert(&pool, b"alpha").unwrap();
        let r2 = heap.insert(&pool, b"beta").unwrap();
        assert_eq!(heap.get(&pool, r1).unwrap(), b"alpha");
        assert_eq!(heap.get(&pool, r2).unwrap(), b"beta");
    }

    #[test]
    fn for_each_row_matches_scan() {
        let pool = pool();
        let heap = HeapFile::create(&pool).unwrap();
        for i in 0..120u32 {
            // Mixed sizes so rows cross page boundaries.
            let t = vec![i as u8; 40 + (i as usize % 500)];
            heap.insert(&pool, &t).unwrap();
        }
        let scanned: Vec<(Rid, Vec<u8>)> = heap
            .scan(&pool)
            .collect::<Result<_, StorageError>>()
            .unwrap();
        let mut visited = Vec::new();
        heap.for_each_row(&pool, |rid, bytes| -> Result<(), StorageError> {
            visited.push((rid, bytes.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(visited, scanned);
        // Early error stops the walk and surfaces through `E`.
        let mut seen = 0;
        let err = heap.for_each_row(&pool, |_, _| -> Result<(), StorageError> {
            seen += 1;
            if seen == 3 {
                Err(StorageError::SchemaMismatch("stop"))
            } else {
                Ok(())
            }
        });
        assert!(err.is_err());
        assert_eq!(seen, 3);
    }

    #[test]
    fn grows_across_pages_and_scans_in_order() {
        let pool = pool();
        let heap = HeapFile::create(&pool).unwrap();
        let tuple = vec![9u8; 1000];
        let n = 50; // 50 KB ≫ one page
        let mut rids = Vec::new();
        for i in 0..n {
            let mut t = tuple.clone();
            t[0] = i as u8;
            rids.push(heap.insert(&pool, &t).unwrap());
        }
        assert!(chain_length(&pool, heap.first_page()).unwrap() >= 7);
        let scanned: Vec<(Rid, Vec<u8>)> = heap.scan(&pool).collect::<Result<_, _>>().unwrap();
        assert_eq!(scanned.len(), n);
        for (i, (rid, t)) in scanned.iter().enumerate() {
            assert_eq!(*rid, rids[i]);
            assert_eq!(t[0], i as u8);
        }
    }

    #[test]
    fn delete_hides_from_scan_and_get() {
        let pool = pool();
        let heap = HeapFile::create(&pool).unwrap();
        let a = heap.insert(&pool, b"a").unwrap();
        let b = heap.insert(&pool, b"b").unwrap();
        heap.delete(&pool, a).unwrap();
        assert!(heap.get(&pool, a).is_err());
        let left: Vec<Vec<u8>> = heap.scan(&pool).map(|r| r.unwrap().1).collect();
        assert_eq!(left, vec![b"b".to_vec()]);
        assert_eq!(heap.get(&pool, b).unwrap(), b"b");
    }

    #[test]
    fn oversized_tuple_rejected() {
        let pool = pool();
        let heap = HeapFile::create(&pool).unwrap();
        let e = heap.insert(&pool, &vec![0u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(e, StorageError::TupleTooLarge { .. }));
    }

    #[test]
    fn reopen_by_first_page() {
        let pool = pool();
        let first;
        {
            let heap = HeapFile::create(&pool).unwrap();
            first = heap.first_page();
            heap.insert(&pool, b"persisted").unwrap();
        }
        let heap = HeapFile::open(first);
        let all: Vec<Vec<u8>> = heap.scan(&pool).map(|r| r.unwrap().1).collect();
        assert_eq!(all, vec![b"persisted".to_vec()]);
    }

    #[test]
    fn rid_u64_roundtrip() {
        let rid = Rid {
            page: 123_456,
            slot: 789,
        };
        assert_eq!(Rid::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn scan_of_empty_heap_is_empty() {
        let pool = pool();
        let heap = HeapFile::create(&pool).unwrap();
        assert_eq!(heap.scan(&pool).count(), 0);
    }
}
