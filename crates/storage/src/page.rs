//! Slotted-page layout for variable-length tuples.
//!
//! ```text
//! 0        8        10        12       14            free_start   free_end
//! [next u64][nslots ][free_st ][free_end][slot array →]  ...gap...  [←tuple data]
//! ```
//!
//! The first 8 bytes hold a `next page` pointer so heap files and blob
//! chains can link pages without a separate directory. Slots grow from the
//! low end after the header; tuple bytes grow downward from the page end.
//! Deleted slots are tombstoned (`offset == u16::MAX`) and their space is
//! reclaimed only on compaction (not implemented — the paper's workload is
//! append-then-scan).

use crate::disk::PAGE_SIZE;
use crate::error::StorageError;

const HEADER: usize = 14;
const SLOT_BYTES: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// Largest tuple a single page can hold.
pub const MAX_TUPLE: usize = PAGE_SIZE - HEADER - SLOT_BYTES;

/// A slotted-page view over a page buffer.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8; PAGE_SIZE],
}

impl<'a> SlottedPage<'a> {
    /// Interpret `buf` as a slotted page (no validation; use [`Self::init`]
    /// for fresh pages).
    pub fn new(buf: &'a mut [u8; PAGE_SIZE]) -> Self {
        SlottedPage { buf }
    }

    /// Initialize a fresh page: no slots, no next pointer.
    pub fn init(buf: &'a mut [u8; PAGE_SIZE]) -> Self {
        buf.fill(0);
        let mut p = SlottedPage { buf };
        p.set_next(crate::NO_PAGE);
        p.set_nslots(0);
        p.set_free_start(HEADER as u16);
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// The `next page` pointer.
    pub fn next(&self) -> u64 {
        u64::from_le_bytes(self.buf[0..8].try_into().expect("len"))
    }

    /// Set the `next page` pointer.
    pub fn set_next(&mut self, next: u64) {
        self.buf[0..8].copy_from_slice(&next.to_le_bytes());
    }

    fn nslots(&self) -> u16 {
        u16::from_le_bytes(self.buf[8..10].try_into().expect("len"))
    }

    fn set_nslots(&mut self, n: u16) {
        self.buf[8..10].copy_from_slice(&n.to_le_bytes());
    }

    fn free_start(&self) -> u16 {
        u16::from_le_bytes(self.buf[10..12].try_into().expect("len"))
    }

    fn set_free_start(&mut self, v: u16) {
        self.buf[10..12].copy_from_slice(&v.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.buf[12..14].try_into().expect("len"))
    }

    fn set_free_end(&mut self, v: u16) {
        self.buf[12..14].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let off = HEADER + i as usize * SLOT_BYTES;
        let o = u16::from_le_bytes(self.buf[off..off + 2].try_into().expect("len"));
        let l = u16::from_le_bytes(self.buf[off + 2..off + 4].try_into().expect("len"));
        (o, l)
    }

    fn set_slot(&mut self, i: u16, offset: u16, len: u16) {
        let off = HEADER + i as usize * SLOT_BYTES;
        self.buf[off..off + 2].copy_from_slice(&offset.to_le_bytes());
        self.buf[off + 2..off + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Number of slots ever created (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.nslots()
    }

    /// Contiguous free bytes available for one more insert (tuple + slot).
    pub fn free_space(&self) -> usize {
        (self.free_end() as usize).saturating_sub(self.free_start() as usize + SLOT_BYTES)
    }

    /// Insert a tuple; returns the slot id, or `None` if it does not fit.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<u16> {
        if tuple.len() > MAX_TUPLE || tuple.len() >= TOMBSTONE as usize {
            return None;
        }
        if self.free_space() < tuple.len() {
            return None;
        }
        let slot = self.nslots();
        let end = self.free_end() as usize;
        let start = end - tuple.len();
        self.buf[start..end].copy_from_slice(tuple);
        self.set_slot(slot, start as u16, tuple.len() as u16);
        self.set_nslots(slot + 1);
        self.set_free_start((HEADER + (slot as usize + 1) * SLOT_BYTES) as u16);
        self.set_free_end(start as u16);
        Some(slot)
    }

    /// Read the tuple in `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8], StorageError> {
        if slot >= self.nslots() {
            return Err(StorageError::TupleNotFound { page: 0, slot });
        }
        let (o, l) = self.slot(slot);
        if o == TOMBSTONE {
            return Err(StorageError::TupleNotFound { page: 0, slot });
        }
        let (o, l) = (o as usize, l as usize);
        if o + l > PAGE_SIZE || o < HEADER {
            return Err(StorageError::CorruptPage {
                page: 0,
                reason: "slot out of range",
            });
        }
        Ok(&self.buf[o..o + l])
    }

    /// Tombstone a slot. Space is not reclaimed.
    pub fn delete(&mut self, slot: u16) -> Result<(), StorageError> {
        if slot >= self.nslots() {
            return Err(StorageError::TupleNotFound { page: 0, slot });
        }
        let (o, _) = self.slot(slot);
        if o == TOMBSTONE {
            return Err(StorageError::TupleNotFound { page: 0, slot });
        }
        self.set_slot(slot, TOMBSTONE, 0);
        Ok(())
    }

    /// Iterate live `(slot, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.nslots()).filter_map(move |i| {
            let (o, l) = self.slot(i);
            if o == TOMBSTONE {
                None
            } else {
                Some((i, &self.buf[o as usize..(o + l) as usize]))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8; PAGE_SIZE]> {
        Box::new([0u8; PAGE_SIZE])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_until_capacity() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let tuple = [7u8; 100];
        let mut n = 0;
        while p.insert(&tuple).is_some() {
            n += 1;
        }
        // 8192 - 14 header; each tuple costs 104 → ~78 tuples.
        assert!((75..=80).contains(&n), "inserted {n}");
        // Everything is still readable.
        for i in 0..n {
            assert_eq!(p.get(i as u16).unwrap(), &tuple[..]);
        }
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
        assert!(p.insert(&vec![0u8; MAX_TUPLE]).is_some());
    }

    #[test]
    fn delete_tombstones() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"dead").unwrap();
        let b = p.insert(b"alive").unwrap();
        p.delete(a).unwrap();
        assert!(matches!(p.get(a), Err(StorageError::TupleNotFound { .. })));
        assert!(matches!(
            p.delete(a),
            Err(StorageError::TupleNotFound { .. })
        ));
        assert_eq!(p.get(b).unwrap(), b"alive");
        let live: Vec<u16> = p.iter().map(|(s, _)| s).collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn next_pointer_roundtrips() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        assert_eq!(p.next(), crate::NO_PAGE);
        p.set_next(12345);
        assert_eq!(p.next(), 12345);
        // Inserts don't clobber the header.
        p.insert(b"x").unwrap();
        assert_eq!(p.next(), 12345);
    }

    #[test]
    fn get_bad_slot_errors() {
        let mut buf = fresh();
        let p = SlottedPage::init(&mut buf);
        assert!(matches!(p.get(0), Err(StorageError::TupleNotFound { .. })));
    }

    #[test]
    fn empty_tuple_is_fine() {
        let mut buf = fresh();
        let mut p = SlottedPage::init(&mut buf);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }
}
