//! Storage-engine error type.

use std::fmt;

/// Errors from the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page id beyond the end of the device.
    PageOutOfBounds(u64),
    /// A page's content violates its expected layout.
    CorruptPage { page: u64, reason: &'static str },
    /// A tuple is too large to ever fit in a page.
    TupleTooLarge { size: usize, max: usize },
    /// A RID pointed at a missing tuple.
    TupleNotFound { page: u64, slot: u16 },
    /// The buffer pool has no evictable frame (everything is pinned).
    PoolExhausted,
    /// A named catalog object does not exist.
    NoSuchObject(String),
    /// A catalog object with this name already exists.
    DuplicateObject(String),
    /// Row bytes did not match the declared schema.
    SchemaMismatch(&'static str),
    /// A blob chain is malformed (cycle or truncation).
    CorruptBlob { first_page: u64 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfBounds(p) => write!(f, "page {p} is out of bounds"),
            StorageError::CorruptPage { page, reason } => {
                write!(f, "corrupt page {page}: {reason}")
            }
            StorageError::TupleTooLarge { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            StorageError::TupleNotFound { page, slot } => {
                write!(f, "no tuple at rid ({page}, {slot})")
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            StorageError::NoSuchObject(n) => write!(f, "no table or index named {n:?}"),
            StorageError::DuplicateObject(n) => write!(f, "object {n:?} already exists"),
            StorageError::SchemaMismatch(m) => write!(f, "row does not match schema: {m}"),
            StorageError::CorruptBlob { first_page } => {
                write!(f, "corrupt blob chain starting at page {first_page}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<StorageError> = vec![
            StorageError::PageOutOfBounds(9),
            StorageError::CorruptPage {
                page: 1,
                reason: "bad slot",
            },
            StorageError::TupleTooLarge {
                size: 9000,
                max: 8000,
            },
            StorageError::TupleNotFound { page: 2, slot: 3 },
            StorageError::PoolExhausted,
            StorageError::NoSuchObject("t".into()),
            StorageError::DuplicateObject("t".into()),
            StorageError::SchemaMismatch("short row"),
            StorageError::CorruptBlob { first_page: 5 },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
