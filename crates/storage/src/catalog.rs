//! The catalog: named tables and indexes bound to their root pages, plus
//! the [`Database`] facade tying pool + catalog together.
//!
//! Layout: page 0 is the database anchor — magic bytes and the page id of
//! the serialized catalog blob. [`Database::save`] rewrites the catalog
//! blob and repoints the anchor (superseded catalog pages are leaked; a
//! vacuum pass is future work, as it was for the paper's prototype).

use crate::blob::BlobStore;
use crate::btree::BTree;
use crate::disk::{Disk, FileDisk, MemDisk};
use crate::error::StorageError;
use crate::heap::HeapFile;
use crate::pager::BufferPool;
use crate::row::{ColumnType, Schema};
use crate::{PageId, NO_PAGE};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;

const MAGIC: &[u8; 4] = b"STDB";

/// A table's catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// First page of the heap file.
    pub first_page: PageId,
}

/// An index's catalog entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Meta page of the B+-tree.
    pub meta_page: PageId,
}

/// The set of named objects in a database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
    indexes: BTreeMap<String, IndexDef>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct CatReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CatReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.buf.len() - self.pos < n {
            return Err(StorageError::CorruptPage {
                page: 0,
                reason: "catalog truncated",
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, StorageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn string(&mut self) -> Result<String, StorageError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StorageError::CorruptPage {
            page: 0,
            reason: "catalog name not UTF-8",
        })
    }
}

impl Catalog {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.tables.len() as u16).to_le_bytes());
        for t in self.tables.values() {
            put_str(&mut out, &t.name);
            out.extend_from_slice(&(t.schema.cols.len() as u16).to_le_bytes());
            for (cn, ct) in &t.schema.cols {
                put_str(&mut out, cn);
                out.push(match ct {
                    ColumnType::Int => 0,
                    ColumnType::Float => 1,
                    ColumnType::Text => 2,
                    ColumnType::Blob => 3,
                });
            }
            out.extend_from_slice(&t.first_page.to_le_bytes());
        }
        out.extend_from_slice(&(self.indexes.len() as u16).to_le_bytes());
        for i in self.indexes.values() {
            put_str(&mut out, &i.name);
            out.extend_from_slice(&i.meta_page.to_le_bytes());
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<Catalog, StorageError> {
        let mut r = CatReader { buf, pos: 0 };
        let mut cat = Catalog::default();
        let ntables = r.u16()?;
        for _ in 0..ntables {
            let name = r.string()?;
            let ncols = r.u16()?;
            let mut cols = Vec::with_capacity(ncols as usize);
            for _ in 0..ncols {
                let cn = r.string()?;
                let ct = match r.take(1)?[0] {
                    0 => ColumnType::Int,
                    1 => ColumnType::Float,
                    2 => ColumnType::Text,
                    3 => ColumnType::Blob,
                    _ => {
                        return Err(StorageError::CorruptPage {
                            page: 0,
                            reason: "unknown column type",
                        })
                    }
                };
                cols.push((cn, ct));
            }
            let first_page = r.u64()?;
            cat.tables.insert(
                name.clone(),
                TableDef {
                    name,
                    schema: Schema { cols },
                    first_page,
                },
            );
        }
        let nindexes = r.u16()?;
        for _ in 0..nindexes {
            let name = r.string()?;
            let meta_page = r.u64()?;
            cat.indexes
                .insert(name.clone(), IndexDef { name, meta_page });
        }
        Ok(cat)
    }
}

/// A database: buffer pool + catalog.
pub struct Database {
    pool: BufferPool,
    catalog: Mutex<Catalog>,
}

impl Database {
    fn bootstrap(disk: Box<dyn Disk>, frames: usize) -> Result<Database, StorageError> {
        let pool = BufferPool::new(disk, frames);
        // Page 0: anchor.
        let p0 = pool.allocate()?;
        debug_assert_eq!(p0, 0);
        let mut anchor = pool.fetch_write(0)?;
        anchor[0..4].copy_from_slice(MAGIC);
        anchor[4..12].copy_from_slice(&NO_PAGE.to_le_bytes());
        drop(anchor);
        Ok(Database {
            pool,
            catalog: Mutex::new(Catalog::default()),
        })
    }

    /// Create an in-memory database (tests, CPU-bound experiments).
    pub fn in_memory(frames: usize) -> Result<Database, StorageError> {
        Self::bootstrap(Box::new(MemDisk::new()), frames)
    }

    /// Create a file-backed database, truncating any existing file.
    pub fn create(path: impl AsRef<Path>, frames: usize) -> Result<Database, StorageError> {
        Self::bootstrap(Box::new(FileDisk::create(path)?), frames)
    }

    /// Open an existing file-backed database and load its catalog.
    pub fn open(path: impl AsRef<Path>, frames: usize) -> Result<Database, StorageError> {
        let pool = BufferPool::new(Box::new(FileDisk::open(path)?), frames);
        let anchor = pool.fetch_read(0)?;
        if &anchor[0..4] != MAGIC {
            return Err(StorageError::CorruptPage {
                page: 0,
                reason: "bad database magic",
            });
        }
        let cat_blob = u64::from_le_bytes(anchor[4..12].try_into().expect("len"));
        drop(anchor);
        let catalog = if cat_blob == NO_PAGE {
            Catalog::default()
        } else {
            Catalog::decode(&BlobStore::get(&pool, cat_blob)?)?
        };
        Ok(Database {
            pool,
            catalog: Mutex::new(catalog),
        })
    }

    /// The buffer pool (for direct heap/btree/blob operations).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Create a table; errors if the name exists.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<HeapFile, StorageError> {
        let mut cat = self.catalog.lock();
        if cat.tables.contains_key(name) {
            return Err(StorageError::DuplicateObject(name.to_string()));
        }
        let heap = HeapFile::create(&self.pool)?;
        cat.tables.insert(
            name.to_string(),
            TableDef {
                name: name.to_string(),
                schema,
                first_page: heap.first_page(),
            },
        );
        Ok(heap)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<(Schema, HeapFile), StorageError> {
        let cat = self.catalog.lock();
        let def = cat
            .tables
            .get(name)
            .ok_or_else(|| StorageError::NoSuchObject(name.to_string()))?;
        Ok((def.schema.clone(), HeapFile::open(def.first_page)))
    }

    /// Create a B+-tree index; errors if the name exists.
    pub fn create_index(&self, name: &str) -> Result<BTree, StorageError> {
        let mut cat = self.catalog.lock();
        if cat.indexes.contains_key(name) {
            return Err(StorageError::DuplicateObject(name.to_string()));
        }
        let tree = BTree::create(&self.pool)?;
        cat.indexes.insert(
            name.to_string(),
            IndexDef {
                name: name.to_string(),
                meta_page: tree.meta_page(),
            },
        );
        Ok(tree)
    }

    /// Look up an index.
    pub fn index(&self, name: &str) -> Result<BTree, StorageError> {
        let cat = self.catalog.lock();
        let def = cat
            .indexes
            .get(name)
            .ok_or_else(|| StorageError::NoSuchObject(name.to_string()))?;
        Ok(BTree::open(def.meta_page))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.lock().tables.keys().cloned().collect()
    }

    /// Names of all indexes.
    pub fn index_names(&self) -> Vec<String> {
        self.catalog.lock().indexes.keys().cloned().collect()
    }

    /// Persist the catalog and flush every dirty page.
    pub fn save(&self) -> Result<(), StorageError> {
        let encoded = self.catalog.lock().encode();
        let blob = BlobStore::put(&self.pool, &encoded)?;
        let mut anchor = self.pool.fetch_write(0)?;
        anchor[4..12].copy_from_slice(&blob.to_le_bytes());
        drop(anchor);
        self.pool.flush_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::{decode_row, encode_row, Value};

    fn claims_schema() -> Schema {
        Schema::new(&[
            ("DocID", ColumnType::Int),
            ("Year", ColumnType::Int),
            ("Loss", ColumnType::Float),
            ("DocData", ColumnType::Blob),
        ])
    }

    #[test]
    fn create_and_use_table_in_memory() {
        let db = Database::in_memory(32).unwrap();
        let heap = db.create_table("Claims", claims_schema()).unwrap();
        let (schema, _) = db.table("Claims").unwrap();
        let row = vec![
            Value::Int(1),
            Value::Int(2010),
            Value::Float(5.0),
            Value::Blob(0),
        ];
        let rid = heap
            .insert(db.pool(), &encode_row(&schema, &row).unwrap())
            .unwrap();
        let bytes = heap.get(db.pool(), rid).unwrap();
        assert_eq!(decode_row(&schema, &bytes).unwrap(), row);
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = Database::in_memory(32).unwrap();
        db.create_table("t", claims_schema()).unwrap();
        assert!(matches!(
            db.create_table("t", claims_schema()),
            Err(StorageError::DuplicateObject(_))
        ));
        db.create_index("i").unwrap();
        assert!(matches!(
            db.create_index("i"),
            Err(StorageError::DuplicateObject(_))
        ));
    }

    #[test]
    fn missing_objects_error() {
        let db = Database::in_memory(32).unwrap();
        assert!(matches!(
            db.table("nope"),
            Err(StorageError::NoSuchObject(_))
        ));
        assert!(matches!(
            db.index("nope"),
            Err(StorageError::NoSuchObject(_))
        ));
    }

    #[test]
    fn catalog_roundtrips_through_bytes() {
        let mut cat = Catalog::default();
        cat.tables.insert(
            "Claims".into(),
            TableDef {
                name: "Claims".into(),
                schema: claims_schema(),
                first_page: 7,
            },
        );
        cat.indexes.insert(
            "inv".into(),
            IndexDef {
                name: "inv".into(),
                meta_page: 9,
            },
        );
        let bytes = cat.encode();
        assert_eq!(Catalog::decode(&bytes).unwrap(), cat);
    }

    #[test]
    fn save_and_reopen_from_file() {
        let dir = std::env::temp_dir().join(format!("staccato-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.db");
        let rid;
        {
            let db = Database::create(&path, 32).unwrap();
            let heap = db
                .create_table(
                    "MasterData",
                    Schema::new(&[
                        ("DataKey", ColumnType::Int),
                        ("DocName", ColumnType::Text),
                        ("SFANum", ColumnType::Int),
                    ]),
                )
                .unwrap();
            let schema = db.table("MasterData").unwrap().0;
            let row = vec![
                Value::Int(1),
                Value::Text("CA_doc_000".into()),
                Value::Int(17),
            ];
            rid = heap
                .insert(db.pool(), &encode_row(&schema, &row).unwrap())
                .unwrap();
            let idx = db.create_index("pk").unwrap();
            idx.insert(db.pool(), b"1", rid.to_u64()).unwrap();
            db.save().unwrap();
        }
        {
            let db = Database::open(&path, 32).unwrap();
            assert_eq!(db.table_names(), vec!["MasterData".to_string()]);
            assert_eq!(db.index_names(), vec!["pk".to_string()]);
            let (schema, heap) = db.table("MasterData").unwrap();
            let idx = db.index("pk").unwrap();
            let found = idx.get(db.pool(), b"1").unwrap().unwrap();
            let bytes = heap
                .get(db.pool(), crate::heap::Rid::from_u64(found))
                .unwrap();
            let row = decode_row(&schema, &bytes).unwrap();
            assert_eq!(row[1].as_text(), Some("CA_doc_000"));
            assert_eq!(row[2].as_int(), Some(17));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_non_database_file() {
        let dir = std::env::temp_dir().join(format!("staccato-db-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.db");
        std::fs::write(&path, vec![0u8; crate::PAGE_SIZE]).unwrap();
        assert!(matches!(
            Database::open(&path, 16),
            Err(StorageError::CorruptPage { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_twice_keeps_latest_catalog() {
        let dir = std::env::temp_dir().join(format!("staccato-db2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("two.db");
        {
            let db = Database::create(&path, 32).unwrap();
            db.create_table("a", claims_schema()).unwrap();
            db.save().unwrap();
            db.create_table("b", claims_schema()).unwrap();
            db.save().unwrap();
        }
        let db = Database::open(&path, 32).unwrap();
        assert_eq!(db.table_names(), vec!["a".to_string(), "b".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
