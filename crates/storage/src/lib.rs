//! # staccato-storage
//!
//! A from-scratch mini-RDBMS storage engine standing in for the
//! PostgreSQL 9.0.3 instance the paper ran on (§5: "implemented in C++
//! using PostgreSQL"). Everything the experiments exercise is here:
//!
//! * [`disk`] — the page-device abstraction (file-backed or in-memory);
//! * [`pager`] — an 8 KiB-page buffer pool with LRU eviction, pinning, and
//!   I/O statistics (the experiments' cost asymmetry between reading MAP
//!   tuples and multi-gigabyte FullSFA blobs is an I/O-volume effect, so
//!   the pool counts every disk read/write);
//! * [`page`] — slotted-page layout for variable-length tuples;
//! * [`heap`] — heap files (linked page chains) with RID addressing;
//! * [`btree`] — a page-based B+-tree over byte-string keys, used for the
//!   primary keys of Table 5 and the inverted-index table of §5.3 ("we
//!   implement the index as a relational table with a B+-tree on top");
//! * [`blob`] — multi-page large objects, the Postgres `OID` analogue that
//!   stores `SFABlob` / `GraphBlob`;
//! * [`row`] — typed values and row (de)serialization;
//! * [`catalog`] — named tables/indexes bound to their root pages,
//!   persisted in the database file;
//! * [`wal`] — an append-only write-ahead log (CRC-framed records in
//!   rotating segment files) backing the query layer's ingest path and
//!   crash recovery;
//! * [`rcu`] — the hand-rolled arc-swap ([`RcuCell`]) behind the
//!   lock-free read paths: buffer-pool page hits, the query layer's
//!   sharded compiled-query cache, and index-registry snapshots.

pub mod blob;
pub mod btree;
pub mod catalog;
pub mod disk;
pub mod error;
pub mod heap;
pub mod page;
pub mod pager;
pub mod rcu;
pub mod row;
pub mod wal;

pub use blob::BlobStore;
pub use btree::BTree;
pub use catalog::{Catalog, Database, TableDef};
pub use disk::{Disk, FileDisk, MemDisk, PAGE_SIZE};
pub use error::StorageError;
pub use heap::{HeapFile, HeapScan, Rid};
pub use pager::{BufferPool, PoolStats};
pub use rcu::RcuCell;
pub use row::{ColumnType, Row, RowReader, Schema, Value};
pub use wal::{FlushTicket, SyncPolicy, Wal, WalFlusher, WalStats};

/// Identifier of a page on disk.
pub type PageId = u64;

/// Sentinel for "no page".
pub const NO_PAGE: PageId = u64::MAX;
