//! The Table 5 schema: loading an OCR corpus into the RDBMS under all
//! four representations.
//!
//! | table | columns | contents |
//! |---|---|---|
//! | `MasterData` | DataKey, DocName, SFANum | one row per scanned line |
//! | `MAPData` | DataKey, Data, LogProb | the MAP transcription |
//! | `kMAPData` | DataKey, LineNum, Data, LogProb | top-k strings (LineNum = rank) |
//! | `FullSFAData` | DataKey, SFABlob | the full OCR SFA as a blob |
//! | `StaccatoData` | DataKey, ChunkNum, LineNum, Data, LogProb | per-chunk top-k strings |
//! | `StaccatoGraph` | DataKey, GraphBlob | the chunk graph as a blob |
//! | `GroundTruth` | DataKey, Data | the clean line (evaluation only) |
//! | `StaccatoHistory` | DataKey, FileName, Provider, Confidence, ProcessingTimeMs, IngestedAt, BatchSeq | one row per *ingested* document |
//!
//! (The paper stores MAP as k-MAP with k = 1; a dedicated `MAPData` table
//! keeps the MAP filescan's I/O proportional to one string per line, as a
//! separate k = 1 dataset would.) B+-tree primary indexes are built on the
//! blob tables so index-assisted queries can fetch single lines.
//!
//! Construction (channel → k-best → Staccato approximation) is
//! embarrassingly parallel across lines (§5.2 used Condor); the loader
//! fans out over `parallelism` threads.

use crate::error::QueryError;
use crate::ingest::HistoryRow;
use staccato_core::{approximate, StaccatoParams};
use staccato_ocr::{Channel, ChannelConfig, Dataset};
use staccato_sfa::{codec, k_best_paths, Sfa};
use staccato_storage::{
    BTree, BlobStore, BufferPool, ColumnType, Database, HeapFile, HeapScan, Rid, RowReader, Schema,
    StorageError, Value,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Loader options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// OCR channel configuration.
    pub channel: ChannelConfig,
    /// `k` for the k-MAP representation.
    pub kmap_k: usize,
    /// `(m, k)` for the Staccato representation.
    pub staccato: StaccatoParams,
    /// Worker threads for SFA construction and approximation.
    pub parallelism: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            channel: ChannelConfig::default(),
            kmap_k: 25,
            staccato: StaccatoParams::new(40, 25),
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Per-line artifacts produced by the construction pipeline. The WAL
/// logs these verbatim (see [`crate::ingest`]) so replay re-inserts
/// rows without re-running the channel.
pub(crate) struct LineArtifacts {
    pub(crate) doc_name: String,
    pub(crate) sfa_num: i64,
    pub(crate) clean: String,
    pub(crate) kmap: Vec<(String, f64)>,
    pub(crate) full_blob: Vec<u8>,
    pub(crate) stac_blob: Vec<u8>,
    /// `(chunk index, rank, string, log-prob)` rows for StaccatoData.
    pub(crate) stac_chunks: Vec<(i64, i64, String, f64)>,
}

/// Byte sizes of each representation after loading (Table 2 / §5.5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RepresentationSizes {
    /// Clean text bytes.
    pub text: u64,
    /// MAP strings.
    pub map: u64,
    /// k-MAP strings (incl. 16-byte per-tuple metadata, as Table 1 counts).
    pub kmap: u64,
    /// FullSFA blobs.
    pub full_sfa: u64,
    /// Staccato graph blobs.
    pub staccato: u64,
}

/// A loaded OCR store: the database plus live line/size accounting.
///
/// `lines` and `sizes` are interior-mutable so the ingest path can keep
/// them current through a shared reference — `line_count()` and
/// `sizes()` always reflect every applied batch, never a load-time
/// snapshot. The channel and load options are retained so ingested
/// documents are built exactly like loaded ones.
pub struct OcrStore {
    db: Database,
    lines: AtomicUsize,
    sizes: Mutex<RepresentationSizes>,
    opts: LoadOptions,
    channel: Channel,
}

pub(crate) fn build_line(
    channel: &Channel,
    opts: &LoadOptions,
    line: &str,
    line_id: u64,
) -> LineArtifacts {
    let sfa = channel.line_to_sfa(line, line_id);
    build_line_from_sfa(opts, &sfa, line)
}

/// [`build_line`] for a pre-built SFA (ingest of external OCR output):
/// skips the channel, runs k-best and the Staccato approximation.
pub(crate) fn build_line_from_sfa(opts: &LoadOptions, sfa: &Sfa, line: &str) -> LineArtifacts {
    let kmap = k_best_paths(sfa, opts.kmap_k)
        .into_iter()
        .map(|p| (p.string, p.prob))
        .collect::<Vec<_>>();
    let full_blob = codec::encode(sfa);
    let stac = approximate(sfa, opts.staccato);
    let stac_blob = codec::encode(&stac);
    // Chunk rows: edges in topological order are the chunks; each emission
    // is one retained string.
    let order_rank: std::collections::HashMap<u32, usize> = stac
        .topo_order()
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();
    let mut chunk_edges: Vec<_> = stac.edges().collect();
    chunk_edges.sort_by_key(|(_, e)| (order_rank[&e.from], order_rank[&e.to]));
    let mut stac_chunks = Vec::new();
    for (ci, (_, e)) in chunk_edges.iter().enumerate() {
        for (rank, em) in e.emissions.iter().enumerate() {
            stac_chunks.push((ci as i64, rank as i64, em.label.clone(), em.prob.ln()));
        }
    }
    LineArtifacts {
        doc_name: String::new(),
        sfa_num: 0,
        clean: line.to_string(),
        kmap,
        full_blob,
        stac_blob,
        stac_chunks,
    }
}

impl OcrStore {
    /// Load a dataset into `db`, building all representations.
    pub fn load(
        db: Database,
        dataset: &Dataset,
        opts: &LoadOptions,
    ) -> Result<OcrStore, QueryError> {
        let channel = Channel::new(opts.channel.clone());

        // Phase 1: per-line construction, parallel across lines.
        let work: Vec<(String, i64, u64, String)> = dataset
            .lines()
            .enumerate()
            .map(|(global, (di, li, text))| {
                (
                    dataset.docs[di].name.clone(),
                    li as i64,
                    global as u64,
                    text.to_string(),
                )
            })
            .collect();
        let par = opts.parallelism.max(1);
        let chunk = work.len().div_ceil(par).max(1);
        let mut artifacts: Vec<Option<LineArtifacts>> = Vec::with_capacity(work.len());
        artifacts.resize_with(work.len(), || None);
        std::thread::scope(|scope| {
            for (w_idx, (slice, out)) in work
                .chunks(chunk)
                .zip(artifacts.chunks_mut(chunk))
                .enumerate()
            {
                let channel = &channel;
                let opts_ref = &opts;
                let _ = w_idx;
                scope.spawn(move || {
                    for ((doc, sfanum, id, text), slot) in slice.iter().zip(out.iter_mut()) {
                        let mut art = build_line(channel, opts_ref, text, *id);
                        art.doc_name = doc.clone();
                        art.sfa_num = *sfanum;
                        *slot = Some(art);
                    }
                });
            }
        });

        // Phase 2: sequential inserts.
        db.create_table(
            "MasterData",
            Schema::new(&[
                ("DataKey", ColumnType::Int),
                ("DocName", ColumnType::Text),
                ("SFANum", ColumnType::Int),
            ]),
        )?;
        db.create_table(
            "MAPData",
            Schema::new(&[
                ("DataKey", ColumnType::Int),
                ("Data", ColumnType::Text),
                ("LogProb", ColumnType::Float),
            ]),
        )?;
        db.create_table(
            "kMAPData",
            Schema::new(&[
                ("DataKey", ColumnType::Int),
                ("LineNum", ColumnType::Int),
                ("Data", ColumnType::Text),
                ("LogProb", ColumnType::Float),
            ]),
        )?;
        db.create_table(
            "FullSFAData",
            Schema::new(&[("DataKey", ColumnType::Int), ("SFABlob", ColumnType::Blob)]),
        )?;
        db.create_table(
            "StaccatoData",
            Schema::new(&[
                ("DataKey", ColumnType::Int),
                ("ChunkNum", ColumnType::Int),
                ("LineNum", ColumnType::Int),
                ("Data", ColumnType::Text),
                ("LogProb", ColumnType::Float),
            ]),
        )?;
        db.create_table(
            "StaccatoGraph",
            Schema::new(&[
                ("DataKey", ColumnType::Int),
                ("GraphBlob", ColumnType::Blob),
            ]),
        )?;
        db.create_table(
            "GroundTruth",
            Schema::new(&[("DataKey", ColumnType::Int), ("Data", ColumnType::Text)]),
        )?;
        db.create_table("StaccatoHistory", history_schema())?;
        db.create_index("FullSFAData_pk")?;
        db.create_index("StaccatoGraph_pk")?;

        let store = OcrStore {
            db,
            lines: AtomicUsize::new(0),
            sizes: Mutex::new(RepresentationSizes::default()),
            opts: opts.clone(),
            channel,
        };
        for (key, art) in artifacts.into_iter().enumerate() {
            let art = art.expect("every line built");
            store.insert_line_artifacts(key as i64, &art)?;
        }
        store.lines.store(work.len(), Ordering::Release);
        Ok(store)
    }

    /// Reopen a store persisted by [`Database::save`]: recount lines
    /// from `MasterData` and recompute the representation sizes by
    /// rescanning every table — the catalog persists rows and blobs,
    /// not the loader's accounting. Part of the crash-recovery path
    /// ([`crate::Staccato::recover`]).
    pub fn reopen(db: Database, opts: &LoadOptions) -> Result<OcrStore, QueryError> {
        let channel = Channel::new(opts.channel.clone());
        // Database files written before the write path existed have no
        // history table; give them an empty one.
        if db.table("StaccatoHistory").is_err() {
            db.create_table("StaccatoHistory", history_schema())?;
        }
        let store = OcrStore {
            db,
            lines: AtomicUsize::new(0),
            sizes: Mutex::new(RepresentationSizes::default()),
            opts: opts.clone(),
            channel,
        };
        let mut lines = 0usize;
        {
            let (_, heap) = store.db.table("MasterData")?;
            for item in heap.scan(store.db.pool()) {
                item?;
                lines += 1;
            }
        }
        let mut sizes = RepresentationSizes::default();
        for (_, text) in store.ground_truth_lines()? {
            sizes.text += text.len() as u64 + 1;
        }
        for item in store.map_cursor()? {
            let (_, s, _) = item?;
            sizes.map += s.len() as u64 + 16;
        }
        for item in store.kmap_cursor()? {
            let (_, strings) = item?;
            for (s, _) in strings {
                sizes.kmap += s.len() as u64 + 16;
            }
        }
        for item in store.full_sfa_blobs()? {
            let (_, bytes) = item?;
            sizes.full_sfa += bytes.len() as u64;
        }
        for item in store.staccato_blobs()? {
            let (_, bytes) = item?;
            sizes.staccato += bytes.len() as u64;
        }
        store.lines.store(lines, Ordering::Release);
        *store.sizes.lock().expect("sizes lock") = sizes;
        Ok(store)
    }

    /// Insert one line's artifacts into every representation table and
    /// fold its bytes into the size accounting. Shared by the bulk
    /// loader, live ingest, and WAL replay, so all three produce
    /// byte-identical stores.
    pub(crate) fn insert_line_artifacts(
        &self,
        key: i64,
        art: &LineArtifacts,
    ) -> Result<(), QueryError> {
        let pool = self.db.pool();
        let enc = staccato_storage::row::encode_row;
        let (_, master) = self.db.table("MasterData")?;
        let (_, map_t) = self.db.table("MAPData")?;
        let (_, kmap_t) = self.db.table("kMAPData")?;
        let (_, full_t) = self.db.table("FullSFAData")?;
        let (_, stacd_t) = self.db.table("StaccatoData")?;
        let (_, stacg_t) = self.db.table("StaccatoGraph")?;
        let (_, truth_t) = self.db.table("GroundTruth")?;
        let full_pk = self.db.index("FullSFAData_pk")?;
        let stacg_pk = self.db.index("StaccatoGraph_pk")?;

        let mut delta = RepresentationSizes::default();
        delta.text += art.clean.len() as u64 + 1;
        master.insert(
            pool,
            &enc(
                &master_schema(),
                &vec![
                    Value::Int(key),
                    Value::Text(art.doc_name.clone()),
                    Value::Int(art.sfa_num),
                ],
            )?,
        )?;
        if let Some((s, p)) = art.kmap.first() {
            delta.map += s.len() as u64 + 16;
            map_t.insert(
                pool,
                &enc(
                    &map_schema(),
                    &vec![
                        Value::Int(key),
                        Value::Text(s.clone()),
                        Value::Float(p.ln()),
                    ],
                )?,
            )?;
        }
        for (rank, (s, p)) in art.kmap.iter().enumerate() {
            delta.kmap += s.len() as u64 + 16;
            kmap_t.insert(
                pool,
                &enc(
                    &kmap_schema(),
                    &vec![
                        Value::Int(key),
                        Value::Int(rank as i64),
                        Value::Text(s.clone()),
                        Value::Float(p.ln()),
                    ],
                )?,
            )?;
        }
        delta.full_sfa += art.full_blob.len() as u64;
        let full_blob = BlobStore::put(pool, &art.full_blob)?;
        let rid = full_t.insert(
            pool,
            &enc(
                &blob_schema("SFABlob"),
                &vec![Value::Int(key), Value::Blob(full_blob)],
            )?,
        )?;
        full_pk.insert(pool, &key.to_be_bytes(), rid.to_u64())?;

        for (ci, rank, s, lp) in &art.stac_chunks {
            stacd_t.insert(
                pool,
                &enc(
                    &stacd_schema(),
                    &vec![
                        Value::Int(key),
                        Value::Int(*ci),
                        Value::Int(*rank),
                        Value::Text(s.clone()),
                        Value::Float(*lp),
                    ],
                )?,
            )?;
        }
        delta.staccato += art.stac_blob.len() as u64;
        let stac_blob = BlobStore::put(pool, &art.stac_blob)?;
        let rid = stacg_t.insert(
            pool,
            &enc(
                &blob_schema("GraphBlob"),
                &vec![Value::Int(key), Value::Blob(stac_blob)],
            )?,
        )?;
        stacg_pk.insert(pool, &key.to_be_bytes(), rid.to_u64())?;

        truth_t.insert(
            pool,
            &enc(
                &truth_schema(),
                &vec![Value::Int(key), Value::Text(art.clean.clone())],
            )?,
        )?;

        let mut sizes = self.sizes.lock().expect("sizes lock");
        sizes.text += delta.text;
        sizes.map += delta.map;
        sizes.kmap += delta.kmap;
        sizes.full_sfa += delta.full_sfa;
        sizes.staccato += delta.staccato;
        Ok(())
    }

    /// Append one row to `StaccatoHistory`.
    pub(crate) fn insert_history(&self, row: &HistoryRow) -> Result<(), QueryError> {
        let (schema, heap) = self.db.table("StaccatoHistory")?;
        heap.insert(
            self.db.pool(),
            &staccato_storage::row::encode_row(
                &schema,
                &vec![
                    Value::Int(row.data_key),
                    Value::Text(row.file_name.clone()),
                    Value::Text(row.provider.clone()),
                    Value::Float(row.confidence),
                    Value::Int(row.processing_time_ms),
                    Value::Int(row.ingested_at),
                    Value::Int(row.batch_seq as i64),
                ],
            )?,
        )?;
        Ok(())
    }

    /// All `StaccatoHistory` rows in ingest order. Loaded corpus lines
    /// have no history — the table records live ingests only.
    pub fn history_rows(&self) -> Result<Vec<HistoryRow>, QueryError> {
        let (schema, heap) = self.db.table("StaccatoHistory")?;
        let mut out = Vec::new();
        for item in heap.scan(self.db.pool()) {
            let (_, bytes) = item?;
            let row = staccato_storage::row::decode_row(&schema, &bytes)?;
            out.push(HistoryRow {
                data_key: row[0].as_int().expect("schema"),
                file_name: row[1].as_text().expect("schema").to_string(),
                provider: row[2].as_text().expect("schema").to_string(),
                confidence: row[3].as_float().expect("schema"),
                processing_time_ms: row[4].as_int().expect("schema"),
                ingested_at: row[5].as_int().expect("schema"),
                batch_seq: row[6].as_int().expect("schema") as u64,
            });
        }
        Ok(out)
    }

    /// Bump the live line counter after a batch is fully applied.
    pub(crate) fn bump_lines(&self, n: usize) {
        self.lines.fetch_add(n, Ordering::AcqRel);
    }

    /// The options the corpus was built (and documents are ingested) with.
    pub(crate) fn load_options(&self) -> &LoadOptions {
        &self.opts
    }

    /// The OCR channel used to build ingested documents' SFAs.
    pub(crate) fn channel(&self) -> &Channel {
        &self.channel
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Number of lines (SFAs) in the store — loaded plus ingested,
    /// current as of the last fully applied batch.
    pub fn line_count(&self) -> usize {
        self.lines.load(Ordering::Acquire)
    }

    /// Representation sizes, kept current by the ingest path.
    pub fn sizes(&self) -> RepresentationSizes {
        *self.sizes.lock().expect("sizes lock")
    }

    /// Streaming cursor over the MAP strings: `(DataKey, string, prob)`.
    ///
    /// One row is decoded per `next()` call; nothing is materialized. This
    /// (and its siblings below) is what the executors consume — the
    /// full-corpus `scan_*` vectors the first revision built are gone from
    /// the hot path.
    pub fn map_cursor(&self) -> Result<MapCursor<'_>, QueryError> {
        let (schema, heap) = self.db.table("MAPData")?;
        Ok(MapCursor {
            schema,
            scan: heap.scan(self.db.pool()),
        })
    }

    /// Streaming cursor over k-MAP strings grouped by line:
    /// `(DataKey, [(string, prob)])`. Rows are stored clustered by
    /// DataKey, so grouping is a single buffered pass.
    pub fn kmap_cursor(&self) -> Result<KmapCursor<'_>, QueryError> {
        let (schema, heap) = self.db.table("kMAPData")?;
        Ok(KmapCursor {
            schema,
            scan: heap.scan(self.db.pool()),
            pending: None,
            done: false,
        })
    }

    /// Streaming cursor over *raw* `MAPData` row bytes: `(DataKey, row)`.
    /// The consumer decodes the payload columns borrowed from the row
    /// bytes (see `decode_map_row`), so scan workers evaluate without a
    /// per-row `String` allocation and off the scan thread.
    pub fn map_raw_cursor(&self) -> Result<MapRawCursor<'_>, QueryError> {
        let (_, heap) = self.db.table("MAPData")?;
        Ok(MapRawCursor {
            scan: heap.scan(self.db.pool()),
        })
    }

    /// Streaming cursor over raw `kMAPData` rows grouped by line:
    /// `(DataKey, [row bytes])`. The borrowed-decode sibling of
    /// [`OcrStore::kmap_cursor`]; rows are clustered by DataKey so
    /// grouping is a single buffered pass.
    pub fn kmap_raw_cursor(&self) -> Result<KmapRawCursor<'_>, QueryError> {
        let (_, heap) = self.db.table("kMAPData")?;
        Ok(KmapRawCursor {
            scan: heap.scan(self.db.pool()),
            pending: None,
            done: false,
        })
    }

    /// Visit every blob of `table` with borrowed bytes: one reusable blob
    /// buffer, no per-row allocation. The streaming sibling of
    /// [`BlobCursor`] for single-threaded scans — the scan-kernel hot
    /// path, where handing each worker an owned `Vec<u8>` per row costs
    /// more than evaluating it.
    fn for_each_blob(
        &self,
        table: &'static str,
        mut f: impl FnMut(i64, &[u8]) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        let (schema, heap) = self.db.table(table)?;
        let pool = self.db.pool();
        let mut blob_buf: Vec<u8> = Vec::new();
        heap.for_each_row(pool, |_, bytes| -> Result<(), QueryError> {
            let mut r = RowReader::new(&schema, bytes);
            let key = r.int()?;
            let blob = r.blob()?;
            r.finish()?;
            // Row-sized blobs are borrowed straight off their buffer-pool
            // page (no copy); only multi-page chains assemble into the
            // reusable buffer. The callback only reads, so holding the
            // page's read latch across it is fine.
            BlobStore::with_blob(pool, blob, &mut blob_buf, |bytes| f(key, bytes))?
        })
    }

    /// Visit every full-SFA blob with borrowed bytes (see
    /// [`OcrStore::staccato_blobs`] for the owned cursor).
    pub fn for_each_full_sfa_blob(
        &self,
        f: impl FnMut(i64, &[u8]) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        self.for_each_blob("FullSFAData", f)
    }

    /// Visit every Staccato graph blob with borrowed bytes.
    pub fn for_each_staccato_blob(
        &self,
        f: impl FnMut(i64, &[u8]) -> Result<(), QueryError>,
    ) -> Result<(), QueryError> {
        self.for_each_blob("StaccatoGraph", f)
    }

    fn blob_cursor(&self, table: &'static str) -> Result<BlobCursor<'_>, QueryError> {
        let (schema, heap) = self.db.table(table)?;
        Ok(BlobCursor {
            schema,
            scan: heap.scan(self.db.pool()),
            pool: self.db.pool(),
        })
    }

    /// Streaming cursor over *encoded* full-SFA blobs: `(DataKey, bytes)`.
    /// Decoding is left to the consumer so parallel executors can decode
    /// off the scan thread.
    pub fn full_sfa_blobs(&self) -> Result<BlobCursor<'_>, QueryError> {
        self.blob_cursor("FullSFAData")
    }

    /// Streaming cursor over encoded Staccato graph blobs.
    pub fn staccato_blobs(&self) -> Result<BlobCursor<'_>, QueryError> {
        self.blob_cursor("StaccatoGraph")
    }

    /// Streaming cursor over decoded full SFAs: `(DataKey, Sfa)`.
    pub fn full_sfa_cursor(&self) -> Result<SfaCursor<'_>, QueryError> {
        Ok(SfaCursor {
            inner: self.full_sfa_blobs()?,
        })
    }

    /// Streaming cursor over decoded Staccato chunk graphs.
    pub fn staccato_cursor(&self) -> Result<SfaCursor<'_>, QueryError> {
        Ok(SfaCursor {
            inner: self.staccato_blobs()?,
        })
    }

    /// Materialized MAP scan.
    #[deprecated(
        since = "0.2.0",
        note = "use `map_cursor` (or `Staccato::execute`) instead"
    )]
    pub fn scan_map(&self) -> Result<Vec<(i64, String, f64)>, QueryError> {
        self.map_cursor()?.collect()
    }

    /// Materialized k-MAP scan.
    #[deprecated(
        since = "0.2.0",
        note = "use `kmap_cursor` (or `Staccato::execute`) instead"
    )]
    pub fn scan_kmap(&self) -> Result<Vec<KmapGroup>, QueryError> {
        self.kmap_cursor()?.collect()
    }

    /// Materialized full-SFA scan.
    #[deprecated(
        since = "0.2.0",
        note = "use `full_sfa_cursor` (or `Staccato::execute`) instead"
    )]
    pub fn scan_full_sfa(&self) -> Result<Vec<(i64, Sfa)>, QueryError> {
        self.full_sfa_cursor()?.collect()
    }

    /// Materialized Staccato graph scan.
    #[deprecated(
        since = "0.2.0",
        note = "use `staccato_cursor` (or `Staccato::execute`) instead"
    )]
    pub fn scan_staccato(&self) -> Result<Vec<(i64, Sfa)>, QueryError> {
        self.staccato_cursor()?.collect()
    }

    /// Point-fetch one Staccato graph through its primary-key B+-tree —
    /// the access path of index-assisted queries.
    pub fn get_staccato_graph(&self, key: i64) -> Result<Sfa, QueryError> {
        let pk = self.db.index("StaccatoGraph_pk")?;
        let rid = pk
            .get(self.db.pool(), &key.to_be_bytes())?
            .ok_or(QueryError::MissingRepresentation("StaccatoGraph row"))?;
        let (schema, heap) = self.db.table("StaccatoGraph")?;
        let bytes = heap.get(self.db.pool(), Rid::from_u64(rid))?;
        let row = staccato_storage::row::decode_row(&schema, &bytes)?;
        let data = BlobStore::get(self.db.pool(), row[1].as_blob().expect("schema"))?;
        Ok(codec::decode(&data)?)
    }

    /// Ground-truth clean lines: `(DataKey, text)`.
    pub fn ground_truth_lines(&self) -> Result<Vec<(i64, String)>, QueryError> {
        let (schema, heap) = self.db.table("GroundTruth")?;
        let mut out = Vec::new();
        for item in heap.scan(self.db.pool()) {
            let (_, bytes) = item?;
            let row = staccato_storage::row::decode_row(&schema, &bytes)?;
            out.push((
                row[0].as_int().expect("schema"),
                row[1].as_text().expect("schema").to_string(),
            ));
        }
        Ok(out)
    }

    /// Direct access to a table + heap (for the experiment harness).
    pub fn table(&self, name: &str) -> Result<(Schema, HeapFile), QueryError> {
        Ok(self.db.table(name)?)
    }

    /// Create (or reopen) a named auxiliary B+-tree, e.g. for indexes.
    pub fn create_index(&self, name: &str) -> Result<BTree, QueryError> {
        Ok(self.db.create_index(name)?)
    }
}

/// Streaming cursor over `MAPData`: yields `(DataKey, string, prob)`.
pub struct MapCursor<'s> {
    schema: Schema,
    scan: HeapScan<'s>,
}

impl Iterator for MapCursor<'_> {
    type Item = Result<(i64, String, f64), QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.scan.next()?;
        Some(item.map_err(QueryError::from).and_then(|(_, bytes)| {
            let row = staccato_storage::row::decode_row(&self.schema, &bytes)?;
            Ok((
                row[0].as_int().expect("schema"),
                row[1].as_text().expect("schema").to_string(),
                row[2].as_float().expect("schema").exp(),
            ))
        }))
    }
}

/// One k-MAP line group: `(DataKey, [(string, prob)])`.
pub type KmapGroup = (i64, Vec<(String, f64)>);

/// Streaming cursor over `kMAPData`, grouping clustered rows by DataKey:
/// yields `(DataKey, [(string, prob)])`. Buffers one line's strings at a
/// time — never the corpus.
pub struct KmapCursor<'s> {
    schema: Schema,
    scan: HeapScan<'s>,
    pending: Option<KmapGroup>,
    done: bool,
}

impl Iterator for KmapCursor<'_> {
    type Item = Result<KmapGroup, QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.scan.next() {
                None => {
                    self.done = true;
                    return self.pending.take().map(Ok);
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some(Ok((_, bytes))) => {
                    let row = match staccato_storage::row::decode_row(&self.schema, &bytes) {
                        Ok(row) => row,
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e.into()));
                        }
                    };
                    let key = row[0].as_int().expect("schema");
                    let s = row[2].as_text().expect("schema").to_string();
                    let p = row[3].as_float().expect("schema").exp();
                    match &mut self.pending {
                        Some((k, v)) if *k == key => v.push((s, p)),
                        Some(_) => {
                            let group = self.pending.replace((key, vec![(s, p)]));
                            return group.map(Ok);
                        }
                        None => self.pending = Some((key, vec![(s, p)])),
                    }
                }
            }
        }
    }
}

/// Leading `DataKey` of an encoded row (all Table 5 schemas start with
/// an `Int` key, stored as the first 8 little-endian bytes).
fn row_key(bytes: &[u8]) -> Result<i64, QueryError> {
    let head = bytes
        .get(..8)
        .ok_or(StorageError::SchemaMismatch("row too short"))?;
    Ok(i64::from_le_bytes(head.try_into().expect("len checked")))
}

fn map_schema_static() -> &'static Schema {
    static S: std::sync::OnceLock<Schema> = std::sync::OnceLock::new();
    S.get_or_init(map_schema)
}

fn kmap_schema_static() -> &'static Schema {
    static S: std::sync::OnceLock<Schema> = std::sync::OnceLock::new();
    S.get_or_init(kmap_schema)
}

/// Decode a raw `MAPData` row borrowed: `(string, prob)`. Performs the
/// full [`RowReader`] validation [`MapCursor`] would, including the
/// trailing-bytes check, and converts the stored log-prob with the same
/// `exp()` so probabilities are bit-identical to the owned cursor's.
pub(crate) fn decode_map_row(bytes: &[u8]) -> Result<(&str, f64), QueryError> {
    let mut r = RowReader::new(map_schema_static(), bytes);
    r.int()?;
    let s = r.text()?;
    let lp = r.float()?;
    r.finish()?;
    Ok((s, lp.exp()))
}

/// Decode a raw `kMAPData` row borrowed: `(string, prob)`.
pub(crate) fn decode_kmap_row(bytes: &[u8]) -> Result<(&str, f64), QueryError> {
    let mut r = RowReader::new(kmap_schema_static(), bytes);
    r.int()?;
    r.int()?;
    let s = r.text()?;
    let lp = r.float()?;
    r.finish()?;
    Ok((s, lp.exp()))
}

/// Streaming cursor over raw `MAPData` row bytes: `(DataKey, row bytes)`.
pub struct MapRawCursor<'s> {
    scan: HeapScan<'s>,
}

impl Iterator for MapRawCursor<'_> {
    type Item = Result<(i64, Vec<u8>), QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.scan.next()?;
        Some(
            item.map_err(QueryError::from)
                .and_then(|(_, bytes)| Ok((row_key(&bytes)?, bytes))),
        )
    }
}

/// One k-MAP line group of raw rows: `(DataKey, [row bytes])`.
pub type KmapRawGroup = (i64, Vec<Vec<u8>>);

/// Streaming cursor over raw `kMAPData` rows, grouping clustered rows by
/// DataKey without decoding their payloads. Buffers one line's rows at a
/// time — never the corpus.
pub struct KmapRawCursor<'s> {
    scan: HeapScan<'s>,
    pending: Option<KmapRawGroup>,
    done: bool,
}

impl Iterator for KmapRawCursor<'_> {
    type Item = Result<KmapRawGroup, QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.scan.next() {
                None => {
                    self.done = true;
                    return self.pending.take().map(Ok);
                }
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some(Ok((_, bytes))) => {
                    let key = match row_key(&bytes) {
                        Ok(key) => key,
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e));
                        }
                    };
                    match &mut self.pending {
                        Some((k, v)) if *k == key => v.push(bytes),
                        Some(_) => {
                            let group = self.pending.replace((key, vec![bytes]));
                            return group.map(Ok);
                        }
                        None => self.pending = Some((key, vec![bytes])),
                    }
                }
            }
        }
    }
}

/// Streaming cursor over a blob table: yields `(DataKey, encoded bytes)`.
pub struct BlobCursor<'s> {
    schema: Schema,
    scan: HeapScan<'s>,
    pool: &'s BufferPool,
}

impl Iterator for BlobCursor<'_> {
    type Item = Result<(i64, Vec<u8>), QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.scan.next()?;
        Some(item.map_err(QueryError::from).and_then(|(_, bytes)| {
            let row = staccato_storage::row::decode_row(&self.schema, &bytes)?;
            let key = row[0].as_int().expect("schema");
            let blob = row[1].as_blob().expect("schema");
            Ok((key, BlobStore::get(self.pool, blob)?))
        }))
    }
}

/// Streaming cursor decoding each blob into an [`Sfa`]: `(DataKey, Sfa)`.
pub struct SfaCursor<'s> {
    inner: BlobCursor<'s>,
}

impl Iterator for SfaCursor<'_> {
    type Item = Result<(i64, Sfa), QueryError>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        Some(item.and_then(|(key, data)| Ok((key, codec::decode(&data)?))))
    }
}

fn master_schema() -> Schema {
    Schema::new(&[
        ("DataKey", ColumnType::Int),
        ("DocName", ColumnType::Text),
        ("SFANum", ColumnType::Int),
    ])
}

fn map_schema() -> Schema {
    Schema::new(&[
        ("DataKey", ColumnType::Int),
        ("Data", ColumnType::Text),
        ("LogProb", ColumnType::Float),
    ])
}

fn kmap_schema() -> Schema {
    Schema::new(&[
        ("DataKey", ColumnType::Int),
        ("LineNum", ColumnType::Int),
        ("Data", ColumnType::Text),
        ("LogProb", ColumnType::Float),
    ])
}

fn stacd_schema() -> Schema {
    Schema::new(&[
        ("DataKey", ColumnType::Int),
        ("ChunkNum", ColumnType::Int),
        ("LineNum", ColumnType::Int),
        ("Data", ColumnType::Text),
        ("LogProb", ColumnType::Float),
    ])
}

fn blob_schema(blob_col: &str) -> Schema {
    Schema::new(&[("DataKey", ColumnType::Int), (blob_col, ColumnType::Blob)])
}

fn truth_schema() -> Schema {
    Schema::new(&[("DataKey", ColumnType::Int), ("Data", ColumnType::Text)])
}

fn history_schema() -> Schema {
    Schema::new(&[
        ("DataKey", ColumnType::Int),
        ("FileName", ColumnType::Text),
        ("Provider", ColumnType::Text),
        ("Confidence", ColumnType::Float),
        ("ProcessingTimeMs", ColumnType::Int),
        ("IngestedAt", ColumnType::Int),
        ("BatchSeq", ColumnType::Int),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use staccato_ocr::{generate, CorpusKind};

    fn tiny_store() -> OcrStore {
        let dataset = generate(CorpusKind::DbPapers, 12, 5);
        let db = Database::in_memory(256).unwrap();
        let opts = LoadOptions {
            channel: ChannelConfig::compact(5),
            kmap_k: 5,
            staccato: StaccatoParams::new(8, 5),
            parallelism: 2,
        };
        OcrStore::load(db, &dataset, &opts).unwrap()
    }

    #[test]
    fn load_populates_all_tables() {
        let store = tiny_store();
        assert_eq!(store.line_count(), 12);
        assert_eq!(store.map_cursor().unwrap().count(), 12);
        let kmap: Vec<_> = store
            .kmap_cursor()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(kmap.len(), 12);
        assert!(kmap.iter().all(|(_, v)| !v.is_empty() && v.len() <= 5));
        assert_eq!(store.full_sfa_cursor().unwrap().count(), 12);
        assert_eq!(store.staccato_cursor().unwrap().count(), 12);
        assert_eq!(store.ground_truth_lines().unwrap().len(), 12);
    }

    #[test]
    fn deprecated_scans_equal_cursors() {
        let store = tiny_store();
        #[allow(deprecated)]
        let via_scan = store.scan_map().unwrap();
        let via_cursor: Vec<_> = store
            .map_cursor()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(via_scan, via_cursor);
    }

    #[test]
    fn raw_cursors_agree_with_owned_cursors() {
        let store = tiny_store();
        let owned: Vec<_> = store
            .map_cursor()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let raw: Vec<_> = store
            .map_raw_cursor()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(owned.len(), raw.len());
        for ((k1, s1, p1), (k2, bytes)) in owned.iter().zip(&raw) {
            assert_eq!(k1, k2);
            let (s2, p2) = decode_map_row(bytes).unwrap();
            assert_eq!(s1, s2);
            assert_eq!(p1.to_bits(), p2.to_bits());
        }

        let owned: Vec<_> = store
            .kmap_cursor()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let raw: Vec<_> = store
            .kmap_raw_cursor()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(owned.len(), raw.len());
        for ((k1, strings), (k2, rows)) in owned.iter().zip(&raw) {
            assert_eq!(k1, k2);
            assert_eq!(strings.len(), rows.len());
            for ((s1, p1), bytes) in strings.iter().zip(rows) {
                let (s2, p2) = decode_kmap_row(bytes).unwrap();
                assert_eq!(s1, s2);
                assert_eq!(p1.to_bits(), p2.to_bits());
            }
        }
    }

    #[test]
    fn kmap_strings_sorted_by_probability() {
        let store = tiny_store();
        for item in store.kmap_cursor().unwrap() {
            let (_, strings) = item.unwrap();
            for w in strings.windows(2) {
                assert!(w[0].1 >= w[1].1 - 1e-12);
            }
        }
    }

    #[test]
    fn staccato_graph_has_at_most_m_chunks() {
        let store = tiny_store();
        for item in store.staccato_cursor().unwrap() {
            let (_, g) = item.unwrap();
            assert!(g.edge_count() <= 8);
            for (_, e) in g.edges() {
                assert!(e.emissions.len() <= 5);
            }
        }
    }

    #[test]
    fn point_lookup_matches_scan() {
        let store = tiny_store();
        let all: Vec<_> = store
            .staccato_cursor()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let (key, via_scan) = &all[7];
        let via_pk = store.get_staccato_graph(*key).unwrap();
        assert_eq!(codec::encode(via_scan), codec::encode(&via_pk));
    }

    #[test]
    fn sizes_are_ordered_as_in_the_paper() {
        // Table 2: SFAs are orders of magnitude bigger than text; Staccato
        // sits in between; MAP ≈ text.
        let store = tiny_store();
        let s = store.sizes();
        assert!(s.full_sfa > s.staccato, "{s:?}");
        assert!(s.staccato > s.map, "{s:?}");
        assert!(s.kmap > s.map, "{s:?}");
        assert!(s.text > 0);
    }

    #[test]
    fn ground_truth_matches_generated_text() {
        let dataset = generate(CorpusKind::DbPapers, 6, 9);
        let db = Database::in_memory(128).unwrap();
        let opts = LoadOptions {
            channel: ChannelConfig::compact(9),
            kmap_k: 2,
            staccato: StaccatoParams::new(4, 2),
            parallelism: 1,
        };
        let store = OcrStore::load(db, &dataset, &opts).unwrap();
        let truth = store.ground_truth_lines().unwrap();
        let lines: Vec<&str> = dataset.lines().map(|(_, _, l)| l).collect();
        for (i, (key, text)) in truth.iter().enumerate() {
            assert_eq!(*key, i as i64);
            assert_eq!(text, lines[i]);
        }
    }
}
