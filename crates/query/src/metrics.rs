//! Ground truth and answer-quality metrics.
//!
//! The paper's evaluation protocol (§5): ground truth is the set of lines
//! whose clean text matches the query; an engine's answers are the top
//! NumAns lines by probability; precision and recall compare the two
//! sets. "We created a manual ground truth for these documents" — ours is
//! the generator's clean text, which plays the same role.

use crate::error::QueryError;
use crate::exec::Answer;
use crate::query::Query;
use crate::store::OcrStore;
use std::collections::BTreeSet;

/// Precision/recall/F1 for one query run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Fraction of returned answers that are correct.
    pub precision: f64,
    /// Fraction of ground-truth lines that were returned.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Correct answers returned.
    pub true_positives: usize,
    /// Total answers returned.
    pub answered: usize,
    /// Ground-truth size.
    pub truth_size: usize,
}

/// The set of DataKeys whose clean text matches the query.
pub fn ground_truth(store: &OcrStore, query: &Query) -> Result<BTreeSet<i64>, QueryError> {
    Ok(store
        .ground_truth_lines()?
        .into_iter()
        .filter(|(_, text)| {
            query
                .dfa
                .is_accept(query.dfa.run_from(query.dfa.start(), text))
        })
        .map(|(key, _)| key)
        .collect())
}

/// Compare ranked answers against ground truth.
pub fn evaluate_answers(answers: &[Answer], truth: &BTreeSet<i64>) -> Metrics {
    let answered = answers.len();
    let true_positives = answers
        .iter()
        .filter(|a| truth.contains(&a.data_key))
        .count();
    let precision = if answered == 0 {
        0.0
    } else {
        true_positives as f64 / answered as f64
    };
    let recall = if truth.is_empty() {
        // With empty truth any answer is wrong; recall is vacuously 1.
        1.0
    } else {
        true_positives as f64 / truth.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Metrics {
        precision,
        recall,
        f1,
        true_positives,
        answered,
        truth_size: truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answers(keys: &[i64]) -> Vec<Answer> {
        keys.iter()
            .map(|&k| Answer {
                data_key: k,
                probability: 0.5,
            })
            .collect()
    }

    #[test]
    fn perfect_answers() {
        let truth: BTreeSet<i64> = [1, 2, 3].into_iter().collect();
        let m = evaluate_answers(&answers(&[1, 2, 3]), &truth);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.true_positives, 3);
    }

    #[test]
    fn partial_overlap() {
        let truth: BTreeSet<i64> = [1, 2, 3, 4].into_iter().collect();
        let m = evaluate_answers(&answers(&[1, 2, 9, 10]), &truth);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert!((m.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_answers_zero_precision_and_recall() {
        let truth: BTreeSet<i64> = [1].into_iter().collect();
        let m = evaluate_answers(&answers(&[]), &truth);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn empty_truth_is_vacuous_recall() {
        let truth: BTreeSet<i64> = BTreeSet::new();
        let m = evaluate_answers(&answers(&[5]), &truth);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 0.0);
    }

    #[test]
    fn f1_between_unbalanced_precision_recall() {
        // 1 of 10 answers correct, truth size 1 → P=0.1, R=1.0.
        let truth: BTreeSet<i64> = [0].into_iter().collect();
        let keys: Vec<i64> = (0..10).collect();
        let m = evaluate_answers(&answers(&keys), &truth);
        assert!((m.precision - 0.1).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
        assert!((m.f1 - 2.0 * 0.1 / 1.1).abs() < 1e-12);
    }
}
