//! # staccato-query
//!
//! Query processing over probabilistic OCR data stored in the RDBMS: the
//! layer that makes `SELECT … WHERE DocData LIKE '%Ford%'` work when
//! `DocData` is a distribution over strings.
//!
//! ## The session API
//!
//! All querying goes through a [`Staccato`] session. A session wraps a
//! loaded [`OcrStore`], owns any registered §4 inverted indexes, and
//! executes queries from either surface — a SQL string ([`sql`]) or the
//! declarative [`QueryRequest`] builder. Both lower to the same planner:
//! each request compiles into an explicit [`Plan`] — a (possibly
//! parallel) streaming `FileScan`, an `IndexProbe` chosen automatically
//! when the pattern is left-anchored and a registered index covers the
//! anchor, or an `Aggregate` folding either access path into a streaming
//! `COUNT(*)`/`SUM(Prob)`/`AVG(Prob)` — and every result carries the
//! chosen plan and its [`ExecStats`]:
//!
//! ```ignore
//! let session = Staccato::load(db, &dataset, &LoadOptions::default())?;
//! session.register_index(&trie, "inv")?;
//! let out = session.sql(
//!     "SELECT DataKey, Prob FROM StaccatoData \
//!      WHERE Data LIKE '%Ford%' AND Prob >= 0.25 LIMIT 100",
//! )?;
//! let prepared = session.prepare("SELECT COUNT(*) FROM MAPData WHERE Data LIKE ?")?;
//! let count = session.execute_prepared(&prepared, &[SqlValue::text("%Ford%")])?;
//! println!("{}", session.sql("EXPLAIN SELECT DataKey FROM StaccatoData \
//!      WHERE Data LIKE '%Ford%'")?.explain.unwrap());
//! ```
//!
//! Execution is streaming end to end: executors pull rows one line at a
//! time from the store's cursors and rank through a bounded top-k heap,
//! so query memory is `O(NumAns + one line)` regardless of corpus size.
//!
//! ## Modules
//!
//! * [`session`] — the [`Staccato`] session object and [`QueryOutput`];
//! * [`plan`] — [`QueryRequest`], the [`Plan`] enum, the planner, and
//!   [`ExecStats`];
//! * [`query`] — the compiled [`query::Query`]: a `LIKE` pattern or
//!   regex compiled to a containment DFA, with its left anchor and length
//!   bounds for index use;
//! * [`eval`] — probability computation: `Pr[q]` over an SFA via the
//!   forward dynamic program of \[Kimelfeld & Ré / Ré et al.\], and over
//!   string sets for MAP/k-MAP (each string is a disjoint event, §3);
//! * [`store`] — the Table 5 schema and its streaming row cursors:
//!   loading a corpus through the OCR channel into MasterData / kMAPData /
//!   FullSFAData / StaccatoData / StaccatoGraph / GroundTruth tables;
//! * [`exec`] — streaming filescan executors for the four access methods
//!   and the bounded [`exec::TopK`] answer ranking;
//! * [`metrics`] — ground truth and precision/recall/F1 (the paper's
//!   quality measures);
//! * [`sql`] — the textual SQL front-end: lexer → recursive-descent
//!   parser → AST → lowering into a [`QueryRequest`], plus prepared
//!   statements with `?` parameter binding;
//! * [`agg`] — probabilistic aggregation (`E[COUNT]`, `E[SUM]`, the
//!   Poisson–binomial count distribution) over answer relations, and the
//!   streaming accumulator behind SQL aggregate plans;
//! * [`invindex`] — §4's dictionary-based inverted index: construction
//!   (Algorithms 3–4), the direct-indexing blow-up counter (Figure 5),
//!   probing with left anchors, and BFS projection;
//! * [`ingest`] — the WAL-backed write path's types: [`IngestBatch`],
//!   [`IngestReceipt`], the durable `StaccatoHistory` row, and the
//!   batch codec replayed by [`Staccato::recover`].
//!
//! The pre-session free functions (`filescan_query`,
//! `filescan_query_parallel`, `indexed_query`) and the materializing
//! `OcrStore::scan_*` methods remain as deprecated shims for one release.

pub mod agg;
pub mod cache;
pub mod error;
pub mod eval;
pub mod exec;
pub mod ingest;
pub mod invindex;
pub mod kernel;
pub mod metrics;
pub mod plan;
pub mod query;
pub mod session;
pub mod sql;
pub mod store;

pub use agg::{
    count_distribution, expected_count, expected_sum, threshold_probability, AggregateFunc,
    AggregateResult, StreamingAggregate,
};
pub use cache::QueryCacheStats;
pub use error::QueryError;
pub use eval::{eval_sfa, eval_strings};
pub use exec::{Answer, Approach, TopK};
pub use ingest::{DocumentInput, HistoryRow, IngestBatch, IngestReceipt, IngestStats};
pub use invindex::{build_index, direct_posting_count_log10, InvertedIndex};
pub use kernel::{EvalOutcome, ScanKernel, ScanScratch};
pub use metrics::{evaluate_answers, ground_truth, Metrics};
pub use plan::{Dialect, ExecStats, Plan, PlanPreference, QueryRequest, WalCounters};
pub use query::Query;
pub use session::{CheckpointPolicy, QueryOutput, RecoverOptions, Staccato};
pub use sql::{PreparedQuery, SqlError, SqlTable, SqlValue};
pub use store::{LoadOptions, OcrStore, RepresentationSizes};

#[allow(deprecated)]
pub use exec::{filescan_query, filescan_query_parallel};
#[allow(deprecated)]
pub use invindex::indexed_query;
