//! # staccato-query
//!
//! Query processing over probabilistic OCR data stored in the RDBMS: the
//! layer that makes `SELECT … WHERE DocData LIKE '%Ford%'` work when
//! `DocData` is a distribution over strings.
//!
//! * [`query`] — the user-facing [`query::Query`]: a `LIKE` pattern or
//!   regex compiled to a containment DFA, with its left anchor and length
//!   bounds for index use;
//! * [`eval`] — probability computation: `Pr[q]` over an SFA via the
//!   forward dynamic program of [Kimelfeld & Ré / Ré et al.], and over
//!   string sets for MAP/k-MAP (each string is a disjoint event, §3);
//! * [`store`] — the Table 5 schema: loading a corpus through the OCR
//!   channel into MasterData / kMAPData / FullSFAData / StaccatoData /
//!   StaccatoGraph / GroundTruth tables;
//! * [`exec`] — filescan executors for the four access methods and
//!   top-NumAns answer ranking;
//! * [`metrics`] — ground truth and precision/recall/F1 (the paper's
//!   quality measures);
//! * [`invindex`] — §4's dictionary-based inverted index: construction
//!   (Algorithms 3–4), the direct-indexing blow-up counter (Figure 5),
//!   probing with left anchors, and BFS projection.

pub mod agg;
pub mod error;
pub mod eval;
pub mod exec;
pub mod invindex;
pub mod metrics;
pub mod query;
pub mod store;

pub use agg::{count_distribution, expected_count, expected_sum, threshold_probability};
pub use error::QueryError;
pub use eval::{eval_sfa, eval_strings};
pub use exec::{filescan_query, filescan_query_parallel, Answer, Approach};
pub use invindex::{build_index, direct_posting_count_log10, indexed_query, InvertedIndex};
pub use metrics::{evaluate_answers, ground_truth, Metrics};
pub use query::Query;
pub use store::{LoadOptions, OcrStore, RepresentationSizes};
