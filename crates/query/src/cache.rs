//! The compiled-query cache: repeated traffic skips lex/parse/DFA
//! compilation *and* re-planning.
//!
//! Compiling a pattern (regex/`LIKE` → AST → NFA → containment DFA) and
//! choosing its access path (which probes index dictionaries through the
//! buffer pool) together dominate the cost of small repeated queries —
//! exactly the shape of concurrent retrieval traffic. The session keys a
//! bounded LRU on the parts of a [`QueryRequest`] that determine the
//! compiled [`Query`] and the [`Plan`] (pattern, dialect, approach,
//! parallelism, plan preference, aggregate — *not*
//! `num_ans`/`offset`/`min_prob`, which only parameterize execution),
//! and stores the compiled query
//! behind an `Arc` so concurrent executions share one DFA.
//!
//! # Sharding and the lock-free lookup path
//!
//! The table is split into up to [`MAX_CACHE_SHARDS`] segments by key
//! hash; caches smaller than 64 entries stay unsharded so tiny caches
//! keep exact global LRU order. Each shard publishes its map as an RCU
//! snapshot ([`RcuCell`]): `get` — the per-statement hot path — is a
//! gate-protected hash lookup with **no lock** (stale-epoch entries are
//! an exception: pruning one takes the shard lock once, then the key
//! misses lock-free until re-inserted). The per-shard mutex is held
//! only by `insert` (clone-map-update-publish, with per-shard LRU
//! eviction). Hit/miss/eviction counters are relaxed atomics, so
//! `EXPLAIN ANALYZE` cache attribution never serializes statements.
//!
//! # Invalidation
//!
//! Registering an index can legally flip any anchored Staccato plan from
//! `FileScan` to `IndexProbe`, so `invalidate` bumps a global epoch and
//! entries from older epochs are dropped lazily on their next lookup.
//! Correctness rests on the *get-time* check — an entry is returned only
//! if `entry.epoch == current_epoch`, where `entry.epoch` was fixed when
//! the plan was computed — so a plan computed against an old index set
//! can never be served after the registration's epoch bump is visible.
//! The insert-time check (`planned_at == current_epoch`) remains as an
//! optimization that keeps already-stale entries from occupying a slot.
//! The cache never stores errors — failing patterns recompile (and
//! re-fail) each time.

use crate::agg::AggregateFunc;
use crate::exec::Approach;
use crate::plan::{Dialect, Plan, PlanPreference, QueryRequest};
use crate::query::Query;
use parking_lot::Mutex;
use staccato_storage::RcuCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of cached compiled queries per session.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 256;

/// Upper bound on cache segments.
pub const MAX_CACHE_SHARDS: usize = 8;

/// The request fields that determine the compiled query and its plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pattern: String,
    dialect: Dialect,
    approach: Approach,
    parallelism: usize,
    preference: PlanPreference,
    aggregate: Option<AggregateFunc>,
}

impl CacheKey {
    pub(crate) fn of(request: &QueryRequest) -> CacheKey {
        CacheKey {
            pattern: request.pattern.clone(),
            dialect: request.dialect,
            approach: request.approach,
            parallelism: request.parallelism,
            preference: request.preference,
            aggregate: request.aggregate,
        }
    }
}

struct Entry {
    query: Arc<Query>,
    plan: Plan,
    /// The invalidation epoch this entry was planned under — fixed at
    /// plan time, compared against the live epoch on every `get`.
    epoch: u64,
    /// LRU recency, updated by hitters without the shard lock.
    last_used: AtomicU64,
}

type EntryMap = HashMap<CacheKey, Arc<Entry>>;

/// Cache effectiveness counters (monotonic over the session's lifetime).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile and plan.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Epoch bumps (index registrations).
    pub invalidations: u64,
    /// Entries currently held.
    pub len: usize,
    /// Maximum entries held.
    pub capacity: usize,
}

/// One cache segment: an RCU-published read snapshot plus the writer
/// lock and the relaxed counters hitters bump outside any lock.
struct CacheShard {
    map: RcuCell<EntryMap>,
    write: Mutex<()>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheShard {
    fn with_capacity(capacity: usize) -> CacheShard {
        CacheShard {
            map: RcuCell::new(Arc::new(EntryMap::new())),
            write: Mutex::new(()),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

/// A bounded, epoch-invalidated, sharded LRU of compiled queries +
/// chosen plans. Internally synchronized; all methods take `&self`.
pub(crate) struct QueryCache {
    shards: Vec<CacheShard>,
    /// log2 of `shards.len()`, for the key-hash → shard mapping.
    shard_bits: u32,
    /// Global invalidation epoch, bumped by `invalidate`.
    epoch: AtomicU64,
    invalidations: AtomicU64,
    capacity: usize,
}

/// Shard count for a cache of `capacity` entries: largest power of two
/// `<= MAX_CACHE_SHARDS` leaving every shard at least 32 entries. Small
/// caches collapse to one shard and keep exact global LRU semantics.
fn cache_shard_count(capacity: usize) -> usize {
    let limit = (capacity / 32).clamp(1, MAX_CACHE_SHARDS);
    1 << (usize::BITS - 1 - limit.leading_zeros())
}

impl QueryCache {
    pub(crate) fn with_capacity(capacity: usize) -> QueryCache {
        let capacity = capacity.max(1);
        let n = cache_shard_count(capacity);
        let base = capacity / n;
        let extra = capacity % n;
        let shards = (0..n)
            .map(|i| CacheShard::with_capacity(base + usize::from(i < extra)))
            .collect();
        QueryCache {
            shards,
            shard_bits: n.trailing_zeros(),
            epoch: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            capacity,
        }
    }

    fn shard_of(&self, key: &CacheKey) -> &CacheShard {
        if self.shard_bits == 0 {
            return &self.shards[0];
        }
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() >> (64 - self.shard_bits)) as usize;
        &self.shards[idx]
    }

    /// The cached `(compiled query, plan)` for `key`, if present and from
    /// the current epoch. Lock-free on hit and on clean miss; a
    /// stale-epoch entry takes the shard lock once to prune itself.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<(Arc<Query>, Plan)> {
        let shard = self.shard_of(key);
        // Epoch first (Acquire): pairs with invalidate's Release bump.
        // If a registration's bump is visible, entries planned before it
        // compare unequal below and are rejected.
        let epoch = self.epoch.load(Ordering::Acquire);
        let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
        enum Found {
            Hit(Arc<Query>, Plan),
            Stale,
            Absent,
        }
        let found = shard.map.with(|map| match map.get(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used.store(tick, Ordering::Relaxed);
                Found::Hit(entry.query.clone(), entry.plan.clone())
            }
            Some(_) => Found::Stale,
            None => Found::Absent,
        });
        match found {
            Found::Hit(query, plan) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some((query, plan))
            }
            Found::Stale => {
                // The index set changed since this was planned; drop it
                // under the shard lock so `len` reflects reality.
                let _w = shard.write.lock();
                let current = shard.map.load();
                if let Some(entry) = current.get(key) {
                    if entry.epoch != self.epoch.load(Ordering::Acquire) {
                        let mut next: EntryMap = (*current).clone();
                        next.remove(key);
                        shard.map.store(Arc::new(next));
                    }
                }
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Found::Absent => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The current invalidation epoch. Sample it *before* compiling and
    /// planning, and hand it back to [`QueryCache::insert`]: if an index
    /// registration bumped the epoch in between, the insert is dropped —
    /// otherwise a plan computed against the old index set could occupy
    /// a slot (it could still never be *served*: `get` re-checks the
    /// entry's epoch against the live one).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Insert a freshly compiled and planned entry (evicting the shard's
    /// least recently used one if full), unless the epoch moved since
    /// `planned_at` was sampled.
    pub(crate) fn insert(&self, key: CacheKey, query: Arc<Query>, plan: Plan, planned_at: u64) {
        let shard = self.shard_of(&key);
        let _w = shard.write.lock();
        if self.epoch.load(Ordering::Acquire) != planned_at {
            return;
        }
        let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let current = shard.map.load();
        let mut next: EntryMap = (*current).clone();
        if !next.contains_key(&key) && next.len() >= shard.capacity {
            // Evict the shard's LRU entry (stale-epoch entries sort
            // naturally toward the front since they stopped being
            // touched).
            if let Some(victim) = next
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                next.remove(&victim);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        next.insert(
            key,
            Arc::new(Entry {
                query,
                plan,
                epoch: planned_at,
                last_used: AtomicU64::new(tick),
            }),
        );
        shard.map.store(Arc::new(next));
    }

    /// Invalidate every cached plan (the index set changed). Entries are
    /// dropped lazily on their next lookup. The Release bump pairs with
    /// `get`'s Acquire load: a getter that observes the new epoch
    /// rejects every entry planned before it.
    pub(crate) fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> QueryCacheStats {
        let mut s = QueryCacheStats {
            capacity: self.capacity,
            invalidations: self.invalidations.load(Ordering::Relaxed),
            ..QueryCacheStats::default()
        };
        for shard in &self.shards {
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.evictions += shard.evictions.load(Ordering::Relaxed);
            s.len += shard.map.with(|m| m.len());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pattern: &str) -> CacheKey {
        CacheKey::of(&QueryRequest::keyword(pattern))
    }

    fn entry(pattern: &str) -> (Arc<Query>, Plan) {
        (
            Arc::new(Query::keyword(pattern).unwrap()),
            Plan::FileScan {
                approach: Approach::Staccato,
                parallelism: 1,
            },
        )
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = QueryCache::with_capacity(4);
        assert!(cache.get(&key("president")).is_none());
        let (q, p) = entry("president");
        cache.insert(key("president"), q, p.clone(), cache.epoch());
        let (hit_q, hit_p) = cache.get(&key("president")).expect("cached");
        assert_eq!(hit_p, p);
        assert_eq!(hit_q.pattern, "president");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn key_ignores_num_ans_and_min_prob_but_not_plan_inputs() {
        let base = QueryRequest::keyword("ford");
        assert_eq!(
            CacheKey::of(&base.clone().num_ans(7).min_prob(0.5)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.clone().approach(Approach::Map)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.clone().parallelism(4)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.clone().aggregate(AggregateFunc::CountStar)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.plan_preference(PlanPreference::ForceFileScan)),
            CacheKey::of(&QueryRequest::keyword("ford"))
        );
    }

    #[test]
    fn invalidation_drops_entries_lazily() {
        let cache = QueryCache::with_capacity(4);
        let (q, p) = entry("president");
        cache.insert(key("president"), q, p, cache.epoch());
        cache.invalidate();
        assert!(cache.get(&key("president")).is_none(), "stale epoch");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().len, 0, "stale entry dropped on lookup");
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = QueryCache::with_capacity(2);
        for pat in ["a", "b"] {
            let (q, p) = entry(pat);
            cache.insert(key(pat), q, p, cache.epoch());
        }
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get(&key("a")).is_some());
        let (q, p) = entry("c");
        cache.insert(key("c"), q, p, cache.epoch());
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("b")).is_none(), "evicted");
        assert!(cache.get(&key("c")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn insert_dropped_when_epoch_moved_but_get_still_guards() {
        let cache = QueryCache::with_capacity(4);
        let planned_at = cache.epoch();
        cache.invalidate();
        let (q, p) = entry("stale");
        cache.insert(key("stale"), q, p, planned_at);
        assert_eq!(cache.stats().len, 0, "stale insert dropped");
        assert!(cache.get(&key("stale")).is_none());
    }

    #[test]
    fn small_caches_collapse_to_one_shard_large_ones_split() {
        assert_eq!(QueryCache::with_capacity(2).shards.len(), 1);
        assert_eq!(QueryCache::with_capacity(63).shards.len(), 1);
        assert_eq!(QueryCache::with_capacity(64).shards.len(), 2);
        assert_eq!(QueryCache::with_capacity(256).shards.len(), 8);
        assert_eq!(QueryCache::with_capacity(4096).shards.len(), 8);
        // Shard capacities always sum to the requested capacity.
        let c = QueryCache::with_capacity(257);
        assert_eq!(c.shards.iter().map(|s| s.capacity).sum::<usize>(), 257);
    }

    #[test]
    fn concurrent_gets_and_inserts_keep_counts_exact() {
        let cache = std::sync::Arc::new(QueryCache::with_capacity(256));
        let patterns: Vec<String> = (0..32).map(|i| format!("pat{i}")).collect();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let cache = std::sync::Arc::clone(&cache);
                let patterns = patterns.clone();
                scope.spawn(move || {
                    for round in 0..64usize {
                        let pat = &patterns[(t * 7 + round) % patterns.len()];
                        if cache.get(&key(pat)).is_none() {
                            let (q, p) = entry(pat);
                            cache.insert(key(pat), q, p, cache.epoch());
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8 * 64, "every get counted once");
        assert!(s.len <= 32);
        // Everything is cached now: 32 more gets, all hits.
        let before = cache.stats().hits;
        for pat in &patterns {
            assert!(cache.get(&key(pat)).is_some());
        }
        assert_eq!(cache.stats().hits, before + 32);
    }
}
