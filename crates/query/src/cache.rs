//! The compiled-query cache: repeated traffic skips lex/parse/DFA
//! compilation *and* re-planning.
//!
//! Compiling a pattern (regex/`LIKE` → AST → NFA → containment DFA) and
//! choosing its access path (which probes index dictionaries through the
//! buffer pool) together dominate the cost of small repeated queries —
//! exactly the shape of concurrent retrieval traffic. The session keys a
//! bounded LRU on the parts of a [`QueryRequest`] that determine the
//! compiled [`Query`] and the [`Plan`] (pattern, dialect, approach,
//! parallelism, plan preference, aggregate — *not*
//! `num_ans`/`offset`/`min_prob`, which only parameterize execution),
//! and stores the compiled query
//! behind an `Arc` so concurrent executions share one DFA.
//!
//! Invalidation: registering an index can legally flip any anchored
//! Staccato plan from `FileScan` to `IndexProbe`, so `invalidate` bumps
//! an epoch and entries from older epochs are dropped lazily on their
//! next lookup. The cache never stores errors — failing patterns
//! recompile (and re-fail) each time.

use crate::agg::AggregateFunc;
use crate::exec::Approach;
use crate::plan::{Dialect, Plan, PlanPreference, QueryRequest};
use crate::query::Query;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of cached compiled queries per session.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 256;

/// The request fields that determine the compiled query and its plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pattern: String,
    dialect: Dialect,
    approach: Approach,
    parallelism: usize,
    preference: PlanPreference,
    aggregate: Option<AggregateFunc>,
}

impl CacheKey {
    pub(crate) fn of(request: &QueryRequest) -> CacheKey {
        CacheKey {
            pattern: request.pattern.clone(),
            dialect: request.dialect,
            approach: request.approach,
            parallelism: request.parallelism,
            preference: request.preference,
            aggregate: request.aggregate,
        }
    }
}

struct Entry {
    query: Arc<Query>,
    plan: Plan,
    epoch: u64,
    last_used: u64,
}

/// Cache effectiveness counters (monotonic over the session's lifetime).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile and plan.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Epoch bumps (index registrations).
    pub invalidations: u64,
    /// Entries currently held.
    pub len: usize,
    /// Maximum entries held.
    pub capacity: usize,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    epoch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// A bounded, epoch-invalidated LRU of compiled queries + chosen plans.
/// Internally synchronized; all methods take `&self`.
pub(crate) struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl QueryCache {
    pub(crate) fn with_capacity(capacity: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                epoch: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                invalidations: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// The cached `(compiled query, plan)` for `key`, if present and from
    /// the current epoch.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<(Arc<Query>, Plan)> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let (tick, epoch) = (inner.tick, inner.epoch);
        match inner.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = tick;
                let out = (entry.query.clone(), entry.plan.clone());
                inner.hits += 1;
                Some(out)
            }
            Some(_) => {
                // Stale epoch: the index set changed since this was
                // planned; drop it and replan.
                inner.map.remove(key);
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// The current invalidation epoch. Sample it *before* compiling and
    /// planning, and hand it back to [`QueryCache::insert`]: if an index
    /// registration bumped the epoch in between, the insert is dropped —
    /// otherwise a plan computed against the old index set could be
    /// cached as if it were current.
    pub(crate) fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Insert a freshly compiled and planned entry (evicting the least
    /// recently used one if the cache is full), unless the epoch moved
    /// since `planned_at` was sampled.
    pub(crate) fn insert(&self, key: CacheKey, query: Arc<Query>, plan: Plan, planned_at: u64) {
        let mut inner = self.inner.lock();
        if inner.epoch != planned_at {
            return;
        }
        inner.tick += 1;
        let (tick, epoch) = (inner.tick, inner.epoch);
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the LRU entry (stale-epoch entries sort naturally
            // toward the front since they stopped being touched).
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                query,
                plan,
                epoch,
                last_used: tick,
            },
        );
    }

    /// Invalidate every cached plan (the index set changed). Entries are
    /// dropped lazily on their next lookup.
    pub(crate) fn invalidate(&self) {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.invalidations += 1;
    }

    pub(crate) fn stats(&self) -> QueryCacheStats {
        let inner = self.inner.lock();
        QueryCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            len: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(pattern: &str) -> CacheKey {
        CacheKey::of(&QueryRequest::keyword(pattern))
    }

    fn entry(pattern: &str) -> (Arc<Query>, Plan) {
        (
            Arc::new(Query::keyword(pattern).unwrap()),
            Plan::FileScan {
                approach: Approach::Staccato,
                parallelism: 1,
            },
        )
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = QueryCache::with_capacity(4);
        assert!(cache.get(&key("president")).is_none());
        let (q, p) = entry("president");
        cache.insert(key("president"), q, p.clone(), cache.epoch());
        let (hit_q, hit_p) = cache.get(&key("president")).expect("cached");
        assert_eq!(hit_p, p);
        assert_eq!(hit_q.pattern, "president");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn key_ignores_num_ans_and_min_prob_but_not_plan_inputs() {
        let base = QueryRequest::keyword("ford");
        assert_eq!(
            CacheKey::of(&base.clone().num_ans(7).min_prob(0.5)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.clone().approach(Approach::Map)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.clone().parallelism(4)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.clone().aggregate(AggregateFunc::CountStar)),
            CacheKey::of(&base)
        );
        assert_ne!(
            CacheKey::of(&base.plan_preference(PlanPreference::ForceFileScan)),
            CacheKey::of(&QueryRequest::keyword("ford"))
        );
    }

    #[test]
    fn invalidation_drops_entries_lazily() {
        let cache = QueryCache::with_capacity(4);
        let (q, p) = entry("president");
        cache.insert(key("president"), q, p, cache.epoch());
        cache.invalidate();
        assert!(cache.get(&key("president")).is_none(), "stale epoch");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().len, 0, "stale entry dropped on lookup");
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = QueryCache::with_capacity(2);
        for pat in ["a", "b"] {
            let (q, p) = entry(pat);
            cache.insert(key(pat), q, p, cache.epoch());
        }
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get(&key("a")).is_some());
        let (q, p) = entry("c");
        cache.insert(key("c"), q, p, cache.epoch());
        assert!(cache.get(&key("a")).is_some());
        assert!(cache.get(&key("b")).is_none(), "evicted");
        assert!(cache.get(&key("c")).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }
}
