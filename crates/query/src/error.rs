//! Query-layer error type.

use crate::sql::SqlError;
use staccato_automata::PatternError;
use staccato_sfa::SfaError;
use staccato_storage::StorageError;
use std::fmt;

/// Errors from query compilation and execution.
#[derive(Debug)]
pub enum QueryError {
    /// Pattern failed to parse.
    Pattern(PatternError),
    /// Storage layer failure.
    Storage(StorageError),
    /// A stored SFA blob failed to decode.
    Sfa(SfaError),
    /// The store is missing an expected table (not loaded, or wrong file).
    MissingRepresentation(&'static str),
    /// The query has no usable left anchor for index-assisted execution.
    NotAnchored(String),
    /// The requested term is not in the index dictionary.
    TermNotInDictionary(String),
    /// An index probe was forced but no registered index can serve it.
    NoUsableIndex(String),
    /// A SQL statement failed to lex, parse, lower, or bind.
    Sql(SqlError),
    /// `register_index` was called with a name that is already registered.
    DuplicateIndex(String),
    /// A WAL batch payload failed to decode during replay, or the log
    /// disagrees with the store about what was committed.
    CorruptWal(&'static str),
    /// An ingest batch was rejected before logging (empty, or malformed
    /// document input).
    Ingest(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Pattern(e) => write!(f, "bad pattern: {e}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::Sfa(e) => write!(f, "corrupt SFA blob: {e}"),
            QueryError::MissingRepresentation(r) => {
                write!(f, "store has no {r} representation loaded")
            }
            QueryError::NotAnchored(p) => {
                write!(f, "pattern {p:?} has no left anchor; use a filescan")
            }
            QueryError::TermNotInDictionary(t) => {
                write!(f, "anchor term {t:?} is not in the index dictionary")
            }
            QueryError::NoUsableIndex(why) => {
                write!(f, "index probe is not executable: {why}")
            }
            QueryError::Sql(e) => write!(f, "SQL error: {e}"),
            QueryError::DuplicateIndex(name) => {
                write!(f, "an index named {name:?} is already registered")
            }
            QueryError::CorruptWal(why) => write!(f, "corrupt write-ahead log: {why}"),
            QueryError::Ingest(why) => write!(f, "ingest rejected: {why}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Pattern(e) => Some(e),
            QueryError::Storage(e) => Some(e),
            QueryError::Sfa(e) => Some(e),
            QueryError::Sql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PatternError> for QueryError {
    fn from(e: PatternError) -> Self {
        QueryError::Pattern(e)
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

impl From<SfaError> for QueryError {
    fn from(e: SfaError) -> Self {
        QueryError::Sfa(e)
    }
}

impl From<SqlError> for QueryError {
    fn from(e: SqlError) -> Self {
        QueryError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QueryError = PatternError {
            position: 0,
            message: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("bad pattern"));
        let e: QueryError = StorageError::PoolExhausted.into();
        assert!(e.to_string().contains("storage"));
        let e: QueryError = SfaError::BadMagic.into();
        assert!(e.to_string().contains("SFA"));
        assert!(QueryError::NotAnchored("(a|b)".into())
            .to_string()
            .contains("anchor"));
    }
}
