//! The query planner: [`QueryRequest`] in, [`Plan`] out.
//!
//! The paper's interface is SQL — the user writes one `LIKE`/regex
//! predicate (Figure 1C) and the system decides how to run it; §4/§5.3
//! stress that index-assisted execution is *transparent*. This module is
//! that decision point for the reproduction: a request names the pattern,
//! representation, and answer budget, and [`plan_request`] compiles it
//! into an explicit access path —
//!
//! * [`Plan::FileScan`] — stream every line of the representation through
//!   the containment DFA (optionally on several worker threads, §5.4);
//! * [`Plan::IndexProbe`] — look the pattern's left anchor up in a
//!   registered §4 inverted index, point-fetch the candidate lines, and
//!   evaluate only their projections.
//!
//! The probe is chosen automatically when the representation is Staccato,
//! the pattern is left-anchored (§2.1), and a registered index covers the
//! anchor term; otherwise the planner falls back to a filescan. Forcing
//! either path is supported for plan-quality experiments and tests.

use crate::error::QueryError;
use crate::exec::Approach;
use crate::query::Query;
use crate::session::Staccato;
use std::time::Duration;

/// Which pattern dialect a request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// SQL `LIKE` (`%Ford%`): the pattern constrains the whole string.
    Like,
    /// The paper's regex dialect, containment semantics.
    Regex,
}

/// Planner override.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlanPreference {
    /// Let the planner choose (index probe when legal, else filescan).
    #[default]
    Auto,
    /// Always filescan, even when an index could serve the query.
    ForceFileScan,
    /// Require the index probe; planning errors if it is not legal.
    ForceIndexProbe,
}

/// A declarative query: what to match, over which representation, with
/// what answer budget. Built fluently, executed by
/// [`Staccato::execute`](crate::session::Staccato::execute):
///
/// ```ignore
/// let out = session.execute(
///     &QueryRequest::like("%Ford%").approach(Approach::Staccato).num_ans(100).parallelism(8),
/// )?;
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The pattern text.
    pub pattern: String,
    /// The pattern dialect.
    pub dialect: Dialect,
    /// The representation this request targets.
    pub approach: Approach,
    /// The answer budget.
    pub num_ans: usize,
    /// The requested filescan parallelism.
    pub parallelism: usize,
    /// The planner override.
    pub preference: PlanPreference,
}

impl QueryRequest {
    fn new(pattern: &str, dialect: Dialect) -> QueryRequest {
        QueryRequest {
            pattern: pattern.to_string(),
            dialect,
            approach: Approach::Staccato,
            // The paper's NumAns default: 100, "greater than the number of
            // answers in the ground truth".
            num_ans: 100,
            parallelism: 1,
            preference: PlanPreference::Auto,
        }
    }

    /// A SQL `LIKE` predicate (`%Ford%`).
    pub fn like(pattern: &str) -> QueryRequest {
        QueryRequest::new(pattern, Dialect::Like)
    }

    /// A regex in the paper's dialect, containment semantics.
    pub fn regex(pattern: &str) -> QueryRequest {
        QueryRequest::new(pattern, Dialect::Regex)
    }

    /// A keyword containment query (a regex with no metacharacters).
    pub fn keyword(word: &str) -> QueryRequest {
        QueryRequest::new(word, Dialect::Regex)
    }

    /// Choose the representation to query (default: Staccato).
    pub fn approach(mut self, approach: Approach) -> QueryRequest {
        self.approach = approach;
        self
    }

    /// Cap the ranked answer relation at `num_ans` rows (default: 100).
    pub fn num_ans(mut self, num_ans: usize) -> QueryRequest {
        self.num_ans = num_ans;
        self
    }

    /// Evaluate filescan lines on up to `threads` workers (default: 1).
    pub fn parallelism(mut self, threads: usize) -> QueryRequest {
        self.parallelism = threads.max(1);
        self
    }

    /// Override the planner's plan choice (default: automatic).
    pub fn plan_preference(mut self, preference: PlanPreference) -> QueryRequest {
        self.preference = preference;
        self
    }

    /// Compile the pattern to a [`Query`] (containment DFA + anchor).
    pub fn compile(&self) -> Result<Query, QueryError> {
        match self.dialect {
            Dialect::Like => Query::like(&self.pattern),
            Dialect::Regex => Query::regex(&self.pattern),
        }
    }
}

/// An explicit, executable access path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Stream the whole representation through the query DFA.
    FileScan {
        /// Representation scanned.
        approach: Approach,
        /// Worker threads evaluating lines (1 = sequential).
        parallelism: usize,
    },
    /// Probe a registered inverted index with the pattern's left anchor,
    /// point-fetch candidates, evaluate projections (§4).
    IndexProbe {
        /// Name of the registered index.
        index: String,
        /// The anchor term looked up.
        anchor: String,
    },
}

impl Plan {
    /// Short plan-kind label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Plan::FileScan { .. } => "FileScan",
            Plan::IndexProbe { .. } => "IndexProbe",
        }
    }

    /// Is this an index probe?
    pub fn is_index_probe(&self) -> bool {
        matches!(self, Plan::IndexProbe { .. })
    }
}

/// Execution counters attached to every result — the reproduction's
/// `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Physical table rows read (heap rows for scans, point fetches for
    /// probes).
    pub rows_scanned: u64,
    /// Lines whose match probability was computed.
    pub lines_evaluated: u64,
    /// Index postings retrieved (0 for filescans).
    pub postings_probed: u64,
    /// Wall-clock execution time.
    pub wall: Duration,
}

/// Compile `request` into the access path [`Staccato::execute`] will run.
///
/// Auto planning picks [`Plan::IndexProbe`] exactly when the request
/// targets the Staccato representation, the compiled pattern has a left
/// anchor, and some registered index's dictionary contains that anchor;
/// anything else filescans. Forced probes surface the precise reason they
/// are illegal instead of silently degrading.
pub fn plan_request(
    session: &Staccato,
    request: &QueryRequest,
    query: &Query,
) -> Result<Plan, QueryError> {
    let filescan = Plan::FileScan {
        approach: request.approach,
        // String representations are cheap to evaluate; the scan
        // dominates, so the executor runs them sequentially (§5.4) and
        // the reported plan must say so.
        parallelism: match request.approach {
            Approach::Map | Approach::KMap => 1,
            Approach::FullSfa | Approach::Staccato => request.parallelism,
        },
    };
    match request.preference {
        PlanPreference::ForceFileScan => Ok(filescan),
        PlanPreference::Auto => {
            if request.approach != Approach::Staccato {
                return Ok(filescan);
            }
            let Some(anchor) = query.anchor.as_deref() else {
                return Ok(filescan);
            };
            match session.index_covering(anchor)? {
                Some(name) => Ok(Plan::IndexProbe {
                    index: name.to_string(),
                    anchor: anchor.to_string(),
                }),
                None => Ok(filescan),
            }
        }
        PlanPreference::ForceIndexProbe => {
            if request.approach != Approach::Staccato {
                return Err(QueryError::NoUsableIndex(format!(
                    "index probes run over the Staccato representation, not {}",
                    request.approach.name()
                )));
            }
            let anchor = query
                .anchor
                .clone()
                .ok_or_else(|| QueryError::NotAnchored(request.pattern.clone()))?;
            match session.index_covering(&anchor)? {
                Some(name) => Ok(Plan::IndexProbe {
                    index: name.to_string(),
                    anchor,
                }),
                None if session.index_names().is_empty() => Err(QueryError::NoUsableIndex(
                    "no inverted index registered on this session".to_string(),
                )),
                None => Err(QueryError::TermNotInDictionary(anchor)),
            }
        }
    }
}

/// Human-readable plan report (the `EXPLAIN` text).
pub fn render_explain(request: &QueryRequest, query: &Query, plan: &Plan) -> String {
    let mut out = String::new();
    let dialect = match request.dialect {
        Dialect::Like => "LIKE",
        Dialect::Regex => "regex",
    };
    out.push_str(&format!(
        "Query: {} {:?} over {} (NumAns = {})\n",
        dialect,
        request.pattern,
        request.approach.name(),
        request.num_ans
    ));
    let span = match query.max_span() {
        Some(hi) => format!("{}..={hi}", query.min_span()),
        None => format!("{}..", query.min_span()),
    };
    out.push_str(&format!(
        "  anchor: {}, match span: {span}, DFA states: {}\n",
        query.anchor.as_deref().unwrap_or("none"),
        query.dfa.state_count()
    ));
    match plan {
        Plan::FileScan {
            approach,
            parallelism,
        } => {
            out.push_str(&format!("Plan: FileScan over {}\n", approach.name()));
            out.push_str(&format!(
                "  -> stream {} rows through the containment DFA ({} worker{})\n",
                approach.name(),
                parallelism,
                if *parallelism == 1 { "" } else { "s" }
            ));
            out.push_str(&format!(
                "  -> top-{} answers by probability (bounded heap)\n",
                request.num_ans
            ));
        }
        Plan::IndexProbe { index, anchor } => {
            out.push_str(&format!("Plan: IndexProbe via {index:?}\n"));
            out.push_str(&format!("  -> probe postings for anchor {anchor:?}\n"));
            out.push_str("  -> point-fetch candidate StaccatoGraph rows via the primary B+-tree\n");
            out.push_str("  -> evaluate each candidate on its projection (span-bounded BFS)\n");
            out.push_str(&format!(
                "  -> top-{} answers by probability (bounded heap)\n",
                request.num_ans
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_fluency() {
        let req = QueryRequest::like("%Ford%");
        assert_eq!(req.approach, Approach::Staccato);
        assert_eq!(req.num_ans, 100);
        assert_eq!(req.parallelism, 1);
        assert_eq!(req.preference, PlanPreference::Auto);
        let req = req.approach(Approach::Map).num_ans(10).parallelism(0);
        assert_eq!(req.approach, Approach::Map);
        assert_eq!(req.num_ans, 10);
        assert_eq!(req.parallelism, 1, "parallelism clamps to >= 1");
    }

    #[test]
    fn compile_respects_dialect() {
        let like = QueryRequest::like("%Ford%").compile().unwrap();
        assert!(like.dfa.accepts("a Ford here"));
        let exact = QueryRequest::like("Ford").compile().unwrap();
        assert!(!exact.dfa.accepts("a Ford here"));
        let kw = QueryRequest::keyword("Ford").compile().unwrap();
        assert!(kw.dfa.accepts("a Ford here"));
        assert!(QueryRequest::regex("a(b").compile().is_err());
    }

    #[test]
    fn plan_kind_labels() {
        let scan = Plan::FileScan {
            approach: Approach::Map,
            parallelism: 2,
        };
        let probe = Plan::IndexProbe {
            index: "inv".into(),
            anchor: "ford".into(),
        };
        assert_eq!(scan.kind(), "FileScan");
        assert!(!scan.is_index_probe());
        assert_eq!(probe.kind(), "IndexProbe");
        assert!(probe.is_index_probe());
    }

    #[test]
    fn explain_renders_both_plans() {
        let req = QueryRequest::regex(r"Public Law (8|9)\d").parallelism(4);
        let query = req.compile().unwrap();
        let scan = render_explain(
            &req,
            &query,
            &Plan::FileScan {
                approach: Approach::Staccato,
                parallelism: 4,
            },
        );
        assert!(scan.contains("FileScan"), "{scan}");
        assert!(scan.contains("4 workers"), "{scan}");
        assert!(scan.contains("anchor: public"), "{scan}");
        let probe = render_explain(
            &req,
            &query,
            &Plan::IndexProbe {
                index: "inv".into(),
                anchor: "public".into(),
            },
        );
        assert!(probe.contains("IndexProbe"), "{probe}");
        assert!(probe.contains("\"public\""), "{probe}");
    }
}
