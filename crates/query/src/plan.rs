//! The query planner: [`QueryRequest`] in, [`Plan`] out.
//!
//! The paper's interface is SQL — the user writes one `LIKE`/regex
//! predicate (Figure 1C) and the system decides how to run it; §4/§5.3
//! stress that index-assisted execution is *transparent*. This module is
//! that decision point for the reproduction: a request names the pattern,
//! representation, and answer budget, and [`plan_request`] compiles it
//! into an explicit access path —
//!
//! * [`Plan::FileScan`] — stream every line of the representation through
//!   the containment DFA (optionally on several worker threads, §5.4);
//! * [`Plan::IndexProbe`] — look the pattern's left anchor up in a
//!   registered §4 inverted index, point-fetch the candidate lines, and
//!   evaluate only their projections;
//! * [`Plan::Aggregate`] — wrap either access path and fold qualifying
//!   lines into a streaming `COUNT(*)` / `SUM(Prob)` / `AVG(Prob)`.
//!
//! The probe is chosen automatically when the representation is Staccato,
//! the pattern is left-anchored (§2.1), and a registered index covers the
//! anchor term; otherwise the planner falls back to a filescan. Forcing
//! either path is supported for plan-quality experiments and tests. A
//! request-level probability threshold (`min_prob`, SQL `AND Prob >= t`)
//! is pushed into the executors so below-threshold rows never reach the
//! ranking heap. Requests arrive either from the fluent builder here or
//! from the textual SQL front-end ([`crate::sql`]), which lowers into the
//! same [`QueryRequest`].

use crate::agg::AggregateFunc;
use crate::error::QueryError;
use crate::exec::Approach;
use crate::query::Query;
use crate::session::Staccato;
use staccato_storage::PoolStats;
use std::time::Duration;

/// Which pattern dialect a request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// SQL `LIKE` (`%Ford%`): the pattern constrains the whole string.
    Like,
    /// The paper's regex dialect, containment semantics.
    Regex,
}

/// Planner override.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlanPreference {
    /// Let the planner choose (index probe when legal, else filescan).
    #[default]
    Auto,
    /// Always filescan, even when an index could serve the query.
    ForceFileScan,
    /// Require the index probe; planning errors if it is not legal.
    ForceIndexProbe,
}

/// A declarative query: what to match, over which representation, with
/// what answer budget. Built fluently, executed by
/// [`Staccato::execute`](crate::session::Staccato::execute):
///
/// ```ignore
/// let out = session.execute(
///     &QueryRequest::like("%Ford%").approach(Approach::Staccato).num_ans(100).parallelism(8),
/// )?;
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The pattern text.
    pub pattern: String,
    /// The pattern dialect.
    pub dialect: Dialect,
    /// The representation this request targets.
    pub approach: Approach,
    /// The answer budget.
    pub num_ans: usize,
    /// Ranked answers to skip before the budget applies (SQL `OFFSET`):
    /// the executors rank the best `num_ans + offset` rows and drop the
    /// leading `offset`, so paging never re-ranks a truncated relation.
    pub offset: usize,
    /// The requested filescan parallelism.
    pub parallelism: usize,
    /// The planner override.
    pub preference: PlanPreference,
    /// Probability threshold (SQL `AND Prob >= t`): rows below it never
    /// enter the ranking heap or the aggregate. 0.0 = no threshold.
    pub min_prob: f64,
    /// Aggregate projection (SQL `SELECT COUNT(*) | SUM(Prob) |
    /// AVG(Prob)`); `None` returns the ranked answer relation.
    pub aggregate: Option<AggregateFunc>,
}

impl QueryRequest {
    fn new(pattern: &str, dialect: Dialect) -> QueryRequest {
        QueryRequest {
            pattern: pattern.to_string(),
            dialect,
            approach: Approach::Staccato,
            // The paper's NumAns default: 100, "greater than the number of
            // answers in the ground truth".
            num_ans: 100,
            offset: 0,
            parallelism: 1,
            preference: PlanPreference::Auto,
            min_prob: 0.0,
            aggregate: None,
        }
    }

    /// A SQL `LIKE` predicate (`%Ford%`).
    pub fn like(pattern: &str) -> QueryRequest {
        QueryRequest::new(pattern, Dialect::Like)
    }

    /// A regex in the paper's dialect, containment semantics.
    pub fn regex(pattern: &str) -> QueryRequest {
        QueryRequest::new(pattern, Dialect::Regex)
    }

    /// A keyword containment query (a regex with no metacharacters).
    pub fn keyword(word: &str) -> QueryRequest {
        QueryRequest::new(word, Dialect::Regex)
    }

    /// Choose the representation to query (default: Staccato).
    pub fn approach(mut self, approach: Approach) -> QueryRequest {
        self.approach = approach;
        self
    }

    /// Cap the ranked answer relation at `num_ans` rows (default: 100).
    pub fn num_ans(mut self, num_ans: usize) -> QueryRequest {
        self.num_ans = num_ans;
        self
    }

    /// Skip the `offset` best-ranked answers before the `num_ans` budget
    /// applies (default: 0) — SQL `LIMIT n OFFSET m` pagination. The
    /// skipped prefix is still ranked exactly (the heap keeps
    /// `num_ans + offset` candidates), so page `m` of a query equals the
    /// corresponding window of an unpaged run. Ignored by aggregates,
    /// which always see every qualifying line.
    pub fn offset(mut self, offset: usize) -> QueryRequest {
        self.offset = offset;
        self
    }

    /// Evaluate filescan lines on up to `threads` workers (default: 1).
    ///
    /// Honored by every [`Plan::FileScan`], over any representation, and
    /// by the filescan input of a [`Plan::Aggregate`]. It is an explicit
    /// **no-op** for [`Plan::IndexProbe`]: probes point-fetch only the
    /// candidate lines of one anchor term — a handful of B+-tree lookups
    /// — so there is no scan to partition.
    pub fn parallelism(mut self, threads: usize) -> QueryRequest {
        self.parallelism = threads.max(1);
        self
    }

    /// Override the planner's plan choice (default: automatic).
    pub fn plan_preference(mut self, preference: PlanPreference) -> QueryRequest {
        self.preference = preference;
        self
    }

    /// Only treat lines with match probability `>= t` as answers
    /// (default: 0.0, i.e. every positive-probability line). The filter
    /// is pushed into the streaming executors, ahead of the ranking heap.
    /// Values are clamped to `[0, 1]`; NaN means no threshold.
    pub fn min_prob(mut self, t: f64) -> QueryRequest {
        self.min_prob = crate::exec::sanitize_min_prob(t);
        self
    }

    /// Project an aggregate over the answer relation instead of returning
    /// ranked rows. Aggregate requests stream every qualifying line —
    /// `num_ans` does not cap what they see.
    pub fn aggregate(mut self, func: AggregateFunc) -> QueryRequest {
        self.aggregate = Some(func);
        self
    }

    /// Compile the pattern to a [`Query`] (containment DFA + anchor).
    pub fn compile(&self) -> Result<Query, QueryError> {
        match self.dialect {
            Dialect::Like => Query::like(&self.pattern),
            Dialect::Regex => Query::regex(&self.pattern),
        }
    }
}

/// An explicit, executable access path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Stream the whole representation through the query DFA.
    FileScan {
        /// Representation scanned.
        approach: Approach,
        /// Worker threads evaluating lines (1 = sequential).
        parallelism: usize,
    },
    /// Probe a registered inverted index with the pattern's left anchor,
    /// point-fetch candidates, evaluate projections (§4). Always
    /// sequential: a requested `parallelism` is a documented no-op here —
    /// the probe touches only the posted candidate lines, so there is no
    /// scan to partition.
    IndexProbe {
        /// Name of the registered index.
        index: String,
        /// The anchor term looked up.
        anchor: String,
    },
    /// Fold the qualifying lines of `input` into a streaming aggregate
    /// (`COUNT(*)` / `SUM(Prob)` / `AVG(Prob)`), never materializing the
    /// answer relation.
    Aggregate {
        /// The aggregate to compute.
        func: AggregateFunc,
        /// The access path supplying the answer relation.
        input: Box<Plan>,
    },
    /// `INSERT INTO StaccatoData ...`: run the construction pipeline,
    /// log one WAL batch, apply the rows. Not a read access path — it
    /// never reaches [`run_access_path`](crate::session::Staccato).
    Ingest {
        /// Documents in the committed batch.
        rows: usize,
    },
    /// `SELECT * FROM StaccatoHistory`: scan the ingest-history table.
    /// Served directly from the heap — likewise not a ranked access
    /// path.
    HistoryScan,
}

impl Plan {
    /// Short plan-kind label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Plan::FileScan { .. } => "FileScan",
            Plan::IndexProbe { .. } => "IndexProbe",
            Plan::Aggregate { .. } => "Aggregate",
            Plan::Ingest { .. } => "Ingest",
            Plan::HistoryScan => "HistoryScan",
        }
    }

    /// Does this plan (or its input, for aggregates) probe an index?
    pub fn is_index_probe(&self) -> bool {
        match self {
            Plan::IndexProbe { .. } => true,
            Plan::Aggregate { input, .. } => input.is_index_probe(),
            Plan::FileScan { .. } | Plan::Ingest { .. } | Plan::HistoryScan => false,
        }
    }

    /// The access path that reads the table: the plan itself, or the
    /// aggregate's input.
    pub fn access_path(&self) -> &Plan {
        match self {
            Plan::Aggregate { input, .. } => input.access_path(),
            other => other,
        }
    }
}

/// Execution counters attached to every result — the reproduction's
/// `EXPLAIN ANALYZE`.
///
/// Planning and execution are timed separately so the filescan and
/// index-probe paths report comparable numbers: `plan_wall` covers
/// pattern compilation plus access-path choice (including the index
/// dictionary lookups auto-planning performs), `exec_wall` covers running
/// the chosen plan. [`ExecStats::wall`] is their sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Physical table rows read (heap rows for scans, point fetches for
    /// probes).
    pub rows_scanned: u64,
    /// Lines whose match probability was computed.
    pub lines_evaluated: u64,
    /// Index postings retrieved (0 for filescans).
    pub postings_probed: u64,
    /// Lines the scan kernel's anchor prescreen resolved to zero
    /// probability without running the full evaluation (a subset of
    /// `lines_evaluated`).
    pub prescreen_skipped: u64,
    /// Wall-clock time spent compiling the pattern and choosing the plan.
    pub plan_wall: Duration,
    /// Wall-clock time spent executing the chosen plan.
    pub exec_wall: Duration,
    /// Buffer-pool activity attributed to this execution (the pool's
    /// counters sampled before and after). Under concurrent sessions the
    /// attribution is approximate: the pool is shared, so a neighbor's
    /// fetches land in whichever query was in flight.
    pub pool: PoolStats,
    /// WAL activity attributed to this statement — non-zero only for
    /// `INSERT` statements on a session with a WAL attached.
    pub wal: WalCounters,
}

/// WAL/ingest work counters. Per-statement deltas ride on
/// [`ExecStats::wal`]; the session-cumulative view is
/// [`Staccato::ingest_stats`](crate::session::Staccato::ingest_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// WAL records appended.
    pub records_appended: u64,
    /// Framed bytes logged.
    pub bytes_logged: u64,
    /// fsyncs issued (append-side syncs plus group fsyncs this
    /// statement led).
    pub fsyncs: u64,
    /// Batches replayed from the log (recovery only).
    pub replays: u64,
    /// Group-commit fsyncs this statement led on behalf of every
    /// waiter (0 when it rode a flush another statement issued).
    pub group_commits: u64,
    /// Time this statement spent blocked waiting for its durable LSN.
    pub flush_wait: Duration,
}

impl ExecStats {
    /// Total wall-clock time: planning plus execution.
    pub fn wall(&self) -> Duration {
        self.plan_wall + self.exec_wall
    }
}

/// Compile `request` into the access path [`Staccato::execute`] will run.
///
/// Auto planning picks [`Plan::IndexProbe`] exactly when the request
/// targets the Staccato representation, the compiled pattern has a left
/// anchor, and some registered index's dictionary contains that anchor;
/// anything else filescans. Forced probes surface the precise reason they
/// are illegal instead of silently degrading. An aggregate request wraps
/// the chosen access path in [`Plan::Aggregate`].
pub fn plan_request(
    session: &Staccato,
    request: &QueryRequest,
    query: &Query,
) -> Result<Plan, QueryError> {
    let access = plan_access_path(session, request, query)?;
    Ok(match request.aggregate {
        Some(func) => Plan::Aggregate {
            func,
            input: Box::new(access),
        },
        None => access,
    })
}

fn plan_access_path(
    session: &Staccato,
    request: &QueryRequest,
    query: &Query,
) -> Result<Plan, QueryError> {
    let filescan = Plan::FileScan {
        approach: request.approach,
        // Honored on every representation: the morsel scan partitions
        // per-line evaluation for the string representations exactly as
        // it does for the SFA blobs (§5.4).
        parallelism: request.parallelism,
    };
    match request.preference {
        PlanPreference::ForceFileScan => Ok(filescan),
        PlanPreference::Auto => {
            if request.approach != Approach::Staccato {
                return Ok(filescan);
            }
            let Some(anchor) = query.anchor.as_deref() else {
                return Ok(filescan);
            };
            match session.index_covering(anchor)? {
                Some(name) => Ok(Plan::IndexProbe {
                    index: name,
                    anchor: anchor.to_string(),
                }),
                None => Ok(filescan),
            }
        }
        PlanPreference::ForceIndexProbe => {
            if request.approach != Approach::Staccato {
                return Err(QueryError::NoUsableIndex(format!(
                    "index probes run over the Staccato representation, not {}",
                    request.approach.name()
                )));
            }
            let anchor = query
                .anchor
                .clone()
                .ok_or_else(|| QueryError::NotAnchored(request.pattern.clone()))?;
            match session.index_covering(&anchor)? {
                Some(name) => Ok(Plan::IndexProbe {
                    index: name,
                    anchor,
                }),
                None if !session.has_indexes() => Err(QueryError::NoUsableIndex(
                    "no inverted index registered on this session".to_string(),
                )),
                None => Err(QueryError::TermNotInDictionary(anchor)),
            }
        }
    }
}

/// Human-readable plan report (the `EXPLAIN` text). The SQL front-end's
/// `EXPLAIN SELECT ...` and the builder path's
/// [`Staccato::explain`](crate::session::Staccato::explain) both render
/// through here, so the two surfaces agree byte for byte.
pub fn render_explain(request: &QueryRequest, query: &Query, plan: &Plan) -> String {
    let mut out = String::new();
    let dialect = match request.dialect {
        Dialect::Like => "LIKE",
        Dialect::Regex => "regex",
    };
    out.push_str(&format!(
        "Query: {} {:?} over {} (NumAns = {})\n",
        dialect,
        request.pattern,
        request.approach.name(),
        request.num_ans
    ));
    let span = match query.max_span() {
        Some(hi) => format!("{}..={hi}", query.min_span()),
        None => format!("{}..", query.min_span()),
    };
    out.push_str(&format!(
        "  anchor: {}, match span: {span}, DFA states: {}\n",
        query.anchor.as_deref().unwrap_or("none"),
        query.dfa.state_count()
    ));
    if request.min_prob > 0.0 {
        out.push_str(&format!(
            "  threshold: Prob >= {} (pushed into the executor)\n",
            request.min_prob
        ));
    }
    if let Plan::Aggregate { func, input } = plan {
        out.push_str(&format!(
            "Plan: Aggregate {} over {}\n",
            func.sql_name(),
            input.kind()
        ));
        out.push_str("  -> fold qualifying lines into a streaming aggregate (no ranking heap)\n");
        render_access_path(&mut out, "  input ", plan.access_path());
    } else {
        render_access_path(&mut out, "Plan: ", plan);
        if request.offset > 0 {
            out.push_str(&format!(
                "  -> top-{} answers by probability (bounded heap), skip the first {} (OFFSET)\n",
                request.num_ans, request.offset
            ));
        } else {
            out.push_str(&format!(
                "  -> top-{} answers by probability (bounded heap)\n",
                request.num_ans
            ));
        }
    }
    out
}

/// The `EXPLAIN ANALYZE` report: the [`render_explain`] text plus the
/// counters the execution actually produced — wall time split into
/// planning and execution, row/line/posting work, and the buffer-pool
/// activity attributed to the query. `answers` is what the statement
/// returned (the ranked row count, or the aggregate scalar).
pub fn render_explain_analyze(
    request: &QueryRequest,
    query: &Query,
    plan: &Plan,
    stats: &ExecStats,
    answers: &str,
) -> String {
    let mut out = render_explain(request, query, plan);
    out.push_str(&format!(
        "Analyze: plan {}, exec {} (total {})\n",
        fmt_wall(stats.plan_wall),
        fmt_wall(stats.exec_wall),
        fmt_wall(stats.wall())
    ));
    out.push_str(&format!(
        "  rows scanned: {}, lines evaluated: {}, postings probed: {}, prescreen skipped: {}\n",
        stats.rows_scanned, stats.lines_evaluated, stats.postings_probed, stats.prescreen_skipped
    ));
    out.push_str(&format!(
        "  buffer pool: {} hits, {} misses, {} evictions ({:.1}% hit rate)\n",
        stats.pool.hits,
        stats.pool.misses,
        stats.pool.evictions,
        stats.pool.hit_rate() * 100.0
    ));
    out.push_str(&format!("  returned: {answers}\n"));
    out
}

/// Adaptive wall-clock units for the `Analyze:` line.
fn fmt_wall(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

fn render_access_path(out: &mut String, label: &str, plan: &Plan) {
    match plan {
        Plan::FileScan {
            approach,
            parallelism,
        } => {
            out.push_str(&format!("{label}FileScan over {}\n", approach.name()));
            out.push_str(&format!(
                "  -> stream {} rows through the containment DFA ({} worker{})\n",
                approach.name(),
                parallelism,
                if *parallelism == 1 { "" } else { "s" }
            ));
        }
        Plan::IndexProbe { index, anchor } => {
            out.push_str(&format!("{label}IndexProbe via {index:?}\n"));
            out.push_str(&format!("  -> probe postings for anchor {anchor:?}\n"));
            out.push_str("  -> point-fetch candidate StaccatoGraph rows via the primary B+-tree\n");
            out.push_str("  -> evaluate each candidate on its projection (span-bounded BFS)\n");
        }
        Plan::Aggregate { .. } => unreachable!("aggregates wrap exactly one access path"),
        Plan::Ingest { .. } | Plan::HistoryScan => {
            unreachable!("write/history statements never render as read access paths")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_fluency() {
        let req = QueryRequest::like("%Ford%");
        assert_eq!(req.approach, Approach::Staccato);
        assert_eq!(req.num_ans, 100);
        assert_eq!(req.parallelism, 1);
        assert_eq!(req.preference, PlanPreference::Auto);
        assert_eq!(req.min_prob, 0.0);
        assert_eq!(req.aggregate, None);
        let req = req.approach(Approach::Map).num_ans(10).parallelism(0);
        assert_eq!(req.approach, Approach::Map);
        assert_eq!(req.num_ans, 10);
        assert_eq!(req.parallelism, 1, "parallelism clamps to >= 1");
    }

    #[test]
    fn min_prob_clamps_to_the_unit_interval() {
        assert_eq!(QueryRequest::like("%a%").min_prob(0.5).min_prob, 0.5);
        assert_eq!(QueryRequest::like("%a%").min_prob(-3.0).min_prob, 0.0);
        assert_eq!(QueryRequest::like("%a%").min_prob(7.0).min_prob, 1.0);
        assert_eq!(QueryRequest::like("%a%").min_prob(f64::NAN).min_prob, 0.0);
    }

    #[test]
    fn compile_respects_dialect() {
        let like = QueryRequest::like("%Ford%").compile().unwrap();
        assert!(like.dfa.accepts("a Ford here"));
        let exact = QueryRequest::like("Ford").compile().unwrap();
        assert!(!exact.dfa.accepts("a Ford here"));
        let kw = QueryRequest::keyword("Ford").compile().unwrap();
        assert!(kw.dfa.accepts("a Ford here"));
        assert!(QueryRequest::regex("a(b").compile().is_err());
    }

    #[test]
    fn plan_kind_labels() {
        let scan = Plan::FileScan {
            approach: Approach::Map,
            parallelism: 2,
        };
        let probe = Plan::IndexProbe {
            index: "inv".into(),
            anchor: "ford".into(),
        };
        assert_eq!(scan.kind(), "FileScan");
        assert!(!scan.is_index_probe());
        assert_eq!(probe.kind(), "IndexProbe");
        assert!(probe.is_index_probe());
        let agg = Plan::Aggregate {
            func: AggregateFunc::SumProb,
            input: Box::new(probe.clone()),
        };
        assert_eq!(agg.kind(), "Aggregate");
        assert!(agg.is_index_probe(), "aggregate sees through to its input");
        assert_eq!(agg.access_path(), &probe);
    }

    #[test]
    fn explain_renders_both_plans() {
        let req = QueryRequest::regex(r"Public Law (8|9)\d").parallelism(4);
        let query = req.compile().unwrap();
        let scan = render_explain(
            &req,
            &query,
            &Plan::FileScan {
                approach: Approach::Staccato,
                parallelism: 4,
            },
        );
        assert!(scan.contains("FileScan"), "{scan}");
        assert!(scan.contains("4 workers"), "{scan}");
        assert!(scan.contains("anchor: public"), "{scan}");
        let probe = render_explain(
            &req,
            &query,
            &Plan::IndexProbe {
                index: "inv".into(),
                anchor: "public".into(),
            },
        );
        assert!(probe.contains("IndexProbe"), "{probe}");
        assert!(probe.contains("\"public\""), "{probe}");
    }

    #[test]
    fn explain_renders_threshold_and_aggregate() {
        let req = QueryRequest::like("%Ford%")
            .min_prob(0.25)
            .aggregate(AggregateFunc::CountStar);
        let query = req.compile().unwrap();
        let text = render_explain(
            &req,
            &query,
            &Plan::Aggregate {
                func: AggregateFunc::CountStar,
                input: Box::new(Plan::FileScan {
                    approach: Approach::Staccato,
                    parallelism: 1,
                }),
            },
        );
        assert!(text.contains("threshold: Prob >= 0.25"), "{text}");
        assert!(text.contains("Aggregate COUNT(*) over FileScan"), "{text}");
        assert!(text.contains("streaming aggregate"), "{text}");
        assert!(!text.contains("top-"), "no ranking heap line: {text}");

        // No threshold, no aggregate: the classic report, unchanged.
        let req = QueryRequest::like("%Ford%");
        let text = render_explain(
            &req,
            &query,
            &Plan::FileScan {
                approach: Approach::Staccato,
                parallelism: 1,
            },
        );
        assert!(!text.contains("threshold"), "{text}");
        assert!(text.contains("top-100"), "{text}");
    }
}
