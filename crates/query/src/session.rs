//! The `Staccato` session: the single entry point for querying a loaded
//! OCR store.
//!
//! A session wraps an [`OcrStore`], owns any registered §4 inverted
//! indexes, and executes [`QueryRequest`]s: compile the pattern, let the
//! planner pick a [`Plan`], run the matching streaming executor, and
//! return the ranked answers together with the plan and its
//! [`ExecStats`]. This mirrors the paper's posture that probabilistic
//! queries are ordinary SQL — the user states *what* to match
//! (`LIKE '%Ford%'`) and the engine decides *how* (filescan vs.
//! index-assisted probe), transparently.
//!
//! ```ignore
//! let mut session = Staccato::load(db, &dataset, &LoadOptions::default())?;
//! session.register_index(&trie, "inv")?;
//! let out = session.execute(
//!     &QueryRequest::like("%Ford%").approach(Approach::Staccato).num_ans(100),
//! )?;
//! println!("{} answers via {}", out.answers.len(), out.plan.kind());
//! ```

use crate::error::QueryError;
use crate::exec::{exec_filescan, Answer};
use crate::invindex::{build_index, exec_index_probe, InvertedIndex};
use crate::plan::{plan_request, render_explain, ExecStats, Plan, QueryRequest};
use crate::store::{LoadOptions, OcrStore, RepresentationSizes};
use staccato_automata::Trie;
use staccato_ocr::Dataset;
use staccato_storage::Database;
use std::time::Instant;

/// One registered inverted index.
struct RegisteredIndex {
    name: String,
    index: InvertedIndex,
}

/// A query session over a loaded OCR store.
pub struct Staccato {
    store: OcrStore,
    indexes: Vec<RegisteredIndex>,
}

/// Everything one execution returns: the ranked probabilistic relation,
/// the plan that produced it, and the execution counters.
#[derive(Debug)]
pub struct QueryOutput {
    /// Ranked `(DataKey, probability)` rows, truncated to `num_ans`.
    pub answers: Vec<Answer>,
    /// The access path the planner chose.
    pub plan: Plan,
    /// Counters and wall time for this execution.
    pub stats: ExecStats,
}

impl Staccato {
    /// Open a session over an already-loaded store.
    pub fn open(store: OcrStore) -> Staccato {
        Staccato {
            store,
            indexes: Vec::new(),
        }
    }

    /// Load `dataset` into `db` under all four representations and open a
    /// session over the result.
    pub fn load(
        db: Database,
        dataset: &Dataset,
        opts: &LoadOptions,
    ) -> Result<Staccato, QueryError> {
        Ok(Staccato::open(OcrStore::load(db, dataset, opts)?))
    }

    /// The underlying store (representation cursors, point lookups).
    pub fn store(&self) -> &OcrStore {
        &self.store
    }

    /// Give the store back, dropping the session.
    pub fn into_store(self) -> OcrStore {
        self.store
    }

    /// Number of lines (SFAs) loaded.
    pub fn line_count(&self) -> usize {
        self.store.line_count()
    }

    /// Representation sizes measured at load time.
    pub fn sizes(&self) -> RepresentationSizes {
        self.store.sizes()
    }

    /// Build a §4 dictionary inverted index over the Staccato
    /// representation and register it with the planner under `name`.
    /// Returns the number of postings inserted.
    pub fn register_index(&mut self, trie: &Trie, name: &str) -> Result<u64, QueryError> {
        let index = build_index(&self.store, trie, name)?;
        let postings = index.posting_count;
        self.indexes.push(RegisteredIndex {
            name: name.to_string(),
            index,
        });
        Ok(postings)
    }

    /// A registered index by name.
    pub fn index(&self, name: &str) -> Option<&InvertedIndex> {
        self.indexes
            .iter()
            .find(|r| r.name == name)
            .map(|r| &r.index)
    }

    /// Names of all registered indexes, in registration order.
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.iter().map(|r| r.name.as_str()).collect()
    }

    /// The first registered index whose dictionary contains `term`
    /// (planner hook).
    pub(crate) fn index_covering(&self, term: &str) -> Result<Option<&str>, QueryError> {
        for reg in &self.indexes {
            if reg.index.contains_term(self.store.db().pool(), term)? {
                return Ok(Some(reg.name.as_str()));
            }
        }
        Ok(None)
    }

    /// Compile `request` and choose its access path without executing.
    pub fn plan(&self, request: &QueryRequest) -> Result<Plan, QueryError> {
        let query = request.compile()?;
        plan_request(self, request, &query)
    }

    /// The `EXPLAIN` text: the compiled pattern, its anchor, and the
    /// chosen plan, human-readable.
    pub fn explain(&self, request: &QueryRequest) -> Result<String, QueryError> {
        let query = request.compile()?;
        let plan = plan_request(self, request, &query)?;
        Ok(render_explain(request, &query, &plan))
    }

    /// Execute `request`: plan, run, rank, and account.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryOutput, QueryError> {
        let query = request.compile()?;
        let plan = plan_request(self, request, &query)?;
        let mut stats = ExecStats::default();
        let started = Instant::now();
        let answers = match &plan {
            Plan::FileScan {
                approach,
                parallelism,
            } => exec_filescan(
                &self.store,
                *approach,
                &query,
                request.num_ans,
                *parallelism,
                &mut stats,
            )?,
            Plan::IndexProbe { index, .. } => {
                let index = self
                    .index(index)
                    .expect("planner only returns registered indexes");
                exec_index_probe(&self.store, index, &query, request.num_ans, &mut stats)?
            }
        };
        stats.wall = started.elapsed();
        Ok(QueryOutput {
            answers,
            plan,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Approach;
    use crate::plan::PlanPreference;
    use staccato_core::StaccatoParams;
    use staccato_ocr::{generate, ChannelConfig, CorpusKind};

    fn session(lines: usize, seed: u64) -> Staccato {
        let dataset = generate(CorpusKind::CongressActs, lines, seed);
        let db = Database::in_memory(1024).unwrap();
        let opts = LoadOptions {
            channel: ChannelConfig::compact(seed),
            kmap_k: 8,
            staccato: StaccatoParams::new(10, 8),
            parallelism: 2,
        };
        Staccato::load(db, &dataset, &opts).unwrap()
    }

    #[test]
    fn execute_reports_plan_and_stats() {
        let s = session(30, 5);
        let out = s
            .execute(&QueryRequest::keyword("President").approach(Approach::Map))
            .unwrap();
        assert_eq!(
            out.plan,
            Plan::FileScan {
                approach: Approach::Map,
                parallelism: 1
            }
        );
        assert_eq!(out.stats.rows_scanned, 30);
        assert_eq!(out.stats.lines_evaluated, 30);
        assert!(out.answers.iter().all(|a| a.probability > 0.0));
    }

    #[test]
    fn no_index_means_filescan_even_when_anchored() {
        let s = session(20, 9);
        let plan = s.plan(&QueryRequest::keyword("President")).unwrap();
        assert_eq!(
            plan,
            Plan::FileScan {
                approach: Approach::Staccato,
                parallelism: 1
            }
        );
    }

    #[test]
    fn registered_index_flips_anchored_queries_to_probe() {
        let mut s = session(40, 21);
        let postings = s
            .register_index(&Trie::build(["president", "public"]), "inv")
            .unwrap();
        assert!(postings > 0);
        let plan = s.plan(&QueryRequest::keyword("President")).unwrap();
        assert_eq!(
            plan,
            Plan::IndexProbe {
                index: "inv".into(),
                anchor: "president".into()
            }
        );
        // Unanchored stays a scan; anchor outside the dictionary too.
        assert!(!s
            .plan(&QueryRequest::regex(r"\d\d\d"))
            .unwrap()
            .is_index_probe());
        assert!(!s
            .plan(&QueryRequest::keyword("Commission"))
            .unwrap()
            .is_index_probe());
        // Other representations never probe.
        assert!(!s
            .plan(&QueryRequest::keyword("President").approach(Approach::FullSfa))
            .unwrap()
            .is_index_probe());
    }

    #[test]
    fn forced_probe_surfaces_reasons() {
        let mut s = session(20, 2);
        let force = |req: QueryRequest| req.plan_preference(PlanPreference::ForceIndexProbe);
        assert!(matches!(
            s.plan(&force(QueryRequest::keyword("President"))),
            Err(QueryError::NoUsableIndex(_))
        ));
        s.register_index(&Trie::build(["public"]), "inv").unwrap();
        assert!(matches!(
            s.plan(&force(QueryRequest::keyword("President"))),
            Err(QueryError::TermNotInDictionary(_))
        ));
        assert!(matches!(
            s.plan(&force(QueryRequest::regex(r"\d\d\d"))),
            Err(QueryError::NotAnchored(_))
        ));
        assert!(matches!(
            s.plan(&force(
                QueryRequest::keyword("public").approach(Approach::Map)
            )),
            Err(QueryError::NoUsableIndex(_))
        ));
    }

    #[test]
    fn probe_stats_count_postings() {
        let mut s = session(50, 31);
        s.register_index(&Trie::build(["public"]), "inv").unwrap();
        let out = s
            .execute(&QueryRequest::regex(r"Public Law (8|9)\d"))
            .unwrap();
        assert!(out.plan.is_index_probe());
        assert!(out.stats.postings_probed > 0);
        assert!(
            out.stats.rows_scanned <= 50,
            "probe fetches candidates only"
        );
    }

    #[test]
    fn explain_mentions_the_chosen_path() {
        let mut s = session(25, 7);
        let req = QueryRequest::keyword("President");
        assert!(s.explain(&req).unwrap().contains("FileScan"));
        s.register_index(&Trie::build(["president"]), "inv")
            .unwrap();
        let text = s.explain(&req).unwrap();
        assert!(text.contains("IndexProbe"), "{text}");
        assert!(text.contains("president"), "{text}");
    }
}
