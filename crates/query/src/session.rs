//! The `Staccato` session: the single entry point for querying a loaded
//! OCR store.
//!
//! A session wraps an [`OcrStore`], owns any registered §4 inverted
//! indexes, and executes queries arriving on either surface — the fluent
//! [`QueryRequest`] builder or a SQL string ([`Staccato::sql`],
//! [`Staccato::prepare`]): compile the pattern, let the planner pick a
//! [`Plan`], run the matching streaming executor, and return the ranked
//! answers (or aggregate scalar) together with the plan and its
//! [`ExecStats`]. This mirrors the paper's posture that probabilistic
//! queries are ordinary SQL — the user states *what* to match
//! (`LIKE '%Ford%'`) and the engine decides *how* (filescan vs.
//! index-assisted probe), transparently.
//!
//! # Sharing model
//!
//! Every public method takes `&self`, `Staccato` is `Send + Sync`
//! (asserted at compile time below), and the read hot path is
//! contention-free: buffer-pool hits are lock-free RCU lookups (the
//! shard mutex covers misses/eviction only), the registered-index list
//! is published as an atomically-swapped `Arc` snapshot (planning never
//! blocks behind an index build), and the compiled-query cache is
//! sharded with lock-free lookups. Share one session across client
//! threads as `Arc<Staccato>` — no external locking:
//!
//! ```ignore
//! let session = Arc::new(Staccato::load(db, &dataset, &LoadOptions::default())?);
//! session.register_index(&trie, "inv")?;
//! let handles: Vec<_> = (0..8)
//!     .map(|_| {
//!         let session = Arc::clone(&session);
//!         std::thread::spawn(move || {
//!             session.sql("SELECT DataKey, Prob FROM StaccatoData \
//!                          WHERE Data LIKE '%Ford%' LIMIT 100")
//!         })
//!     })
//!     .collect();
//! ```
//!
//! Repeated statements are served from a bounded compiled-query cache
//! (pattern → DFA + plan), which [`Staccato::register_index`] invalidates
//! so anchored queries re-plan onto the new index.

use crate::agg::{AggregateResult, StreamingAggregate};
use crate::cache::{CacheKey, QueryCache, QueryCacheStats, DEFAULT_QUERY_CACHE_CAPACITY};
use crate::error::QueryError;
use crate::exec::{exec_filescan, Answer, Sink, TopK};
use crate::ingest::{
    decode_batch, encode_batch, like_match, DecodedBatch, DecodedDoc, DocumentInput, HistoryRow,
    IngestBatch, IngestReceipt, IngestStats,
};
use crate::invindex::{build_index, exec_index_probe, InvertedIndex};
use crate::plan::{
    plan_request, render_explain, render_explain_analyze, ExecStats, Plan, QueryRequest,
    WalCounters,
};
use crate::query::Query;
use crate::sql::{
    parse_statement, HistorySelect, Insert, PreparedQuery, SqlError, SqlValue, Statement,
};
use crate::store::{build_line, build_line_from_sfa, LoadOptions, OcrStore, RepresentationSizes};
use parking_lot::{Mutex, RwLock};
use staccato_automata::Trie;
use staccato_ocr::Dataset;
use staccato_sfa::codec;
use staccato_storage::{Database, PoolStats, RcuCell, SyncPolicy, Wal, WalFlusher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Weak};
use std::time::Instant;

/// One registered inverted index. The index handle is `Arc`-shared so a
/// probe can keep executing against it after the registry lock is
/// released; the trie is retained so ingest can extend the postings
/// incrementally.
struct RegisteredIndex {
    name: String,
    index: Arc<InvertedIndex>,
    trie: Trie,
}

/// The single-writer half of the session: the attached WAL (if any),
/// the next batch sequence number, and the checkpoint-policy odometer.
/// Held while a batch is sequenced, logged, and applied — but *not*
/// while its durability wait runs, so concurrent writers pipeline into
/// the group-commit flusher.
struct WriterState {
    wal: Option<Wal>,
    next_seq: u64,
    /// Batches applied since the last checkpoint (policy odometer).
    ckpt_batches_since: u64,
    /// WAL bytes appended since the last checkpoint (policy odometer).
    ckpt_bytes_since: u64,
}

/// Session-cumulative ingest counters (the WAL's own counters live on
/// the [`Wal`] handle under the writer lock).
#[derive(Default)]
struct IngestTotals {
    batches: AtomicU64,
    docs: AtomicU64,
    replays: AtomicU64,
    checkpoints: AtomicU64,
}

/// When the background checkpointer should snapshot the store. Both
/// thresholds disabled means "never" (manual checkpoints only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many batches applied since the last one.
    pub every_batches: Option<u64>,
    /// Checkpoint once this many WAL bytes logged since the last one.
    pub every_bytes: Option<u64>,
}

impl CheckpointPolicy {
    /// Checkpoint every `n` applied batches.
    pub fn every_batches(n: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            every_batches: Some(n.max(1)),
            every_bytes: None,
        }
    }

    /// Checkpoint every `n` WAL bytes logged.
    pub fn every_bytes(n: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            every_batches: None,
            every_bytes: Some(n.max(1)),
        }
    }

    fn due(&self, batches_since: u64, bytes_since: u64) -> bool {
        self.every_batches.is_some_and(|n| batches_since >= n)
            || self.every_bytes.is_some_and(|n| bytes_since >= n)
    }
}

/// Doorbell between the write path and the background checkpointer: the
/// ingest that crosses a policy threshold rings it (condvar, no
/// busy-wait) and moves on; the checkpointer thread snapshots off the
/// write path.
struct CheckpointSignal {
    state: StdMutex<CheckpointerState>,
    wake: Condvar,
}

struct CheckpointerState {
    policy: CheckpointPolicy,
    pending: bool,
    shutdown: bool,
    thread: Option<std::thread::JoinHandle<()>>,
    runs: u64,
    errors: u64,
}

impl CheckpointSignal {
    fn lock(&self) -> std::sync::MutexGuard<'_, CheckpointerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Owns the checkpointer's shutdown: dropped with the session (or when
/// [`Staccato::into_store`] dissolves it), it signals the thread and
/// joins it — unless the drop is running *on* that thread (the
/// checkpointer can hold the last `Arc<Staccato>`), where joining would
/// self-deadlock and detaching is correct: the loop observes `shutdown`
/// and returns right after.
struct CheckpointerSlot {
    signal: Arc<CheckpointSignal>,
}

impl CheckpointerSlot {
    fn new() -> CheckpointerSlot {
        CheckpointerSlot {
            signal: Arc::new(CheckpointSignal {
                state: StdMutex::new(CheckpointerState {
                    policy: CheckpointPolicy::default(),
                    pending: false,
                    shutdown: false,
                    thread: None,
                    runs: 0,
                    errors: 0,
                }),
                wake: Condvar::new(),
            }),
        }
    }
}

impl Drop for CheckpointerSlot {
    fn drop(&mut self) {
        let handle = {
            let mut state = self.signal.lock();
            state.shutdown = true;
            state.thread.take()
        };
        self.signal.wake.notify_all();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

/// A query session over a loaded OCR store. All methods take `&self`;
/// share across threads as `Arc<Staccato>` (see the module docs).
///
/// # Write-path locking
///
/// Three latches order writers against readers (always acquired in this
/// order — writer → applies → index_write):
///
/// 1. `writer` serializes the sequenced part of an `ingest`: artifact
///    construction, the WAL append, and the apply happen under it — so
///    WAL order always matches `DataKey` order. The *durability wait*
///    runs after it is released: concurrent writers pipeline into the
///    group-commit flusher and share fsyncs.
/// 2. `applies` is the visibility gate. Queries hold its read side for
///    their whole execution; an ingest holds the write side while
///    inserting a batch's rows, history, and index postings — so a
///    reader observes a batch entirely or not at all, never partially.
/// 3. `index_write` serializes registrations. *Reads* of the registry
///    never latch: `indexes` is an RCU snapshot ([`RcuCell`]) — the
///    planner, ingest's posting extension, and every registry getter
///    work against the snapshot that was current when they started,
///    while `register_index` builds the next one off to the side and
///    publishes it atomically.
pub struct Staccato {
    store: OcrStore,
    /// The registered-index snapshot. Readers clone `Arc`s out of it
    /// lock-free; only `register_index` (under `index_write`) replaces
    /// it.
    indexes: RcuCell<Vec<Arc<RegisteredIndex>>>,
    /// Serializes index registrations (duplicate-name check → build →
    /// publish must not interleave).
    index_write: Mutex<()>,
    cache: QueryCache,
    writer: Mutex<WriterState>,
    applies: RwLock<()>,
    totals: IngestTotals,
    ckpt: CheckpointerSlot,
}

// The sharing contract, enforced at compile time: a session must be
// usable from many threads behind one `Arc`.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<Staccato>();

/// Everything one execution returns: the ranked probabilistic relation
/// (or the aggregate scalar), the plan that produced it, and the
/// execution counters.
#[derive(Debug)]
pub struct QueryOutput {
    /// Ranked `(DataKey, probability)` rows, truncated to `num_ans`.
    /// Empty for aggregate and `EXPLAIN` statements.
    pub answers: Vec<Answer>,
    /// The access path the planner chose.
    pub plan: Plan,
    /// Counters and wall time for this execution.
    pub stats: ExecStats,
    /// The aggregate scalar, when the request projected one.
    pub aggregate: Option<AggregateResult>,
    /// The `EXPLAIN` text, when the statement was an `EXPLAIN` (nothing
    /// executed in that case).
    pub explain: Option<String>,
    /// The committed batch's receipt, when the statement was an `INSERT`.
    pub ingest: Option<IngestReceipt>,
    /// `StaccatoHistory` rows, when the statement selected them.
    pub history: Option<Vec<HistoryRow>>,
}

impl Staccato {
    /// Open a session over an already-loaded store.
    pub fn open(store: OcrStore) -> Staccato {
        Staccato {
            store,
            indexes: RcuCell::new(Arc::new(Vec::new())),
            index_write: Mutex::new(()),
            cache: QueryCache::with_capacity(DEFAULT_QUERY_CACHE_CAPACITY),
            writer: Mutex::new(WriterState {
                wal: None,
                next_seq: 1,
                ckpt_batches_since: 0,
                ckpt_bytes_since: 0,
            }),
            applies: RwLock::new(()),
            totals: IngestTotals::default(),
            ckpt: CheckpointerSlot::new(),
        }
    }

    /// Load `dataset` into `db` under all four representations and open a
    /// session over the result.
    pub fn load(
        db: Database,
        dataset: &Dataset,
        opts: &LoadOptions,
    ) -> Result<Staccato, QueryError> {
        Ok(Staccato::open(OcrStore::load(db, dataset, opts)?))
    }

    /// The underlying store (representation cursors, point lookups).
    pub fn store(&self) -> &OcrStore {
        &self.store
    }

    /// Give the store back, dropping the session.
    pub fn into_store(self) -> OcrStore {
        self.store
    }

    /// Number of lines (SFAs) in the store — loaded plus ingested,
    /// current as of the last fully applied batch.
    pub fn line_count(&self) -> usize {
        self.store.line_count()
    }

    /// Representation sizes, kept current by the ingest path.
    pub fn sizes(&self) -> RepresentationSizes {
        self.store.sizes()
    }

    /// Build a §4 dictionary inverted index over the Staccato
    /// representation and register it with the planner under `name`.
    /// Returns the number of postings inserted. Names must be unique per
    /// session; re-registering one errors with
    /// [`QueryError::DuplicateIndex`] instead of shadowing the original.
    ///
    /// Registration serializes on the registration latch (so two threads
    /// cannot race the same name), builds the index off to the side —
    /// planning keeps reading the previous registry snapshot, entirely
    /// unblocked — then publishes the extended snapshot atomically and
    /// invalidates the compiled-query cache: anchored Staccato queries
    /// re-plan and may now route through the new index.
    pub fn register_index(&self, trie: &Trie, name: &str) -> Result<u64, QueryError> {
        // Hold the apply latch (read side) across the build: concurrent
        // queries proceed, but no ingest batch can land mid-scan — every
        // line is either in the initial build or in a later incremental
        // extension, never missed between them. Lock order matches the
        // write path: applies before index_write.
        let _apply = self.applies.read();
        let _reg = self.index_write.lock();
        let current = self.indexes.load();
        if current.iter().any(|r| r.name == name) {
            return Err(QueryError::DuplicateIndex(name.to_string()));
        }
        let index = build_index(&self.store, trie, name)?;
        let postings = index.posting_count();
        let mut next = Vec::with_capacity(current.len() + 1);
        next.extend(current.iter().cloned());
        next.push(Arc::new(RegisteredIndex {
            name: name.to_string(),
            index: Arc::new(index),
            trie: trie.clone(),
        }));
        // Publish the new registry *before* bumping the epoch: a planner
        // that observes the new epoch is guaranteed to also observe the
        // new snapshot (store is sequenced before the bump, and the
        // bump's Release pairs with the planner's Acquire epoch load). A
        // planner still on the old epoch may plan against the old
        // snapshot, but its entry carries the old epoch and the cache's
        // get-time check rejects it.
        self.indexes.store(Arc::new(next));
        self.cache.invalidate();
        Ok(postings)
    }

    /// A registered index by name.
    pub fn index(&self, name: &str) -> Option<Arc<InvertedIndex>> {
        self.indexes.with(|v| {
            v.iter()
                .find(|r| r.name == name)
                .map(|r| Arc::clone(&r.index))
        })
    }

    /// Names of all registered indexes, in registration order.
    pub fn index_names(&self) -> Vec<String> {
        self.indexes
            .with(|v| v.iter().map(|r| r.name.clone()).collect())
    }

    /// Is any index registered? (Planner hook — one lock-free snapshot
    /// peek, unlike [`Staccato::index_names`].)
    pub(crate) fn has_indexes(&self) -> bool {
        self.indexes.with(|v| !v.is_empty())
    }

    /// Compiled-query cache effectiveness counters.
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.cache.stats()
    }

    /// Buffer-pool counters of the underlying store (shared by every
    /// query on this session).
    pub fn pool_stats(&self) -> PoolStats {
        self.store.db().pool().stats()
    }

    /// The first registered index whose dictionary contains `term`
    /// (planner hook). Clones the registry snapshot out of the cell
    /// (`load`, not `with`) because the dictionary probe does page I/O —
    /// too long to sit inside the RCU reader gate.
    pub(crate) fn index_covering(&self, term: &str) -> Result<Option<String>, QueryError> {
        let indexes = self.indexes.load();
        for reg in indexes.iter() {
            if reg.index.contains_term(self.store.db().pool(), term)? {
                return Ok(Some(reg.name.clone()));
            }
        }
        Ok(None)
    }

    /// The shared planning preamble: compile the pattern, choose the
    /// plan. Every surface (`plan`, `explain`, `execute`, SQL `EXPLAIN`)
    /// goes through here, so they agree by construction — and all of
    /// them share the compiled-query cache, so repeated traffic skips
    /// pattern compilation and access-path choice entirely.
    fn compile_and_plan(&self, request: &QueryRequest) -> Result<(Arc<Query>, Plan), QueryError> {
        let key = CacheKey::of(request);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(hit);
        }
        let epoch = self.cache.epoch();
        let query = Arc::new(request.compile()?);
        let plan = plan_request(self, request, &query)?;
        self.cache
            .insert(key, Arc::clone(&query), plan.clone(), epoch);
        Ok((query, plan))
    }

    /// Compile `request` and choose its access path without executing.
    pub fn plan(&self, request: &QueryRequest) -> Result<Plan, QueryError> {
        Ok(self.compile_and_plan(request)?.1)
    }

    /// The `EXPLAIN` text: the compiled pattern, its anchor, and the
    /// chosen plan, human-readable.
    pub fn explain(&self, request: &QueryRequest) -> Result<String, QueryError> {
        let (query, plan) = self.compile_and_plan(request)?;
        Ok(render_explain(request, &query, &plan))
    }

    /// Execute `request`: plan, run, rank (or aggregate), and account.
    /// Planning and execution are timed separately into
    /// [`ExecStats::plan_wall`] and [`ExecStats::exec_wall`]; the
    /// buffer-pool counters accumulated during the execution land in
    /// [`ExecStats::pool`].
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryOutput, QueryError> {
        Ok(self.execute_with_query(request)?.0)
    }

    /// [`Staccato::execute`], also handing back the compiled query it
    /// ran, so `EXPLAIN ANALYZE` can render the report for exactly the
    /// plan that executed without a second cache round-trip.
    fn execute_with_query(
        &self,
        request: &QueryRequest,
    ) -> Result<(QueryOutput, Arc<Query>), QueryError> {
        // Visibility gate: hold the apply latch (shared) for the whole
        // execution so a concurrent ingest batch becomes visible to this
        // query entirely or not at all.
        let _apply = self.applies.read();
        let pool_before = self.store.db().pool().stats();
        let planning = Instant::now();
        let (query, plan) = self.compile_and_plan(request)?;
        let mut stats = ExecStats {
            plan_wall: planning.elapsed(),
            ..ExecStats::default()
        };
        let executing = Instant::now();
        let (answers, aggregate) = match &plan {
            Plan::Aggregate { func, input } => {
                let mut agg = StreamingAggregate::new(request.min_prob);
                self.run_access_path(
                    input,
                    request,
                    &query,
                    &mut Sink::Aggregate(&mut agg),
                    &mut stats,
                )?;
                (
                    Vec::new(),
                    Some(AggregateResult {
                        func: *func,
                        value: agg.finish(*func),
                    }),
                )
            }
            access => {
                let mut topk =
                    TopK::with_limit_offset(request.num_ans, request.offset, request.min_prob);
                self.run_access_path(
                    access,
                    request,
                    &query,
                    &mut Sink::Ranked(&mut topk),
                    &mut stats,
                )?;
                (topk.into_ranked(), None)
            }
        };
        stats.exec_wall = executing.elapsed();
        stats.pool = self.store.db().pool().stats().delta_since(pool_before);
        Ok((
            QueryOutput {
                answers,
                plan,
                stats,
                aggregate,
                explain: None,
                ingest: None,
                history: None,
            },
            query,
        ))
    }

    /// Run one relational access path, delivering answers into `sink`.
    fn run_access_path(
        &self,
        plan: &Plan,
        request: &QueryRequest,
        query: &Query,
        sink: &mut Sink<'_>,
        stats: &mut ExecStats,
    ) -> Result<(), QueryError> {
        match plan {
            Plan::FileScan {
                approach,
                parallelism,
            } => exec_filescan(&self.store, *approach, query, *parallelism, sink, stats),
            Plan::IndexProbe { index, .. } => {
                let index = self
                    .index(index)
                    .expect("planner only returns registered indexes");
                exec_index_probe(&self.store, &index, query, sink, stats)
            }
            Plan::Aggregate { .. } => unreachable!(
                "aggregates wrap exactly one access path; request {:?}",
                request.pattern
            ),
            Plan::Ingest { .. } | Plan::HistoryScan => {
                unreachable!("write and history plans never come from the relational planner")
            }
        }
    }

    /// Run one SQL statement — the paper's §2.3 interface:
    ///
    /// ```ignore
    /// let out = session.sql(
    ///     "SELECT DataKey, Prob FROM StaccatoData \
    ///      WHERE Data LIKE '%Ford%' AND Prob >= 0.25 LIMIT 10",
    /// )?;
    /// let count = session.sql(
    ///     "SELECT COUNT(*) FROM StaccatoData WHERE Data LIKE '%Ford%'",
    /// )?;
    /// println!("{}", session.sql("EXPLAIN SELECT DataKey FROM MAPData \
    ///      WHERE Data REGEXP 'Public Law (8|9)\\d'")?.explain.unwrap());
    /// ```
    ///
    /// A statement without `LIMIT` returns at most the paper's `NumAns`
    /// default of 100 ranked rows (aggregates always see every
    /// qualifying line). Statements with `?` placeholders must go
    /// through [`Staccato::prepare`] / [`Staccato::execute_prepared`]
    /// instead.
    pub fn sql(&self, statement: &str) -> Result<QueryOutput, QueryError> {
        let stmt = parse_statement(statement)?;
        if stmt.param_count() > 0 {
            return Err(SqlError::new(
                0,
                "statement has '?' placeholders; use prepare() and execute_prepared()",
            )
            .into());
        }
        self.run_statement(&stmt)
    }

    /// Parse a SQL statement with `?` placeholders for later execution.
    pub fn prepare(&self, statement: &str) -> Result<PreparedQuery, QueryError> {
        PreparedQuery::new(statement)
    }

    /// Bind `params` to a prepared statement's placeholders (left to
    /// right) and run it.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        params: &[SqlValue],
    ) -> Result<QueryOutput, QueryError> {
        self.run_statement(&prepared.bind(params)?)
    }

    fn run_statement(&self, stmt: &Statement) -> Result<QueryOutput, QueryError> {
        match stmt {
            Statement::Insert(insert) => return self.run_insert(insert),
            Statement::SelectHistory(select) => return self.run_history_select(select),
            _ => {}
        }
        let request = crate::sql::lower_statement(stmt)?;
        if stmt.is_explain_analyze() {
            // EXPLAIN ANALYZE: execute for real, then append the observed
            // counters to the same plan report `EXPLAIN` renders.
            let (mut out, query) = self.execute_with_query(&request)?;
            let returned = match &out.aggregate {
                Some(agg) => format!("{} = {}", agg.func.sql_name(), agg.value),
                None => format!("{} ranked row(s)", out.answers.len()),
            };
            out.explain = Some(render_explain_analyze(
                &request, &query, &out.plan, &out.stats, &returned,
            ));
            return Ok(out);
        }
        if !stmt.is_explain() {
            return self.execute(&request);
        }
        // EXPLAIN: plan only, render through the same path as `explain()`.
        let planning = Instant::now();
        let (query, plan) = self.compile_and_plan(&request)?;
        let stats = ExecStats {
            plan_wall: planning.elapsed(),
            ..ExecStats::default()
        };
        Ok(QueryOutput {
            answers: Vec::new(),
            explain: Some(render_explain(&request, &query, &plan)),
            plan,
            stats,
            aggregate: None,
            ingest: None,
            history: None,
        })
    }

    /// Execute a SQL `INSERT INTO StaccatoData …`: package the rows as an
    /// [`IngestBatch`] (provider `"sql"`) and push them through the same
    /// durable path as [`Staccato::ingest`].
    fn run_insert(&self, insert: &Insert) -> Result<QueryOutput, QueryError> {
        let started = Instant::now();
        let mut batch = IngestBatch::new();
        for row in &insert.rows {
            let name = row
                .doc_name
                .value()
                .ok_or_else(|| SqlError::new(0, "statement still has unbound '?' parameters"))?;
            let data = row
                .data
                .value()
                .ok_or_else(|| SqlError::new(0, "statement still has unbound '?' parameters"))?;
            let mut doc = DocumentInput::new(name.clone(), data.clone());
            doc.provider = "sql".to_string();
            batch = batch.doc(doc);
        }
        let (receipt, wal) = self.ingest_inner(batch)?;
        let rows = receipt.docs;
        let stats = ExecStats {
            exec_wall: started.elapsed(),
            wal,
            ..ExecStats::default()
        };
        Ok(QueryOutput {
            answers: Vec::new(),
            plan: Plan::Ingest { rows },
            stats,
            aggregate: None,
            explain: None,
            ingest: Some(receipt),
            history: None,
        })
    }

    /// Execute `SELECT * FROM StaccatoHistory …`: scan the durable
    /// ingest-history table, filter with `LIKE` on `FileName`, truncate
    /// to `LIMIT`.
    fn run_history_select(&self, select: &HistorySelect) -> Result<QueryOutput, QueryError> {
        let started = Instant::now();
        let pattern =
            match &select.file_like {
                Some(arg) => Some(arg.value().ok_or_else(|| {
                    SqlError::new(0, "statement still has unbound '?' parameters")
                })?),
                None => None,
            };
        let limit =
            match &select.limit {
                Some(arg) => Some(*arg.value().ok_or_else(|| {
                    SqlError::new(0, "statement still has unbound '?' parameters")
                })?),
                None => None,
            };
        let _apply = self.applies.read();
        let mut rows = self.store.history_rows()?;
        if let Some(pat) = pattern {
            rows.retain(|r| like_match(pat, &r.file_name));
        }
        if let Some(n) = limit {
            rows.truncate(n as usize);
        }
        let stats = ExecStats {
            rows_scanned: rows.len() as u64,
            exec_wall: started.elapsed(),
            ..ExecStats::default()
        };
        Ok(QueryOutput {
            answers: Vec::new(),
            plan: Plan::HistoryScan,
            stats,
            aggregate: None,
            explain: None,
            ingest: None,
            history: Some(rows),
        })
    }
}

/// Knobs for [`Staccato::recover_with`]. The defaults match
/// [`Staccato::recover`]: a 1024-frame pool, default load options, and
/// fsync-on-commit for the re-attached WAL.
pub struct RecoverOptions {
    /// Buffer-pool frames for the reopened database.
    pub pool_frames: usize,
    /// Channel/representation options the store was originally loaded
    /// with — replay rebuilds nothing, but fresh post-recovery ingests
    /// build artifacts with these.
    pub load: LoadOptions,
    /// Durability policy for the re-attached WAL.
    pub sync: SyncPolicy,
}

impl Default for RecoverOptions {
    fn default() -> RecoverOptions {
        RecoverOptions {
            pool_frames: 1024,
            load: LoadOptions::default(),
            sync: SyncPolicy::Commit,
        }
    }
}

impl Staccato {
    /// Attach a write-ahead log to this session, making [`Staccato::ingest`]
    /// durable. `dir` must not already contain WAL segments (recovery goes
    /// through [`Staccato::recover`] instead). Errors if a WAL is already
    /// attached.
    pub fn attach_wal(&self, dir: &Path, sync: SyncPolicy) -> Result<(), QueryError> {
        let mut writer = self.writer.lock();
        if writer.wal.is_some() {
            return Err(QueryError::Ingest("a WAL is already attached".to_string()));
        }
        writer.wal = Some(Wal::create(dir, sync)?);
        Ok(())
    }

    /// Ingest a batch of documents: build their artifacts, log the batch
    /// to the WAL (if attached), then apply it atomically — rows in all
    /// seven tables, a `StaccatoHistory` row per document, and postings
    /// appended to every registered inverted index. Readers see the whole
    /// batch or none of it.
    pub fn ingest(&self, batch: IngestBatch) -> Result<IngestReceipt, QueryError> {
        Ok(self.ingest_inner(batch)?.0)
    }

    /// [`Staccato::ingest`], also returning the per-call WAL counter
    /// deltas for [`ExecStats`].
    fn ingest_inner(&self, batch: IngestBatch) -> Result<(IngestReceipt, WalCounters), QueryError> {
        if batch.docs.is_empty() {
            return Err(QueryError::Ingest("batch has no documents".to_string()));
        }
        let ingested_at = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0);
        // The writer lock serializes whole batches: sequence numbers and
        // key ranges are assigned and consumed under it.
        let mut writer = self.writer.lock();
        let batch_seq = writer.next_seq;
        let first_key = self.store.line_count() as i64;
        let opts = self.store.load_options();
        let mut docs = Vec::with_capacity(batch.docs.len());
        for (i, d) in batch.docs.iter().enumerate() {
            let key = first_key + i as i64;
            let mut art = match &d.sfa {
                Some(blob) => {
                    let sfa = codec::decode(blob).map_err(|e| {
                        QueryError::Ingest(format!("document {:?}: bad SFA blob: {e}", d.name))
                    })?;
                    build_line_from_sfa(opts, &sfa, &d.text)
                }
                None => build_line(self.store.channel(), opts, &d.text, key as u64),
            };
            art.doc_name = d.name.clone();
            art.sfa_num = 0;
            docs.push(DecodedDoc {
                art,
                provider: d.provider.clone(),
                confidence: d.confidence,
                processing_time_ms: d.processing_time_ms,
                ingested_at,
            });
        }
        let decoded = DecodedBatch {
            batch_seq,
            first_key,
            docs,
        };
        let mut wal_delta = WalCounters::default();
        let mut wal_bytes = 0u64;
        let mut durability: Option<(WalFlusher, u64)> = None;
        if let Some(wal) = writer.wal.as_mut() {
            let payload = encode_batch(&decoded);
            let sync_before = wal.appender_fsyncs();
            wal_bytes = wal.append(&payload)?;
            wal_delta.records_appended = 1;
            wal_delta.bytes_logged = wal_bytes;
            wal_delta.fsyncs = wal.appender_fsyncs() - sync_before;
            durability = Some((wal.flusher(), wal.last_lsn()));
        }
        self.apply_decoded(&decoded)?;
        writer.next_seq = batch_seq + 1;
        // Checkpoint-policy odometer, read under the same latch that
        // ordered the batch. The crossing ingest rings the doorbell and
        // resets, so one threshold crossing wakes the checkpointer once.
        writer.ckpt_batches_since += 1;
        writer.ckpt_bytes_since += wal_bytes;
        let ckpt_due = {
            let policy = self.ckpt.signal.lock().policy;
            policy.due(writer.ckpt_batches_since, writer.ckpt_bytes_since)
        };
        if ckpt_due {
            writer.ckpt_batches_since = 0;
            writer.ckpt_bytes_since = 0;
        }
        let lsn = durability.as_ref().map(|(_, lsn)| *lsn).unwrap_or(0);
        // Group commit: release the writer latch *before* waiting for
        // durability, so the next writer can append while our fsync is
        // in flight — one leader's fsync then covers every batch
        // enqueued behind it. The batch is applied (visible) but not
        // yet acknowledged; only the Ok return below promises
        // durability, and recovery replays every batch whose receipt
        // was returned.
        drop(writer);
        if ckpt_due {
            let mut state = self.ckpt.signal.lock();
            state.pending = true;
            drop(state);
            self.ckpt.signal.wake.notify_all();
        }
        if let Some((flusher, lsn)) = durability {
            let ticket = flusher.wait_durable(lsn)?;
            wal_delta.fsyncs += ticket.fsyncs_led;
            wal_delta.group_commits = ticket.fsyncs_led;
            wal_delta.flush_wait = ticket.wait;
        }
        let receipt = IngestReceipt {
            batch_seq,
            first_key,
            docs: decoded.docs.len(),
            wal_bytes,
            lsn,
        };
        Ok((receipt, wal_delta))
    }

    /// Apply one decoded batch to the store and every registered index,
    /// under the apply latch's write side — the atomic-visibility point
    /// of the write path. Caller holds the writer lock.
    fn apply_decoded(&self, batch: &DecodedBatch) -> Result<(), QueryError> {
        let _apply = self.applies.write();
        // Snapshot clone (`load`): posting extension does page I/O and
        // must not run inside the RCU reader gate. A registration racing
        // this apply either sees the batch's lines in its build scan (it
        // holds `applies.read`, so it runs strictly before or after this
        // whole apply) or extends from the next batch on.
        let indexes = self.indexes.load();
        let pool = self.store.db().pool();
        for (i, doc) in batch.docs.iter().enumerate() {
            let key = batch.first_key + i as i64;
            self.store.insert_line_artifacts(key, &doc.art)?;
            self.store.insert_history(&HistoryRow {
                data_key: key,
                file_name: doc.art.doc_name.clone(),
                provider: doc.provider.clone(),
                confidence: doc.confidence,
                processing_time_ms: doc.processing_time_ms,
                ingested_at: doc.ingested_at,
                batch_seq: batch.batch_seq,
            })?;
            if !indexes.is_empty() {
                let graph = codec::decode(&doc.art.stac_blob).map_err(|e| {
                    QueryError::Ingest(format!("Staccato blob failed to decode: {e}"))
                })?;
                for reg in indexes.iter() {
                    reg.index.extend_with_line(pool, &reg.trie, key, &graph)?;
                }
            }
        }
        self.store.bump_lines(batch.docs.len());
        self.totals.batches.fetch_add(1, Ordering::AcqRel);
        self.totals
            .docs
            .fetch_add(batch.docs.len() as u64, Ordering::AcqRel);
        // Plans may key on corpus statistics; force re-planning.
        self.cache.invalidate();
        Ok(())
    }

    /// Persist the store's pages to disk and garbage-collect the WAL.
    /// Taken under the writer lock, so a checkpoint always lands on a
    /// batch boundary — the database file never contains half a batch,
    /// which is what lets recovery replay the WAL idempotently on top
    /// of it.
    ///
    /// Ordering, which is also the segment-GC safety argument:
    /// 1. flush the WAL — everything applied is now durable in the log
    ///    (appended == applied under the writer latch), so the saved
    ///    database is always a subset of the durable log;
    /// 2. save the database — its contents now cover every appended
    ///    record;
    /// 3. rotate and delete the sealed segments — every deleted
    ///    record's effect is in the saved file, so recovery never needs
    ///    it. A crash between any two steps only leaves extra segments
    ///    behind, never missing ones.
    pub fn checkpoint(&self) -> Result<(), QueryError> {
        let mut writer = self.writer.lock();
        if let Some(wal) = writer.wal.as_mut() {
            wal.flush()?;
        }
        self.store.db().save()?;
        if let Some(wal) = writer.wal.as_mut() {
            wal.gc_after_checkpoint()?;
        }
        writer.ckpt_batches_since = 0;
        writer.ckpt_bytes_since = 0;
        self.totals.checkpoints.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Start (or re-configure) the background checkpointer: a dedicated
    /// thread that waits on a doorbell — no busy-wait, no polling — and
    /// runs [`Staccato::checkpoint`] whenever the write path crosses
    /// `policy`'s batch or byte threshold. Snapshots therefore happen
    /// off the write path: the triggering ingest only rings the
    /// doorbell and returns. The thread shuts down with the session.
    pub fn start_background_checkpoints(
        session: &Arc<Staccato>,
        policy: CheckpointPolicy,
    ) -> Result<(), QueryError> {
        let mut state = session.ckpt.signal.lock();
        state.policy = policy;
        if state.thread.is_none() {
            let weak = Arc::downgrade(session);
            let signal = Arc::clone(&session.ckpt.signal);
            let handle = std::thread::Builder::new()
                .name("staccato-checkpointer".to_string())
                .spawn(move || checkpointer_loop(weak, signal))
                .map_err(|e| QueryError::Ingest(format!("spawning the checkpointer: {e}")))?;
            state.thread = Some(handle);
        }
        Ok(())
    }

    /// Reopen a checkpointed database and replay `wal_dir` over it —
    /// the crash-recovery entry point. Torn trailing records are
    /// truncated, already-applied batches are skipped (replay is
    /// idempotent), and the session comes back with the WAL re-attached
    /// for further ingests.
    pub fn recover(db_path: &Path, wal_dir: &Path) -> Result<Staccato, QueryError> {
        Staccato::recover_with(db_path, wal_dir, &RecoverOptions::default())
    }

    /// [`Staccato::recover`] with explicit pool size, load options, and
    /// durability policy.
    pub fn recover_with(
        db_path: &Path,
        wal_dir: &Path,
        opts: &RecoverOptions,
    ) -> Result<Staccato, QueryError> {
        let db = Database::open(db_path, opts.pool_frames)?;
        let store = OcrStore::reopen(db, &opts.load)?;
        let session = Staccato::open(store);
        let (wal, records) = Wal::open(wal_dir, opts.sync)?;
        let mut max_seq = 0u64;
        let mut replayed = 0u64;
        for payload in &records {
            let decoded = decode_batch(payload)?;
            max_seq = max_seq.max(decoded.batch_seq);
            let committed = session.store.line_count() as i64;
            if decoded.first_key + decoded.docs.len() as i64 <= committed {
                // The checkpoint already contains this batch; skip it.
                continue;
            }
            if decoded.first_key != committed {
                return Err(QueryError::CorruptWal(
                    "WAL batch does not align with the store's committed tail",
                ));
            }
            session.apply_decoded(&decoded)?;
            replayed += 1;
        }
        {
            let mut writer = session.writer.lock();
            writer.wal = Some(wal);
            writer.next_seq = max_seq + 1;
        }
        session.totals.replays.store(replayed, Ordering::Release);
        Ok(session)
    }

    /// Session-cumulative ingest and WAL counters for `/stats`.
    pub fn ingest_stats(&self) -> IngestStats {
        let writer = self.writer.lock();
        let wal = writer.wal.as_ref().map(|w| w.stats()).unwrap_or_default();
        drop(writer);
        let background_checkpoints = self.ckpt.signal.lock().runs;
        IngestStats {
            batches: self.totals.batches.load(Ordering::Acquire),
            docs: self.totals.docs.load(Ordering::Acquire),
            wal_records_appended: wal.records_appended,
            wal_bytes_logged: wal.bytes_logged,
            wal_fsyncs: wal.fsyncs,
            replays: self.totals.replays.load(Ordering::Acquire),
            wal_group_commits: wal.group_commits,
            wal_batches_per_fsync: wal.batches_per_fsync,
            wal_flush_wait_p95: wal.flush_wait_p95,
            wal_segments_deleted: wal.segments_deleted,
            checkpoints: self.totals.checkpoints.load(Ordering::Acquire),
            background_checkpoints,
        }
    }
}

/// The background checkpointer's main loop: sleep on the doorbell until
/// an ingest crosses the policy threshold (or shutdown), then snapshot
/// through the ordinary [`Staccato::checkpoint`] path. Holds only a
/// `Weak` session reference so it never keeps a dropped session alive;
/// if the upgrade fails the session is gone and the thread exits.
fn checkpointer_loop(session: Weak<Staccato>, signal: Arc<CheckpointSignal>) {
    loop {
        {
            let mut state = signal.lock();
            while !state.pending && !state.shutdown {
                state = signal.wake.wait(state).unwrap_or_else(|e| e.into_inner());
            }
            if state.shutdown {
                return;
            }
            state.pending = false;
        }
        let Some(session) = session.upgrade() else {
            return;
        };
        let outcome = session.checkpoint();
        drop(session);
        let mut state = signal.lock();
        match outcome {
            Ok(()) => state.runs += 1,
            Err(_) => state.errors += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Approach;
    use crate::plan::PlanPreference;
    use staccato_core::StaccatoParams;
    use staccato_ocr::{generate, ChannelConfig, CorpusKind};

    fn session(lines: usize, seed: u64) -> Staccato {
        let dataset = generate(CorpusKind::CongressActs, lines, seed);
        let db = Database::in_memory(1024).unwrap();
        let opts = LoadOptions {
            channel: ChannelConfig::compact(seed),
            kmap_k: 8,
            staccato: StaccatoParams::new(10, 8),
            parallelism: 2,
        };
        Staccato::load(db, &dataset, &opts).unwrap()
    }

    #[test]
    fn execute_reports_plan_and_stats() {
        let s = session(30, 5);
        let out = s
            .execute(&QueryRequest::keyword("President").approach(Approach::Map))
            .unwrap();
        assert_eq!(
            out.plan,
            Plan::FileScan {
                approach: Approach::Map,
                parallelism: 1
            }
        );
        assert_eq!(out.stats.rows_scanned, 30);
        assert_eq!(out.stats.lines_evaluated, 30);
        assert!(out.answers.iter().all(|a| a.probability > 0.0));
    }

    #[test]
    fn no_index_means_filescan_even_when_anchored() {
        let s = session(20, 9);
        let plan = s.plan(&QueryRequest::keyword("President")).unwrap();
        assert_eq!(
            plan,
            Plan::FileScan {
                approach: Approach::Staccato,
                parallelism: 1
            }
        );
    }

    #[test]
    fn registered_index_flips_anchored_queries_to_probe() {
        let s = session(40, 21);
        let postings = s
            .register_index(&Trie::build(["president", "public"]), "inv")
            .unwrap();
        assert!(postings > 0);
        let plan = s.plan(&QueryRequest::keyword("President")).unwrap();
        assert_eq!(
            plan,
            Plan::IndexProbe {
                index: "inv".into(),
                anchor: "president".into()
            }
        );
        // Unanchored stays a scan; anchor outside the dictionary too.
        assert!(!s
            .plan(&QueryRequest::regex(r"\d\d\d"))
            .unwrap()
            .is_index_probe());
        assert!(!s
            .plan(&QueryRequest::keyword("Commission"))
            .unwrap()
            .is_index_probe());
        // Other representations never probe.
        assert!(!s
            .plan(&QueryRequest::keyword("President").approach(Approach::FullSfa))
            .unwrap()
            .is_index_probe());
    }

    #[test]
    fn forced_probe_surfaces_reasons() {
        let s = session(20, 2);
        let force = |req: QueryRequest| req.plan_preference(PlanPreference::ForceIndexProbe);
        assert!(matches!(
            s.plan(&force(QueryRequest::keyword("President"))),
            Err(QueryError::NoUsableIndex(_))
        ));
        s.register_index(&Trie::build(["public"]), "inv").unwrap();
        assert!(matches!(
            s.plan(&force(QueryRequest::keyword("President"))),
            Err(QueryError::TermNotInDictionary(_))
        ));
        assert!(matches!(
            s.plan(&force(QueryRequest::regex(r"\d\d\d"))),
            Err(QueryError::NotAnchored(_))
        ));
        assert!(matches!(
            s.plan(&force(
                QueryRequest::keyword("public").approach(Approach::Map)
            )),
            Err(QueryError::NoUsableIndex(_))
        ));
    }

    #[test]
    fn probe_stats_count_postings() {
        let s = session(50, 31);
        s.register_index(&Trie::build(["public"]), "inv").unwrap();
        let out = s
            .execute(&QueryRequest::regex(r"Public Law (8|9)\d"))
            .unwrap();
        assert!(out.plan.is_index_probe());
        assert!(out.stats.postings_probed > 0);
        assert!(
            out.stats.rows_scanned <= 50,
            "probe fetches candidates only"
        );
    }

    #[test]
    fn duplicate_index_names_are_rejected() {
        let s = session(20, 4);
        s.register_index(&Trie::build(["public"]), "inv").unwrap();
        let err = s
            .register_index(&Trie::build(["president"]), "inv")
            .unwrap_err();
        assert!(
            matches!(err, QueryError::DuplicateIndex(ref n) if n == "inv"),
            "{err}"
        );
        // The original registration is untouched and still first.
        assert_eq!(s.index_names(), vec!["inv"]);
        assert!(s.index("inv").is_some());
        // A different name is fine.
        s.register_index(&Trie::build(["president"]), "inv2")
            .unwrap();
        assert_eq!(s.index_names(), vec!["inv", "inv2"]);
    }

    #[test]
    fn sql_matches_builder_execution() {
        let s = session(30, 5);
        let via_sql = s
            .sql("SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'President' LIMIT 100")
            .unwrap();
        let via_builder = s
            .execute(&QueryRequest::keyword("President").approach(Approach::Map))
            .unwrap();
        assert_eq!(via_sql.plan, via_builder.plan);
        assert_eq!(via_sql.answers.len(), via_builder.answers.len());
        for (a, b) in via_sql.answers.iter().zip(&via_builder.answers) {
            assert_eq!(a.data_key, b.data_key);
            assert!((a.probability - b.probability).abs() < 1e-15);
        }
        assert!(via_sql.aggregate.is_none());
        assert!(via_sql.explain.is_none());
    }

    #[test]
    fn sql_threshold_filters_answers() {
        let s = session(30, 5);
        let all = s
            .sql("SELECT DataKey FROM FullSFAData WHERE Data REGEXP 'the' LIMIT 1000")
            .unwrap();
        let cutoff = 0.5;
        let thresholded = s
            .sql("SELECT DataKey FROM FullSFAData WHERE Data REGEXP 'the' AND Prob >= 0.5 LIMIT 1000")
            .unwrap();
        let expected: Vec<i64> = all
            .answers
            .iter()
            .filter(|a| a.probability >= cutoff)
            .map(|a| a.data_key)
            .collect();
        assert_eq!(
            thresholded
                .answers
                .iter()
                .map(|a| a.data_key)
                .collect::<Vec<_>>(),
            expected
        );
        assert!(thresholded.answers.len() < all.answers.len());
    }

    #[test]
    fn sql_aggregates_run_streamingly() {
        let s = session(25, 9);
        let rows = s
            .sql("SELECT DataKey, Prob FROM StaccatoData WHERE Data REGEXP 'the' LIMIT 100000")
            .unwrap();
        let count = s
            .sql("SELECT COUNT(*) FROM StaccatoData WHERE Data REGEXP 'the'")
            .unwrap();
        let sum = s
            .sql("SELECT SUM(Prob) FROM StaccatoData WHERE Data REGEXP 'the'")
            .unwrap();
        let avg = s
            .sql("SELECT AVG(Prob) FROM StaccatoData WHERE Data REGEXP 'the'")
            .unwrap();
        assert_eq!(count.plan.kind(), "Aggregate");
        assert!(count.answers.is_empty());
        let count = count.aggregate.unwrap();
        let sum = sum.aggregate.unwrap();
        let avg = avg.aggregate.unwrap();
        assert_eq!(count.value, rows.answers.len() as f64);
        let expect_sum: f64 = rows.answers.iter().map(|a| a.probability).sum();
        assert!((sum.value - expect_sum).abs() < 1e-9);
        assert!((avg.value - expect_sum / count.value).abs() < 1e-9);
        // SUM(Prob) over the answer relation is E[COUNT(*)] (agg.rs).
        assert!(
            (sum.value - crate::agg::expected_count(&rows.answers)).abs() < 1e-9,
            "streaming SUM must equal the batch expected count"
        );
    }

    #[test]
    fn sql_explain_agrees_with_builder_explain() {
        let s = session(20, 13);
        s.register_index(&Trie::build(["president"]), "inv")
            .unwrap();
        let out = s
            .sql("EXPLAIN SELECT DataKey FROM StaccatoData WHERE Data REGEXP 'President' LIMIT 100")
            .unwrap();
        let text = out.explain.expect("EXPLAIN sets the text");
        assert!(out.answers.is_empty(), "EXPLAIN must not execute");
        assert_eq!(out.stats.exec_wall.as_nanos(), 0);
        assert_eq!(
            text,
            s.explain(&QueryRequest::keyword("President")).unwrap(),
            "SQL EXPLAIN and builder explain() must agree byte for byte"
        );
        assert!(text.contains("IndexProbe"), "{text}");
    }

    #[test]
    fn sql_rejects_unbound_params_and_prepared_path_binds_them() {
        let s = session(20, 3);
        let err = s
            .sql("SELECT DataKey FROM MAPData WHERE Data LIKE ?")
            .unwrap_err();
        assert!(err.to_string().contains("prepare"), "{err}");
        let p = s
            .prepare("SELECT DataKey FROM MAPData WHERE Data REGEXP ? LIMIT ?")
            .unwrap();
        let out = s
            .execute_prepared(&p, &[SqlValue::text("President"), SqlValue::Int(5)])
            .unwrap();
        let direct = s
            .sql("SELECT DataKey FROM MAPData WHERE Data REGEXP 'President' LIMIT 5")
            .unwrap();
        assert_eq!(out.answers.len(), direct.answers.len());
        for (a, b) in out.answers.iter().zip(&direct.answers) {
            assert_eq!(a.data_key, b.data_key);
        }
    }

    #[test]
    fn stats_time_planning_and_execution_separately() {
        let s = session(25, 17);
        let out = s.execute(&QueryRequest::keyword("President")).unwrap();
        assert!(out.stats.plan_wall.as_nanos() > 0);
        assert!(out.stats.exec_wall.as_nanos() > 0);
        assert_eq!(out.stats.wall(), out.stats.plan_wall + out.stats.exec_wall);
    }

    #[test]
    fn compiled_query_cache_hits_and_invalidates() {
        let s = session(30, 5);
        let req = QueryRequest::keyword("President");
        let first = s.execute(&req).unwrap();
        let before = s.query_cache_stats();
        assert!(before.misses >= 1);
        let second = s.execute(&req).unwrap();
        let after = s.query_cache_stats();
        assert!(after.hits > before.hits, "repeat traffic must hit");
        assert_eq!(first.answers, second.answers, "a cache hit changes nothing");
        // num_ans / min_prob only parameterize execution: same cache entry.
        s.execute(&req.clone().num_ans(5).min_prob(0.1)).unwrap();
        assert!(s.query_cache_stats().hits > after.hits);

        // Registering a covering index invalidates: the same request
        // re-plans onto the probe.
        assert!(!s.plan(&req).unwrap().is_index_probe());
        s.register_index(&Trie::build(["president"]), "inv")
            .unwrap();
        assert!(s.query_cache_stats().invalidations >= 1);
        assert!(s.plan(&req).unwrap().is_index_probe());
        let probed = s.execute(&req).unwrap();
        assert!(probed.plan.is_index_probe());
    }

    #[test]
    fn execute_attributes_pool_activity() {
        let s = session(25, 11);
        let out = s
            .execute(&QueryRequest::keyword("President").approach(Approach::Map))
            .unwrap();
        assert!(
            out.stats.pool.hits + out.stats.pool.misses > 0,
            "a filescan reads pages: {:?}",
            out.stats.pool
        );
    }

    #[test]
    fn ingest_appends_rows_history_and_sizes() {
        let s = session(10, 5);
        let before = s.sizes();
        let batch = IngestBatch::new()
            .doc(DocumentInput::new("a.png", "the President of the Senate"))
            .doc(DocumentInput::new(
                "b.png",
                "Public Law 95 is hereby amended",
            ));
        let receipt = s.ingest(batch).unwrap();
        assert_eq!(receipt.batch_seq, 1);
        assert_eq!(receipt.first_key, 10);
        assert_eq!(receipt.docs, 2);
        assert_eq!(receipt.wal_bytes, 0, "no WAL attached");
        // Freshness: counts and sizes reflect the batch immediately.
        assert_eq!(s.line_count(), 12);
        let after = s.sizes();
        assert!(after.text > before.text);
        assert!(after.staccato > before.staccato);
        // The new lines are queryable through ordinary SQL.
        let out = s
            .sql("SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Senate%' LIMIT 100")
            .unwrap();
        assert!(
            out.answers.iter().any(|a| a.data_key == 10),
            "ingested line must match: {:?}",
            out.answers
        );
        // And recorded in the history table, loaded corpus lines are not.
        let hist = s.sql("SELECT * FROM StaccatoHistory").unwrap();
        assert_eq!(hist.plan, Plan::HistoryScan);
        let rows = hist.history.unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].data_key, 10);
        assert_eq!(rows[0].file_name, "a.png");
        assert_eq!(rows[1].file_name, "b.png");
        assert_eq!(rows[0].batch_seq, 1);

        let empty = s.ingest(IngestBatch::new()).unwrap_err();
        assert!(matches!(empty, QueryError::Ingest(_)), "{empty}");
    }

    #[test]
    fn sql_insert_goes_through_the_ingest_path() {
        let s = session(10, 7);
        let out = s
            .sql(
                "INSERT INTO StaccatoData (DocName, Data) VALUES ('x.png', 'the President'), \
                  ('y.png', 'Public Law 88')",
            )
            .unwrap();
        assert_eq!(out.plan, Plan::Ingest { rows: 2 });
        let receipt = out.ingest.unwrap();
        assert_eq!(receipt.first_key, 10);
        assert_eq!(s.line_count(), 12);
        // Prepared INSERT binds both strings.
        let p = s
            .prepare("INSERT INTO StaccatoData (DocName, Data) VALUES (?, ?)")
            .unwrap();
        let out = s
            .execute_prepared(
                &p,
                &[SqlValue::text("z.png"), SqlValue::text("hello world")],
            )
            .unwrap();
        assert_eq!(out.ingest.unwrap().first_key, 12);
        // History filters by LIKE and honors LIMIT; SQL inserts record
        // the "sql" provider.
        let rows = s
            .sql("SELECT * FROM StaccatoHistory WHERE FileName LIKE '%.png' LIMIT 2")
            .unwrap()
            .history
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.provider == "sql"));
        let rows = s
            .sql("SELECT * FROM StaccatoHistory WHERE FileName LIKE 'z%'")
            .unwrap()
            .history
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].file_name, "z.png");
        // Unbound placeholders refuse to execute.
        let err = s
            .sql("INSERT INTO StaccatoData (DocName, Data) VALUES (?, ?)")
            .unwrap_err();
        assert!(err.to_string().contains("prepare"), "{err}");
    }

    #[test]
    fn ingest_extends_registered_indexes_incrementally() {
        let s = session(15, 21);
        s.register_index(&Trie::build(["senate"]), "inv").unwrap();
        let before = s.index("inv").unwrap().posting_count();
        s.ingest(IngestBatch::new().doc(DocumentInput::new("n.png", "the Senate shall convene")))
            .unwrap();
        assert!(
            s.index("inv").unwrap().posting_count() > before,
            "ingest must add postings for dictionary terms it contains"
        );
        // The probe path sees the new line without re-registering.
        let req = QueryRequest::keyword("Senate");
        let out = s.execute(&req).unwrap();
        assert!(out.plan.is_index_probe());
        assert!(
            out.answers.iter().any(|a| a.data_key == 15),
            "{:?}",
            out.answers
        );
    }

    #[test]
    fn ingest_stats_count_batches_and_docs() {
        let s = session(5, 3);
        let stats = s.ingest_stats();
        assert_eq!((stats.batches, stats.docs, stats.replays), (0, 0, 0));
        s.ingest(
            IngestBatch::new()
                .doc(DocumentInput::new("a", "one line"))
                .doc(DocumentInput::new("b", "two lines")),
        )
        .unwrap();
        s.ingest(IngestBatch::new().doc(DocumentInput::new("c", "three")))
            .unwrap();
        let stats = s.ingest_stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.docs, 3);
        assert_eq!(stats.wal_records_appended, 0, "no WAL attached");
    }

    #[test]
    fn explain_mentions_the_chosen_path() {
        let s = session(25, 7);
        let req = QueryRequest::keyword("President");
        assert!(s.explain(&req).unwrap().contains("FileScan"));
        s.register_index(&Trie::build(["president"]), "inv")
            .unwrap();
        let text = s.explain(&req).unwrap();
        assert!(text.contains("IndexProbe"), "{text}");
        assert!(text.contains("president"), "{text}");
    }
}
