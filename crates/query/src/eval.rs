//! Probability computation: `Pr[q]` for a containment DFA against each
//! representation.
//!
//! For string sets (MAP, k-MAP) each retained string is a disjoint
//! probabilistic event, so `Pr[q] = Σ_{strings s matching q} p(s)` (§3,
//! "Baseline Approaches").
//!
//! For SFAs (FullSFA, Staccato chunk graphs) the evaluation is the
//! forward dynamic program over `(SFA node, DFA state)` pairs: the
//! matrix-multiplication algorithm of \[45\] specialised to a deterministic
//! query automaton — linear in the data size and (at most) quadratic in
//! the number of DFA states, matching Table 1's cost model.

use staccato_automata::Dfa;
use staccato_sfa::Sfa;

/// Probability that a string drawn from the (sub-stochastic) set matches
/// the query DFA.
pub fn eval_strings<'a, I>(dfa: &Dfa, strings: I) -> f64
where
    I: IntoIterator<Item = (&'a str, f64)>,
{
    strings
        .into_iter()
        .filter(|(s, _)| dfa.is_accept(dfa.run_from(dfa.start(), s)))
        .map(|(_, p)| p)
        .sum()
}

/// Probability that the SFA emits a string accepted by the DFA.
///
/// State vectors are dense per SFA node (`q` floats); emissions advance
/// the DFA by running it over the label. Works for single-character OCR
/// SFAs and for Staccato's multi-character chunk edges alike.
pub fn eval_sfa(dfa: &Dfa, sfa: &Sfa) -> f64 {
    let q = dfa.state_count();
    let slots = sfa.num_node_slots() as usize;
    let mut vectors: Vec<Vec<f64>> = vec![Vec::new(); slots];
    let mut start_vec = vec![0.0; q];
    start_vec[dfa.start() as usize] = 1.0;
    vectors[sfa.start() as usize] = start_vec;

    let order = sfa.topo_order();
    for &v in &order {
        if vectors[v as usize].is_empty() {
            continue;
        }
        let src = std::mem::take(&mut vectors[v as usize]);
        for &eid in sfa.out_edges(v) {
            let edge = sfa.edge(eid).expect("live adjacency");
            for em in &edge.emissions {
                if em.prob <= 0.0 {
                    continue;
                }
                for (s, &mass) in src.iter().enumerate() {
                    if mass == 0.0 {
                        continue;
                    }
                    let s2 = dfa.run_from(s as u32, &em.label);
                    let dst = &mut vectors[edge.to as usize];
                    if dst.is_empty() {
                        *dst = vec![0.0; q];
                    }
                    dst[s2 as usize] += mass * em.prob;
                }
            }
        }
        if v == sfa.finish() {
            vectors[v as usize] = src;
        }
    }

    let fin = &vectors[sfa.finish() as usize];
    (0..q)
        .filter(|&s| dfa.is_accept(s as u32))
        .map(|s| fin.get(s).copied().unwrap_or(0.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use staccato_sfa::{Emission, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn figure1_ford_probability_is_012() {
        // The paper's running example: LIKE '%Ford%' finds the claim with
        // probability ≈ 0.12 (0.8 · 0.4 · 0.4 · 0.9).
        let q = Query::like("%Ford%").unwrap();
        let p = eval_sfa(&q.dfa, &figure1());
        assert!((p - 0.1152).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn eval_sfa_matches_enumeration_on_small_sfas() {
        let sfa = figure1();
        for pattern in ["Ford", "F0", "rd", "m3", "zzz", "o", " "] {
            let q = Query::keyword(pattern).unwrap();
            let brute: f64 = sfa
                .enumerate_strings(10_000)
                .into_iter()
                .filter(|(s, _)| s.contains(pattern))
                .map(|(_, p)| p)
                .sum();
            let dp = eval_sfa(&q.dfa, &sfa);
            assert!(
                (dp - brute).abs() < 1e-12,
                "pattern {pattern:?}: dp={dp} brute={brute}"
            );
        }
    }

    #[test]
    fn eval_sfa_regex_matches_enumeration() {
        let sfa = figure1();
        let q = Query::regex(r"(F|T)(0|o) r").unwrap();
        let brute: f64 = sfa
            .enumerate_strings(10_000)
            .into_iter()
            .filter(|(s, _)| {
                s.contains("F0 r") || s.contains("Fo r") || s.contains("T0 r") || s.contains("To r")
            })
            .map(|(_, p)| p)
            .sum();
        assert!((eval_sfa(&q.dfa, &sfa) - brute).abs() < 1e-12);
    }

    #[test]
    fn eval_strings_sums_disjoint_events() {
        let q = Query::keyword("Ford").unwrap();
        let strings = [("a Ford here", 0.25), ("no match", 0.5), ("Ford Ford", 0.1)];
        let p = eval_strings(&q.dfa, strings.iter().map(|(s, p)| (*s, *p)));
        assert!((p - 0.35).abs() < 1e-12);
    }

    #[test]
    fn eval_sfa_on_multichar_chunk_graph() {
        // A Staccato-style chunk SFA: labels span several characters and
        // matches may straddle a chunk boundary.
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("my Fo", 0.6), Emission::new("my F0", 0.4)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("rd car", 0.7), Emission::new("rd  ar", 0.3)],
        );
        let sfa = b.build(n[0], n[2]).unwrap();
        let q = Query::keyword("Ford").unwrap();
        // P(contains 'Ford') = P("my Fo") · 1.0 (both right chunks complete it).
        let p = eval_sfa(&q.dfa, &sfa);
        assert!((p - 0.6).abs() < 1e-12, "got {p}");
        let q2 = Query::keyword("rd c").unwrap();
        assert!((eval_sfa(&q2.dfa, &sfa) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn impossible_pattern_has_zero_probability() {
        let q = Query::keyword("xyzzy").unwrap();
        assert_eq!(eval_sfa(&q.dfa, &figure1()), 0.0);
    }

    #[test]
    fn pruned_sfa_probability_shrinks() {
        let mut sfa = figure1();
        let full = eval_sfa(&Query::keyword("Ford").unwrap().dfa, &sfa);
        // Remove the 'o' emission: 'Ford' becomes impossible.
        sfa.edge_mut(1)
            .unwrap()
            .emissions
            .retain(|e| e.label != "o");
        let pruned = eval_sfa(&Query::keyword("Ford").unwrap().dfa, &sfa);
        assert!(full > 0.0 && pruned == 0.0);
    }
}
