//! The textual SQL front-end: `SELECT ... WHERE Data LIKE ...` as a
//! string, compiled into the same planner/executor stack the
//! [`QueryRequest`](crate::plan::QueryRequest) builder feeds.
//!
//! The paper's §2.3 posture is that probabilistic OCR queries are
//! *ordinary SQL over Table 5* — `SELECT DataKey FROM StaccatoData WHERE
//! Data LIKE '%Ford%'` — and this module is that surface:
//!
//! ```text
//! text ── lexer ──▶ tokens ── parser ──▶ Statement (AST)
//!                                            │ lower
//!                                            ▼
//!                                      QueryRequest ──▶ planner ──▶ Plan
//! ```
//!
//! Supported grammar (see [`parser`] for the full production rules):
//!
//! ```text
//! [EXPLAIN [ANALYZE]] SELECT DataKey[, Prob] | COUNT(*) | SUM(Prob) | AVG(Prob)
//!   FROM MAPData | kMAPData | FullSFAData | StaccatoData
//!   WHERE Data LIKE '%...%' | Data REGEXP '...'
//!   [AND Prob >= t] [ORDER BY Prob DESC] [LIMIT n [OFFSET m]]
//!
//! INSERT INTO StaccatoData (DocName, Data) VALUES ('name', 'text')[, (?, ?)]*
//!
//! SELECT * FROM StaccatoHistory [WHERE FileName LIKE '...'] [LIMIT n]
//! ```
//!
//! `INSERT` routes each `VALUES` row through the WAL-backed ingest path
//! as one atomic batch (see [`Staccato::ingest`]); `SELECT * FROM
//! StaccatoHistory` scans the durable ingest-history table. Neither
//! supports `EXPLAIN` — they have exactly one access path each.
//!
//! [`Staccato::ingest`]: crate::session::Staccato::ingest
//!
//! `EXPLAIN` stops after planning; `EXPLAIN ANALYZE` executes the
//! statement and appends the observed [`ExecStats`](crate::plan::ExecStats)
//! (plan/exec wall split) and the query's buffer-pool hits / misses /
//! evictions to the plan report.
//!
//! A `SELECT` without `LIMIT` is capped at the paper's `NumAns` default
//! of 100 ranked rows — the same default as the
//! [`QueryRequest`](crate::plan::QueryRequest) builder — so state `LIMIT`
//! explicitly to retrieve more. Aggregates are never capped: `COUNT(*)`
//! counts every qualifying line regardless of any `LIMIT`.
//!
//! `?` placeholders may stand in for the pattern, the threshold, and the
//! limit; [`PreparedQuery::bind`] substitutes values positionally. The
//! grammar is closed under [`render_statement`]: `parse(render(stmt)) ==
//! stmt` for every statement whose literals the grammar can produce,
//! property-tested in `tests/sql.rs`.
//!
//! Entry points live on the session: [`Staccato::sql`],
//! [`Staccato::prepare`], [`Staccato::execute_prepared`].
//!
//! [`Staccato::sql`]: crate::session::Staccato::sql
//! [`Staccato::prepare`]: crate::session::Staccato::prepare
//! [`Staccato::execute_prepared`]: crate::session::Staccato::execute_prepared

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{
    quote_str, render_statement, HistorySelect, Insert, InsertRow, Predicate, Projection, Select,
    SqlArg, SqlTable, Statement,
};
pub use lower::{lower_statement, PreparedQuery, SqlValue};
pub use parser::parse_statement;

use std::fmt;

/// A lexing, parsing, lowering, or binding failure, with the byte offset
/// in the statement where it was noticed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Byte offset into the statement text (0 for statement-level errors).
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl SqlError {
    /// A new error at `position`.
    pub fn new(position: usize, message: impl Into<String>) -> SqlError {
        SqlError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SqlError {}
