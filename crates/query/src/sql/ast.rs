//! The SQL abstract syntax tree and its canonical renderer.
//!
//! The AST covers exactly the paper's query surface (§2.3, Figure 1C):
//! one `SELECT` over one representation table with one `Data LIKE` /
//! `Data REGEXP` predicate, an optional probability threshold, ordering,
//! a limit, and the three probabilistic aggregates. [`render_statement`]
//! produces the canonical spelling, and the grammar is closed under it:
//! `parse(render(stmt)) == stmt` for every statement whose literals the
//! grammar itself can produce — thresholds are non-negative finite
//! numbers, limits unsigned integers (a property test in `tests/sql.rs`
//! holds the two inverse over that space). The AST's fields are public,
//! so a hand-built statement with an out-of-range literal (a negative or
//! NaN threshold) renders to text the lexer rejects; lowering validates
//! thresholds to `[0, 1]` regardless.

use crate::agg::AggregateFunc;
use crate::exec::Approach;
use crate::plan::Dialect;
use std::fmt;

/// One SQL statement: a query, a request for its plan, a durable
/// `INSERT`, or a scan of the ingest-history table.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Select),
    /// `EXPLAIN SELECT ...` — plan only, nothing executes.
    Explain(Select),
    /// `EXPLAIN ANALYZE SELECT ...` — execute, then report the plan
    /// together with the counters the execution produced.
    ExplainAnalyze(Select),
    /// `INSERT INTO StaccatoData (DocName, Data) VALUES ...` — the
    /// WAL-backed write path.
    Insert(Insert),
    /// `SELECT * FROM StaccatoHistory ...` — the durable ingest-history
    /// table.
    SelectHistory(HistorySelect),
}

impl Statement {
    /// The wrapped representation-table `SELECT`, whether or not it is
    /// being explained; `None` for `INSERT` and history statements.
    pub fn select(&self) -> Option<&Select> {
        match self {
            Statement::Select(s) | Statement::Explain(s) | Statement::ExplainAnalyze(s) => Some(s),
            Statement::Insert(_) | Statement::SelectHistory(_) => None,
        }
    }

    /// Is this a plan-only `EXPLAIN` (no execution)?
    pub fn is_explain(&self) -> bool {
        matches!(self, Statement::Explain(_))
    }

    /// Is this an `EXPLAIN ANALYZE` (execute and report)?
    pub fn is_explain_analyze(&self) -> bool {
        matches!(self, Statement::ExplainAnalyze(_))
    }

    /// Number of `?` placeholders in the statement.
    pub fn param_count(&self) -> usize {
        match self {
            Statement::Select(s) | Statement::Explain(s) | Statement::ExplainAnalyze(s) => {
                let mut n = 0;
                if matches!(s.predicate.pattern, SqlArg::Param(_)) {
                    n += 1;
                }
                if matches!(s.predicate.min_prob, Some(SqlArg::Param(_))) {
                    n += 1;
                }
                if matches!(s.limit, Some(SqlArg::Param(_))) {
                    n += 1;
                }
                if matches!(s.offset, Some(SqlArg::Param(_))) {
                    n += 1;
                }
                n
            }
            Statement::Insert(i) => i
                .rows
                .iter()
                .map(|r| {
                    matches!(r.doc_name, SqlArg::Param(_)) as usize
                        + matches!(r.data, SqlArg::Param(_)) as usize
                })
                .sum(),
            Statement::SelectHistory(h) => {
                matches!(h.file_like, Some(SqlArg::Param(_))) as usize
                    + matches!(h.limit, Some(SqlArg::Param(_))) as usize
            }
        }
    }
}

/// `INSERT INTO StaccatoData (DocName, Data) VALUES (...), ...` — each
/// row becomes one ingested document, and the whole statement is one
/// atomic, WAL-logged batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// The `VALUES` rows, in statement order.
    pub rows: Vec<InsertRow>,
}

/// One `(DocName, Data)` tuple of an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertRow {
    /// The document name (`StaccatoHistory.FileName`).
    pub doc_name: SqlArg<String>,
    /// The line text the OCR channel transduces.
    pub data: SqlArg<String>,
}

/// `SELECT * FROM StaccatoHistory [WHERE FileName LIKE p] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistorySelect {
    /// The `FileName LIKE` pattern, if present.
    pub file_like: Option<SqlArg<String>>,
    /// Row cap, if present.
    pub limit: Option<SqlArg<u64>>,
}

/// The supported `SELECT` shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// What the query projects.
    pub projection: Projection,
    /// The representation table in `FROM`.
    pub table: SqlTable,
    /// The `WHERE` clause.
    pub predicate: Predicate,
    /// `ORDER BY Prob DESC` present? (The only supported ordering; the
    /// ranked executors always produce it, so the clause is declarative.)
    pub order_by_prob: bool,
    /// `LIMIT n` — the `NumAns` answer budget.
    pub limit: Option<SqlArg<u64>>,
    /// `OFFSET m` — ranked answers to skip before the budget applies
    /// (pagination). Grammar ties it to `LIMIT`: `LIMIT n OFFSET m`.
    pub offset: Option<SqlArg<u64>>,
}

/// The `SELECT` list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Projection {
    /// `SELECT DataKey`
    DataKey,
    /// `SELECT DataKey, Prob`
    DataKeyProb,
    /// `SELECT COUNT(*) | SUM(Prob) | AVG(Prob)`
    Aggregate(AggregateFunc),
}

/// The four queryable representation tables of the Table 5 schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlTable {
    /// `MAPData` — the single most likely transcription per line.
    Map,
    /// `kMAPData` — the k most likely transcriptions per line.
    KMap,
    /// `FullSFAData` — the complete OCR SFA.
    FullSfa,
    /// `StaccatoData` — the Staccato chunk graph.
    Staccato,
}

impl SqlTable {
    /// Canonical table name as written in SQL.
    pub fn name(self) -> &'static str {
        match self {
            SqlTable::Map => "MAPData",
            SqlTable::KMap => "kMAPData",
            SqlTable::FullSfa => "FullSFAData",
            SqlTable::Staccato => "StaccatoData",
        }
    }

    /// The representation a scan of this table evaluates.
    pub fn approach(self) -> Approach {
        match self {
            SqlTable::Map => Approach::Map,
            SqlTable::KMap => Approach::KMap,
            SqlTable::FullSfa => Approach::FullSfa,
            SqlTable::Staccato => Approach::Staccato,
        }
    }

    /// The table serving a representation (inverse of [`SqlTable::approach`]).
    pub fn of_approach(approach: Approach) -> SqlTable {
        match approach {
            Approach::Map => SqlTable::Map,
            Approach::KMap => SqlTable::KMap,
            Approach::FullSfa => SqlTable::FullSfa,
            Approach::Staccato => SqlTable::Staccato,
        }
    }

    /// Case-insensitive lookup of a table name.
    pub fn parse(name: &str) -> Option<SqlTable> {
        [
            SqlTable::Map,
            SqlTable::KMap,
            SqlTable::FullSfa,
            SqlTable::Staccato,
        ]
        .into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(name))
    }
}

/// The `WHERE` clause: one pattern predicate on `Data`, optionally
/// conjoined with a probability threshold on `Prob`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// `LIKE` or `REGEXP`.
    pub dialect: Dialect,
    /// The pattern literal (or a `?` placeholder).
    pub pattern: SqlArg<String>,
    /// `AND Prob >= t`, if present.
    pub min_prob: Option<SqlArg<f64>>,
}

/// A literal argument or a `?` placeholder (ordinal assigned left to
/// right by the parser, bound by [`PreparedQuery`](super::PreparedQuery)).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlArg<T> {
    /// An inline literal.
    Value(T),
    /// The `n`-th `?` of the statement (0-based).
    Param(u32),
}

impl<T> SqlArg<T> {
    /// The literal, if bound.
    pub fn value(&self) -> Option<&T> {
        match self {
            SqlArg::Value(v) => Some(v),
            SqlArg::Param(_) => None,
        }
    }
}

/// Quote a string as a SQL literal: wrap in `'...'`, doubling any
/// embedded quotes. Backslashes pass through verbatim, so regex escapes
/// like `\d` need no double-escaping.
pub fn quote_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

fn fmt_arg<T, F: Fn(&T) -> String>(arg: &SqlArg<T>, f: F) -> String {
    match arg {
        SqlArg::Value(v) => f(v),
        SqlArg::Param(_) => "?".to_string(),
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Insert(insert) => {
                write!(f, "INSERT INTO StaccatoData (DocName, Data) VALUES ")?;
                for (i, row) in insert.rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(
                        f,
                        "({}, {})",
                        fmt_arg(&row.doc_name, |s| quote_str(s)),
                        fmt_arg(&row.data, |s| quote_str(s)),
                    )?;
                }
                return Ok(());
            }
            Statement::SelectHistory(h) => {
                write!(f, "SELECT * FROM StaccatoHistory")?;
                if let Some(p) = &h.file_like {
                    write!(f, " WHERE FileName LIKE {}", fmt_arg(p, |s| quote_str(s)))?;
                }
                if let Some(n) = &h.limit {
                    write!(f, " LIMIT {}", fmt_arg(n, |v| v.to_string()))?;
                }
                return Ok(());
            }
            _ => {}
        }
        if self.is_explain() {
            write!(f, "EXPLAIN ")?;
        } else if self.is_explain_analyze() {
            write!(f, "EXPLAIN ANALYZE ")?;
        }
        let s = self.select().expect("explainable statements wrap a SELECT");
        let projection = match s.projection {
            Projection::DataKey => "DataKey",
            Projection::DataKeyProb => "DataKey, Prob",
            Projection::Aggregate(func) => func.sql_name(),
        };
        let dialect = match s.predicate.dialect {
            Dialect::Like => "LIKE",
            Dialect::Regex => "REGEXP",
        };
        write!(
            f,
            "SELECT {projection} FROM {} WHERE Data {dialect} {}",
            s.table.name(),
            fmt_arg(&s.predicate.pattern, |p| quote_str(p)),
        )?;
        if let Some(t) = &s.predicate.min_prob {
            write!(f, " AND Prob >= {}", fmt_arg(t, |v| format!("{v:?}")))?;
        }
        if s.order_by_prob {
            write!(f, " ORDER BY Prob DESC")?;
        }
        if let Some(n) = &s.limit {
            write!(f, " LIMIT {}", fmt_arg(n, |v| v.to_string()))?;
        }
        if let Some(m) = &s.offset {
            write!(f, " OFFSET {}", fmt_arg(m, |v| v.to_string()))?;
        }
        Ok(())
    }
}

/// Canonical SQL spelling of a statement; [`parse_statement`]'s inverse.
///
/// [`parse_statement`]: super::parse_statement
pub fn render_statement(stmt: &Statement) -> String {
    stmt.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_doubles_embedded_quotes_only() {
        assert_eq!(quote_str("%Ford%"), "'%Ford%'");
        assert_eq!(quote_str("O'Hare"), "'O''Hare'");
        assert_eq!(quote_str(r"Sec(\x)*\d"), r"'Sec(\x)*\d'");
    }

    #[test]
    fn table_names_round_trip_and_map_to_approaches() {
        for ap in Approach::all() {
            let t = SqlTable::of_approach(ap);
            assert_eq!(t.approach(), ap);
            assert_eq!(SqlTable::parse(t.name()), Some(t));
            assert_eq!(SqlTable::parse(&t.name().to_uppercase()), Some(t));
        }
        assert_eq!(SqlTable::parse("MasterData"), None);
    }

    #[test]
    fn canonical_rendering() {
        let stmt = Statement::Select(Select {
            projection: Projection::DataKeyProb,
            table: SqlTable::Staccato,
            predicate: Predicate {
                dialect: Dialect::Like,
                pattern: SqlArg::Value("%Ford%".into()),
                min_prob: Some(SqlArg::Value(0.25)),
            },
            order_by_prob: true,
            limit: Some(SqlArg::Value(10)),
            offset: Some(SqlArg::Value(20)),
        });
        assert_eq!(
            render_statement(&stmt),
            "SELECT DataKey, Prob FROM StaccatoData WHERE Data LIKE '%Ford%' \
             AND Prob >= 0.25 ORDER BY Prob DESC LIMIT 10 OFFSET 20"
        );
        let explain = Statement::Explain(Select {
            projection: Projection::Aggregate(AggregateFunc::CountStar),
            table: SqlTable::Map,
            predicate: Predicate {
                dialect: Dialect::Regex,
                pattern: SqlArg::Param(0),
                min_prob: None,
            },
            order_by_prob: false,
            limit: None,
            offset: None,
        });
        assert_eq!(
            render_statement(&explain),
            "EXPLAIN SELECT COUNT(*) FROM MAPData WHERE Data REGEXP ?"
        );
        assert_eq!(explain.param_count(), 1);
    }
}
