//! Lowering: AST → [`QueryRequest`], and `?` parameter binding.
//!
//! Lowering is where the SQL surface meets the planner: the table picks
//! the [`Approach`](crate::exec::Approach), `LIKE`/`REGEXP` pick the
//! pattern dialect, `AND Prob >= t` becomes the request's pushed-down
//! probability threshold, `LIMIT` becomes the `NumAns` budget, and an
//! aggregate projection turns the request into a
//! [`Plan::Aggregate`](crate::plan::Plan::Aggregate) at planning time.
//! Semantic errors (unbound `?`, threshold outside `[0, 1]`, `ORDER BY`
//! on an aggregate) surface here with the statement's canonical text.

use super::ast::{Projection, Select, SqlArg, Statement};
use super::parser::parse_statement;
use super::SqlError;
use crate::error::QueryError;
use crate::plan::{Dialect, QueryRequest};

/// A value bound to a `?` placeholder.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// A string — binds to a `LIKE`/`REGEXP` pattern slot.
    Text(String),
    /// A float — binds to a `Prob >=` threshold slot.
    Number(f64),
    /// An unsigned integer — binds to a `LIMIT` slot (or a threshold).
    Int(u64),
}

impl SqlValue {
    /// Convenience constructor for text parameters.
    pub fn text(s: impl Into<String>) -> SqlValue {
        SqlValue::Text(s.into())
    }

    fn kind(&self) -> &'static str {
        match self {
            SqlValue::Text(_) => "text",
            SqlValue::Number(_) => "number",
            SqlValue::Int(_) => "integer",
        }
    }
}

/// A parsed statement with `?` placeholders, ready to bind and run via
/// [`Staccato::execute_prepared`](crate::session::Staccato::execute_prepared).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedQuery {
    stmt: Statement,
}

impl PreparedQuery {
    /// Parse `src` into a prepared statement.
    pub fn new(src: &str) -> Result<PreparedQuery, QueryError> {
        Ok(PreparedQuery {
            stmt: parse_statement(src)?,
        })
    }

    /// Number of `?` placeholders awaiting values.
    pub fn param_count(&self) -> usize {
        self.stmt.param_count()
    }

    /// The canonical SQL text of the statement (placeholders as `?`).
    pub fn sql(&self) -> String {
        super::ast::render_statement(&self.stmt)
    }

    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Substitute `params` for the placeholders, left to right, producing
    /// a fully bound statement. Errors on arity or type mismatches.
    pub fn bind(&self, params: &[SqlValue]) -> Result<Statement, QueryError> {
        let expected = self.param_count();
        if params.len() != expected {
            return Err(SqlError::new(
                0,
                format!(
                    "statement has {expected} parameter(s) but {} value(s) were bound",
                    params.len()
                ),
            )
            .into());
        }
        let mut stmt = self.stmt.clone();
        match &mut stmt {
            Statement::Select(select)
            | Statement::Explain(select)
            | Statement::ExplainAnalyze(select) => {
                if let SqlArg::Param(n) = select.predicate.pattern {
                    select.predicate.pattern = match &params[n as usize] {
                        SqlValue::Text(s) => SqlArg::Value(s.clone()),
                        other => {
                            return Err(param_type_error(n, "a pattern string", other));
                        }
                    };
                }
                if let Some(SqlArg::Param(n)) = select.predicate.min_prob {
                    select.predicate.min_prob = Some(match &params[n as usize] {
                        SqlValue::Number(v) => SqlArg::Value(*v),
                        SqlValue::Int(v) => SqlArg::Value(*v as f64),
                        other => {
                            return Err(param_type_error(n, "a numeric threshold", other));
                        }
                    });
                }
                if let Some(SqlArg::Param(n)) = select.limit {
                    select.limit = Some(match &params[n as usize] {
                        SqlValue::Int(v) => SqlArg::Value(*v),
                        other => {
                            return Err(param_type_error(n, "an integer limit", other));
                        }
                    });
                }
                if let Some(SqlArg::Param(n)) = select.offset {
                    select.offset = Some(match &params[n as usize] {
                        SqlValue::Int(v) => SqlArg::Value(*v),
                        other => {
                            return Err(param_type_error(n, "an integer offset", other));
                        }
                    });
                }
            }
            Statement::Insert(insert) => {
                for row in &mut insert.rows {
                    if let SqlArg::Param(n) = row.doc_name {
                        row.doc_name = match &params[n as usize] {
                            SqlValue::Text(s) => SqlArg::Value(s.clone()),
                            other => {
                                return Err(param_type_error(n, "a document name string", other));
                            }
                        };
                    }
                    if let SqlArg::Param(n) = row.data {
                        row.data = match &params[n as usize] {
                            SqlValue::Text(s) => SqlArg::Value(s.clone()),
                            other => {
                                return Err(param_type_error(n, "a document text string", other));
                            }
                        };
                    }
                }
            }
            Statement::SelectHistory(history) => {
                if let Some(SqlArg::Param(n)) = history.file_like {
                    history.file_like = Some(match &params[n as usize] {
                        SqlValue::Text(s) => SqlArg::Value(s.clone()),
                        other => {
                            return Err(param_type_error(n, "a pattern string", other));
                        }
                    });
                }
                if let Some(SqlArg::Param(n)) = history.limit {
                    history.limit = Some(match &params[n as usize] {
                        SqlValue::Int(v) => SqlArg::Value(*v),
                        other => {
                            return Err(param_type_error(n, "an integer limit", other));
                        }
                    });
                }
            }
        }
        Ok(stmt)
    }
}

fn param_type_error(ordinal: u32, wanted: &str, got: &SqlValue) -> QueryError {
    SqlError::new(
        0,
        format!(
            "parameter {} must be {wanted}, got a {} value",
            ordinal + 1,
            got.kind()
        ),
    )
    .into()
}

/// Lower a fully bound statement to the [`QueryRequest`] the planner and
/// executors understand. `EXPLAIN` wrapping is the caller's business (the
/// session routes it through `render_explain`); lowering only reads the
/// inner `SELECT`.
pub fn lower_statement(stmt: &Statement) -> Result<QueryRequest, QueryError> {
    let Some(select) = stmt.select() else {
        return Err(SqlError::new(
            0,
            "only SELECT queries over the representation tables lower to a QueryRequest; \
             INSERT and StaccatoHistory statements execute directly",
        )
        .into());
    };
    lower_select(select)
}

fn lower_select(select: &Select) -> Result<QueryRequest, QueryError> {
    let Some(pattern) = select.predicate.pattern.value() else {
        return Err(SqlError::new(
            0,
            "statement still has unbound '?' parameters; use prepare() and bind values",
        )
        .into());
    };
    let mut request = match select.predicate.dialect {
        Dialect::Like => QueryRequest::like(pattern),
        Dialect::Regex => QueryRequest::regex(pattern),
    }
    .approach(select.table.approach());
    if let Some(arg) = &select.predicate.min_prob {
        let &t = arg.value().ok_or_else(|| {
            SqlError::new(
                0,
                "statement still has unbound '?' parameters; use prepare() and bind values",
            )
        })?;
        if !(0.0..=1.0).contains(&t) {
            return Err(
                SqlError::new(0, format!("probability threshold {t:?} is outside [0, 1]")).into(),
            );
        }
        request = request.min_prob(t);
    }
    if let Some(arg) = &select.limit {
        let &n = arg.value().ok_or_else(|| {
            SqlError::new(
                0,
                "statement still has unbound '?' parameters; use prepare() and bind values",
            )
        })?;
        request = request.num_ans(n as usize);
    }
    if let Some(arg) = &select.offset {
        let &m = arg.value().ok_or_else(|| {
            SqlError::new(
                0,
                "statement still has unbound '?' parameters; use prepare() and bind values",
            )
        })?;
        request = request.offset(m as usize);
    }
    if let Projection::Aggregate(func) = select.projection {
        if select.order_by_prob {
            return Err(SqlError::new(
                0,
                format!(
                    "ORDER BY Prob cannot apply to the single row {} returns",
                    func.sql_name()
                ),
            )
            .into());
        }
        if select.offset.is_some() {
            return Err(SqlError::new(
                0,
                format!(
                    "OFFSET cannot apply to the single row {} returns",
                    func.sql_name()
                ),
            )
            .into());
        }
        request = request.aggregate(func);
    }
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregateFunc;
    use crate::exec::Approach;

    fn lower(src: &str) -> Result<QueryRequest, QueryError> {
        lower_statement(&parse_statement(src)?)
    }

    #[test]
    fn lowering_fills_every_request_field() {
        let req = lower(
            "SELECT DataKey, Prob FROM kMAPData WHERE Data REGEXP 'Sec' AND Prob >= 0.5 \
             ORDER BY Prob DESC LIMIT 7",
        )
        .unwrap();
        assert_eq!(req.pattern, "Sec");
        assert_eq!(req.dialect, Dialect::Regex);
        assert_eq!(req.approach, Approach::KMap);
        assert_eq!(req.min_prob, 0.5);
        assert_eq!(req.num_ans, 7);
        assert_eq!(req.aggregate, None);
    }

    #[test]
    fn defaults_match_the_builder() {
        let req = lower("SELECT DataKey FROM StaccatoData WHERE Data LIKE '%Ford%'").unwrap();
        let built = QueryRequest::like("%Ford%");
        assert_eq!(req.num_ans, built.num_ans);
        assert_eq!(req.min_prob, built.min_prob);
        assert_eq!(req.approach, built.approach);
        assert_eq!(req.parallelism, built.parallelism);
    }

    #[test]
    fn aggregates_lower_and_reject_order_by() {
        let req = lower("SELECT SUM(Prob) FROM MAPData WHERE Data LIKE '%a%'").unwrap();
        assert_eq!(req.aggregate, Some(AggregateFunc::SumProb));
        let err = lower("SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%a%' ORDER BY Prob DESC")
            .unwrap_err();
        assert!(err.to_string().contains("ORDER BY"), "{err}");
    }

    #[test]
    fn threshold_range_is_validated() {
        assert!(lower("SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' AND Prob >= 0").is_ok());
        assert!(lower("SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' AND Prob >= 1.0").is_ok());
        let err =
            lower("SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' AND Prob >= 1.5").unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn offset_lowers_binds_and_rejects_aggregates() {
        let req =
            lower("SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' LIMIT 10 OFFSET 25").unwrap();
        assert_eq!(req.num_ans, 10);
        assert_eq!(req.offset, 25);
        let err = lower("SELECT COUNT(*) FROM MAPData WHERE Data LIKE '%a%' LIMIT 1 OFFSET 1")
            .unwrap_err();
        assert!(err.to_string().contains("OFFSET"), "{err}");

        let p =
            PreparedQuery::new("SELECT DataKey FROM MAPData WHERE Data LIKE ? LIMIT ? OFFSET ?")
                .unwrap();
        let stmt = p
            .bind(&[SqlValue::text("%a%"), SqlValue::Int(5), SqlValue::Int(15)])
            .unwrap();
        let req = lower_statement(&stmt).unwrap();
        assert_eq!((req.num_ans, req.offset), (5, 15));
        let ty = p
            .bind(&[SqlValue::text("%a%"), SqlValue::Int(5), SqlValue::text("x")])
            .unwrap_err();
        assert!(ty.to_string().contains("integer offset"), "{ty}");
    }

    #[test]
    fn unbound_params_refuse_to_lower() {
        let err = lower("SELECT DataKey FROM MAPData WHERE Data LIKE ?").unwrap_err();
        assert!(err.to_string().contains("unbound"), "{err}");
    }

    #[test]
    fn binding_substitutes_by_position_and_type() {
        let p = PreparedQuery::new(
            "SELECT DataKey FROM StaccatoData WHERE Data LIKE ? AND Prob >= ? LIMIT ?",
        )
        .unwrap();
        assert_eq!(p.param_count(), 3);
        let stmt = p
            .bind(&[
                SqlValue::text("%Ford%"),
                SqlValue::Number(0.25),
                SqlValue::Int(10),
            ])
            .unwrap();
        let req = lower_statement(&stmt).unwrap();
        assert_eq!(req.pattern, "%Ford%");
        assert_eq!(req.min_prob, 0.25);
        assert_eq!(req.num_ans, 10);
        // An Int binds to a threshold slot too (promoted to f64).
        let stmt = p
            .bind(&[SqlValue::text("%a%"), SqlValue::Int(1), SqlValue::Int(5)])
            .unwrap();
        assert_eq!(lower_statement(&stmt).unwrap().min_prob, 1.0);

        let arity = p.bind(&[SqlValue::text("%a%")]).unwrap_err();
        assert!(arity.to_string().contains("3 parameter"), "{arity}");
        let ty = p
            .bind(&[
                SqlValue::Number(1.0),
                SqlValue::Number(0.5),
                SqlValue::Int(1),
            ])
            .unwrap_err();
        assert!(ty.to_string().contains("pattern string"), "{ty}");
        let ty = p
            .bind(&[
                SqlValue::text("%a%"),
                SqlValue::Number(0.5),
                SqlValue::Number(1.0),
            ])
            .unwrap_err();
        assert!(ty.to_string().contains("integer limit"), "{ty}");
    }

    #[test]
    fn prepared_sql_renders_canonically() {
        let p = PreparedQuery::new("select  DataKey from MAPData where Data like ?").unwrap();
        assert_eq!(p.sql(), "SELECT DataKey FROM MAPData WHERE Data LIKE ?");
        assert!(!p.statement().is_explain());
    }
}
