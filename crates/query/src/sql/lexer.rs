//! Tokenizer for the SQL surface.
//!
//! Lexing is deliberately small: identifiers/keywords, `'...'` string
//! literals with `''` as the embedded-quote escape (backslashes are plain
//! characters, so regex patterns need no double-escaping), decimal
//! numbers with optional fraction and exponent, and the handful of
//! punctuation tokens the grammar uses. Every token carries its byte
//! offset so parse errors can point into the statement.

use super::SqlError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are resolved case-insensitively by
    /// the parser).
    Ident(String),
    /// String literal, quotes stripped and `''` unescaped.
    Str(String),
    /// Numeric literal, kept as written; the parser narrows by context.
    Number(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `?` — a prepared-statement placeholder.
    Question,
    /// `>=`
    Ge,
    /// `;` — optional statement terminator.
    Semi,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable token description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier {s:?}"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Number(n) => format!("number {n}"),
            Tok::LParen => "'('".to_string(),
            Tok::RParen => "')'".to_string(),
            Tok::Star => "'*'".to_string(),
            Tok::Comma => "','".to_string(),
            Tok::Question => "'?'".to_string(),
            Tok::Ge => "'>='".to_string(),
            Tok::Semi => "';'".to_string(),
            Tok::Eof => "end of statement".to_string(),
        }
    }
}

/// A token plus the byte offset it starts at.
pub type Spanned = (Tok, usize);

/// Tokenize `src` fully (the `Eof` token is appended at the end).
pub fn lex(src: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'(' => {
                out.push((Tok::LParen, start));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, start));
                i += 1;
            }
            b'*' => {
                out.push((Tok::Star, start));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, start));
                i += 1;
            }
            b'?' => {
                out.push((Tok::Question, start));
                i += 1;
            }
            b';' => {
                out.push((Tok::Semi, start));
                i += 1;
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ge, start));
                    i += 2;
                } else {
                    return Err(SqlError::new(start, "expected '>=' (only >= is supported)"));
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::new(start, "unterminated string literal"));
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Consume one full UTF-8 scalar.
                            let ch = src[i..].chars().next().expect("in-bounds char");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push((Tok::Str(s), start));
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if bytes.get(i) == Some(&b'.') {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if matches!(bytes.get(i), Some(b'e' | b'E')) {
                    let mut j = i + 1;
                    if matches!(bytes.get(j), Some(b'+' | b'-')) {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(|b| b.is_ascii_digit()) {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                out.push((Tok::Number(src[start..i].to_string()), start));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(src[start..i].to_string()), start));
            }
            _ => {
                let ch = src[start..].chars().next().expect("in-bounds char");
                return Err(SqlError::new(
                    start,
                    format!("unexpected character {ch:?} in SQL statement"),
                ));
            }
        }
    }
    out.push((Tok::Eof, bytes.len()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn tokenizes_a_full_statement() {
        let got = toks("SELECT DataKey FROM t WHERE Data LIKE '%F''ord%' AND Prob >= 0.5 LIMIT 3;");
        assert_eq!(
            got,
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("DataKey".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("Data".into()),
                Tok::Ident("LIKE".into()),
                Tok::Str("%F'ord%".into()),
                Tok::Ident("AND".into()),
                Tok::Ident("Prob".into()),
                Tok::Ge,
                Tok::Number("0.5".into()),
                Tok::Ident("LIMIT".into()),
                Tok::Number("3".into()),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn backslashes_are_plain_characters() {
        assert_eq!(
            toks(r"'U.S.C. 2\d\d\d'")[0],
            Tok::Str(r"U.S.C. 2\d\d\d".into())
        );
    }

    #[test]
    fn numbers_with_exponents_lex_whole() {
        assert_eq!(toks("1e-3")[0], Tok::Number("1e-3".into()));
        assert_eq!(toks("2.5E+10")[0], Tok::Number("2.5E+10".into()));
        // 'e' not followed by digits is not an exponent.
        assert_eq!(
            toks("2e x"),
            vec![
                Tok::Number("2".into()),
                Tok::Ident("e".into()),
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_errors_carry_positions() {
        let err = lex("SELECT #").unwrap_err();
        assert_eq!(err.position, 7);
        let err = lex("'never closed").unwrap_err();
        assert_eq!(err.position, 0);
        assert!(err.message.contains("unterminated"));
        let err = lex("Prob > 1").unwrap_err();
        assert!(err.message.contains(">="));
    }

    #[test]
    fn unicode_inside_strings_survives() {
        assert_eq!(toks("'héllo'")[0], Tok::Str("héllo".into()));
    }
}
