//! Recursive-descent parser for the SQL surface.
//!
//! Grammar (keywords case-insensitive, `?` allowed wherever a literal
//! pattern / threshold / limit may appear, optional trailing `;`):
//!
//! ```text
//! statement  := [EXPLAIN [ANALYZE]] select [';']
//! select     := SELECT projection FROM table WHERE predicate
//!               [ORDER BY Prob DESC] [LIMIT int [OFFSET int]]
//! projection := COUNT '(' '*' ')' | SUM '(' Prob ')' | AVG '(' Prob ')'
//!             | DataKey [',' Prob]
//! table      := MAPData | kMAPData | FullSFAData | StaccatoData
//! predicate  := Data (LIKE | REGEXP) string [AND Prob '>=' number]
//! ```
//!
//! The parser is purely syntactic; semantic checks (threshold range,
//! aggregate × `ORDER BY` conflicts, pattern compilation) happen during
//! lowering so that every renderable AST parses back unchanged.

use super::ast::{
    HistorySelect, Insert, InsertRow, Predicate, Projection, Select, SqlArg, SqlTable, Statement,
};
use super::lexer::{lex, Spanned, Tok};
use super::SqlError;
use crate::agg::AggregateFunc;
use crate::plan::Dialect;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    params: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn here(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::new(self.here(), message)
    }

    /// Consume a keyword (case-insensitive) or fail.
    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.peek() {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected {kw}, found {}", other.describe()))),
        }
    }

    /// Is the next token the given keyword? Consume it if so.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw)) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, tok: Tok) -> Result<(), SqlError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().describe()
            )))
        }
    }

    fn next_param(&mut self) -> u32 {
        let n = self.params;
        self.params += 1;
        n
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("INSERT") {
            let insert = self.insert()?;
            self.finish()?;
            return Ok(Statement::Insert(insert));
        }
        let explain = self.eat_kw("EXPLAIN");
        let analyze = explain && self.eat_kw("ANALYZE");
        self.expect_kw("SELECT")?;
        if *self.peek() == Tok::Star {
            if explain {
                return Err(self.error(
                    "EXPLAIN does not apply to StaccatoHistory scans (they have \
                                exactly one access path)",
                ));
            }
            let history = self.history_select()?;
            self.finish()?;
            return Ok(Statement::SelectHistory(history));
        }
        let select = self.select()?;
        self.finish()?;
        Ok(if analyze {
            Statement::ExplainAnalyze(select)
        } else if explain {
            Statement::Explain(select)
        } else {
            Statement::Select(select)
        })
    }

    /// Consume the optional trailing `;` and require end of input.
    fn finish(&mut self) -> Result<(), SqlError> {
        if *self.peek() == Tok::Semi {
            self.bump();
        }
        if *self.peek() != Tok::Eof {
            return Err(self.error(format!(
                "unexpected {} after the statement",
                self.peek().describe()
            )));
        }
        Ok(())
    }

    /// `INSERT` already consumed: `INTO StaccatoData (DocName, Data)
    /// VALUES ('n', 'd')[, (?, ?)]*`.
    fn insert(&mut self) -> Result<Insert, SqlError> {
        self.expect_kw("INTO")?;
        match self.peek().clone() {
            Tok::Ident(name) if name.eq_ignore_ascii_case("StaccatoData") => {
                self.bump();
            }
            other => {
                return Err(self.error(format!(
                    "INSERT writes through the probabilistic store; the only insertable \
                     table is StaccatoData, found {}",
                    other.describe()
                )))
            }
        }
        self.expect_tok(Tok::LParen)?;
        self.expect_kw("DocName")?;
        self.expect_tok(Tok::Comma)?;
        self.expect_kw("Data")?;
        self.expect_tok(Tok::RParen)?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_tok(Tok::LParen)?;
            let doc_name = self.str_arg()?;
            self.expect_tok(Tok::Comma)?;
            let data = self.str_arg()?;
            self.expect_tok(Tok::RParen)?;
            rows.push(InsertRow { doc_name, data });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(Insert { rows })
    }

    /// `SELECT` already consumed and `*` peeked: `* FROM StaccatoHistory
    /// [WHERE FileName LIKE p] [LIMIT n]`.
    fn history_select(&mut self) -> Result<HistorySelect, SqlError> {
        self.expect_tok(Tok::Star)?;
        self.expect_kw("FROM")?;
        match self.peek().clone() {
            Tok::Ident(name) if name.eq_ignore_ascii_case("StaccatoHistory") => {
                self.bump();
            }
            other => {
                return Err(self.error(format!(
                    "the SELECT list must be DataKey[, Prob], COUNT(*), SUM(Prob), or \
                     AVG(Prob); 'SELECT *' is reserved for StaccatoHistory, found {}",
                    other.describe()
                )))
            }
        }
        let file_like = if self.eat_kw("WHERE") {
            self.expect_kw("FileName")?;
            self.expect_kw("LIKE")?;
            Some(self.str_arg()?)
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            Some(self.int_arg()?)
        } else {
            None
        };
        Ok(HistorySelect { file_like, limit })
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        let projection = self.projection()?;
        self.expect_kw("FROM")?;
        let table = self.table()?;
        self.expect_kw("WHERE")?;
        let predicate = self.predicate()?;
        let order_by_prob = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            self.expect_kw("Prob")?;
            self.expect_kw("DESC")?;
            true
        } else {
            false
        };
        let limit = if self.eat_kw("LIMIT") {
            Some(self.int_arg()?)
        } else {
            None
        };
        let offset = if limit.is_some() && self.eat_kw("OFFSET") {
            Some(self.int_arg()?)
        } else if matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case("OFFSET")) {
            return Err(self.error("OFFSET requires a LIMIT clause before it"));
        } else {
            None
        };
        Ok(Select {
            projection,
            table,
            predicate,
            order_by_prob,
            limit,
            offset,
        })
    }

    fn projection(&mut self) -> Result<Projection, SqlError> {
        for (kw, func) in [
            ("COUNT", AggregateFunc::CountStar),
            ("SUM", AggregateFunc::SumProb),
            ("AVG", AggregateFunc::AvgProb),
        ] {
            if self.eat_kw(kw) {
                self.expect_tok(Tok::LParen)?;
                if func == AggregateFunc::CountStar {
                    self.expect_tok(Tok::Star)?;
                } else {
                    self.expect_kw("Prob")?;
                }
                self.expect_tok(Tok::RParen)?;
                return Ok(Projection::Aggregate(func));
            }
        }
        self.expect_kw("DataKey").map_err(|e| {
            SqlError::new(
                e.position,
                "the SELECT list must be DataKey[, Prob], COUNT(*), SUM(Prob), or AVG(Prob)",
            )
        })?;
        if *self.peek() == Tok::Comma {
            self.bump();
            self.expect_kw("Prob")?;
            Ok(Projection::DataKeyProb)
        } else {
            Ok(Projection::DataKey)
        }
    }

    fn table(&mut self) -> Result<SqlTable, SqlError> {
        match self.peek().clone() {
            Tok::Ident(name) => match SqlTable::parse(&name) {
                Some(t) => {
                    self.bump();
                    Ok(t)
                }
                None => Err(self.error(format!(
                    "unknown table {name:?}; queryable tables are MAPData, kMAPData, \
                     FullSFAData, StaccatoData"
                ))),
            },
            other => Err(self.error(format!("expected a table name, found {}", other.describe()))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate, SqlError> {
        self.expect_kw("Data")?;
        let dialect = if self.eat_kw("LIKE") {
            Dialect::Like
        } else if self.eat_kw("REGEXP") {
            Dialect::Regex
        } else {
            return Err(self.error(format!(
                "expected LIKE or REGEXP, found {}",
                self.peek().describe()
            )));
        };
        let pattern = match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                SqlArg::Value(s)
            }
            Tok::Question => {
                self.bump();
                SqlArg::Param(self.next_param())
            }
            other => {
                return Err(self.error(format!(
                    "expected a quoted pattern or '?', found {}",
                    other.describe()
                )))
            }
        };
        let min_prob = if self.eat_kw("AND") {
            self.expect_kw("Prob")?;
            self.expect_tok(Tok::Ge)?;
            Some(self.float_arg()?)
        } else {
            None
        };
        Ok(Predicate {
            dialect,
            pattern,
            min_prob,
        })
    }

    fn str_arg(&mut self) -> Result<SqlArg<String>, SqlError> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(SqlArg::Value(s))
            }
            Tok::Question => {
                self.bump();
                Ok(SqlArg::Param(self.next_param()))
            }
            other => Err(self.error(format!(
                "expected a quoted string or '?', found {}",
                other.describe()
            ))),
        }
    }

    fn float_arg(&mut self) -> Result<SqlArg<f64>, SqlError> {
        match self.peek().clone() {
            Tok::Number(raw) => {
                let v: f64 = raw
                    .parse()
                    .map_err(|_| self.error(format!("{raw:?} is not a valid number")))?;
                self.bump();
                Ok(SqlArg::Value(v))
            }
            Tok::Question => {
                self.bump();
                Ok(SqlArg::Param(self.next_param()))
            }
            other => Err(self.error(format!(
                "expected a number or '?', found {}",
                other.describe()
            ))),
        }
    }

    fn int_arg(&mut self) -> Result<SqlArg<u64>, SqlError> {
        match self.peek().clone() {
            Tok::Number(raw) => {
                let v: u64 = raw.parse().map_err(|_| {
                    self.error(format!("{raw:?} is not a valid non-negative integer"))
                })?;
                self.bump();
                Ok(SqlArg::Value(v))
            }
            Tok::Question => {
                self.bump();
                Ok(SqlArg::Param(self.next_param()))
            }
            other => Err(self.error(format!(
                "expected an integer or '?', found {}",
                other.describe()
            ))),
        }
    }
}

/// Parse one SQL statement.
pub fn parse_statement(src: &str) -> Result<Statement, SqlError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    p.statement()
}

#[cfg(test)]
mod tests {
    use super::super::ast::render_statement;
    use super::*;

    fn parse(src: &str) -> Statement {
        parse_statement(src).unwrap()
    }

    #[test]
    fn parses_the_paper_query() {
        let stmt = parse("SELECT DataKey FROM StaccatoData WHERE Data LIKE '%Ford%'");
        let s = stmt.select().unwrap();
        assert_eq!(s.projection, Projection::DataKey);
        assert_eq!(s.table, SqlTable::Staccato);
        assert_eq!(s.predicate.dialect, Dialect::Like);
        assert_eq!(s.predicate.pattern, SqlArg::Value("%Ford%".into()));
        assert_eq!(s.predicate.min_prob, None);
        assert!(!s.order_by_prob);
        assert_eq!(s.limit, None);
    }

    #[test]
    fn parses_every_clause_and_case_folds_keywords() {
        let stmt = parse(
            "explain select DataKey, Prob from kmapdata where Data regexp 'Public Law (8|9)\\d' \
             and Prob >= 0.25 order by Prob desc limit 50;",
        );
        assert!(stmt.is_explain());
        let s = stmt.select().unwrap();
        assert_eq!(s.projection, Projection::DataKeyProb);
        assert_eq!(s.table, SqlTable::KMap);
        assert_eq!(s.predicate.dialect, Dialect::Regex);
        assert_eq!(s.predicate.min_prob, Some(SqlArg::Value(0.25)));
        assert!(s.order_by_prob);
        assert_eq!(s.limit, Some(SqlArg::Value(50)));
    }

    #[test]
    fn parses_aggregates() {
        for (src, func) in [
            ("COUNT(*)", AggregateFunc::CountStar),
            ("SUM(Prob)", AggregateFunc::SumProb),
            ("AVG(Prob)", AggregateFunc::AvgProb),
        ] {
            let stmt = parse(&format!(
                "SELECT {src} FROM FullSFAData WHERE Data LIKE '%a%'"
            ));
            assert_eq!(
                stmt.select().unwrap().projection,
                Projection::Aggregate(func)
            );
        }
        assert!(parse_statement("SELECT COUNT(Prob) FROM MAPData WHERE Data LIKE '%a%'").is_err());
        assert!(parse_statement("SELECT SUM(*) FROM MAPData WHERE Data LIKE '%a%'").is_err());
    }

    #[test]
    fn params_number_left_to_right() {
        let stmt =
            parse("SELECT DataKey FROM MAPData WHERE Data LIKE ? AND Prob >= ? LIMIT ? OFFSET ?");
        let s = stmt.select().unwrap();
        assert_eq!(s.predicate.pattern, SqlArg::Param(0));
        assert_eq!(s.predicate.min_prob, Some(SqlArg::Param(1)));
        assert_eq!(s.limit, Some(SqlArg::Param(2)));
        assert_eq!(s.offset, Some(SqlArg::Param(3)));
        assert_eq!(stmt.param_count(), 4);
    }

    #[test]
    fn offset_parses_with_limit_and_rejects_alone() {
        let stmt = parse("SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' LIMIT 10 OFFSET 30");
        assert_eq!(stmt.select().unwrap().limit, Some(SqlArg::Value(10)));
        assert_eq!(stmt.select().unwrap().offset, Some(SqlArg::Value(30)));
        let err = parse_statement("SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' OFFSET 30")
            .unwrap_err();
        assert!(err.message.contains("LIMIT"), "{}", err.message);
    }

    #[test]
    fn rejects_malformed_statements_with_positions() {
        for (src, needle) in [
            ("SELECT * FROM MAPData WHERE Data LIKE '%a%'", "SELECT list"),
            (
                "SELECT DataKey FROM Nope WHERE Data LIKE '%a%'",
                "unknown table",
            ),
            ("SELECT DataKey FROM MAPData WHERE Prob >= 0.5", "Data"),
            (
                "SELECT DataKey FROM MAPData WHERE Data LIKE 5",
                "quoted pattern",
            ),
            (
                "SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' ORDER BY DataKey",
                "Prob",
            ),
            (
                "SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' LIMIT 2.5",
                "integer",
            ),
            (
                "SELECT DataKey FROM MAPData WHERE Data LIKE '%a%' garbage",
                "unexpected",
            ),
            ("UPDATE MAPData", "SELECT"),
        ] {
            let err = parse_statement(src).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src:?}: {} should mention {needle:?}",
                err.message
            );
            assert!(err.position <= src.len());
        }
    }

    #[test]
    fn parses_insert_statements() {
        let stmt = parse(
            "insert into staccatodata (DocName, Data) values ('a.png', 'the President'), (?, ?);",
        );
        let Statement::Insert(insert) = &stmt else {
            panic!("expected an INSERT, got {stmt:?}");
        };
        assert_eq!(insert.rows.len(), 2);
        assert_eq!(insert.rows[0].doc_name, SqlArg::Value("a.png".into()));
        assert_eq!(insert.rows[0].data, SqlArg::Value("the President".into()));
        assert_eq!(insert.rows[1].doc_name, SqlArg::Param(0));
        assert_eq!(insert.rows[1].data, SqlArg::Param(1));
        assert_eq!(stmt.param_count(), 2);
        assert!(stmt.select().is_none());
        assert_eq!(
            render_statement(&stmt),
            "INSERT INTO StaccatoData (DocName, Data) VALUES ('a.png', 'the President'), (?, ?)"
        );

        for (src, needle) in [
            (
                "INSERT INTO MAPData (DocName, Data) VALUES ('a', 'b')",
                "StaccatoData",
            ),
            ("INSERT INTO StaccatoData (Data) VALUES ('b')", "DocName"),
            ("INSERT INTO StaccatoData (DocName, Data) VALUES ('a')", ","),
            (
                "INSERT INTO StaccatoData (DocName, Data) VALUES ('a', 5)",
                "quoted string",
            ),
            (
                "EXPLAIN INSERT INTO StaccatoData (DocName, Data) VALUES ('a', 'b')",
                "SELECT",
            ),
        ] {
            let err = parse_statement(src).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src:?}: {} should mention {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn parses_history_selects() {
        let stmt = parse("SELECT * FROM StaccatoHistory");
        assert_eq!(
            stmt,
            Statement::SelectHistory(HistorySelect {
                file_like: None,
                limit: None,
            })
        );
        let stmt = parse("select * from staccatohistory where FileName like '%.png' limit 5");
        let Statement::SelectHistory(h) = &stmt else {
            panic!("expected a history select, got {stmt:?}");
        };
        assert_eq!(h.file_like, Some(SqlArg::Value("%.png".into())));
        assert_eq!(h.limit, Some(SqlArg::Value(5)));
        assert_eq!(
            render_statement(&stmt),
            "SELECT * FROM StaccatoHistory WHERE FileName LIKE '%.png' LIMIT 5"
        );
        let params = parse("SELECT * FROM StaccatoHistory WHERE FileName LIKE ? LIMIT ?");
        assert_eq!(params.param_count(), 2);

        let err = parse_statement("EXPLAIN SELECT * FROM StaccatoHistory").unwrap_err();
        assert!(err.message.contains("EXPLAIN"), "{}", err.message);
    }

    #[test]
    fn render_parse_round_trip_spot_checks() {
        for src in [
            "SELECT DataKey FROM StaccatoData WHERE Data LIKE '%Ford%'",
            "SELECT DataKey, Prob FROM MAPData WHERE Data REGEXP 'a(b|c)' AND Prob >= 0.5",
            "SELECT AVG(Prob) FROM kMAPData WHERE Data LIKE ? LIMIT 7",
            "SELECT DataKey FROM StaccatoData WHERE Data LIKE '%Ford%' LIMIT 10 OFFSET 90",
            "EXPLAIN SELECT COUNT(*) FROM FullSFAData WHERE Data REGEXP '\\d\\d' ORDER BY Prob DESC",
            "INSERT INTO StaccatoData (DocName, Data) VALUES ('a.png', 'some text'), (?, ?)",
            "SELECT * FROM StaccatoHistory WHERE FileName LIKE '%.png' LIMIT 3",
        ] {
            let stmt = parse(src);
            assert_eq!(render_statement(&stmt), src);
            assert_eq!(parse(&render_statement(&stmt)), stmt);
        }
    }
}
