//! The user-facing query object.
//!
//! A [`Query`] is what the `LIKE` predicate of Figure 1C compiles to: a
//! containment DFA (`Σ*·L·Σ*`) over the document text, plus the metadata
//! index-assisted execution needs — the left anchor word (§2.1's anchored
//! regular expressions) and the pattern's length bounds (for projection).

use crate::error::QueryError;
use crate::kernel::ScanKernel;
use staccato_automata::{left_anchor, like_to_ast, parse, required_literal, Ast, Dfa};

/// A compiled document-containment query.
pub struct Query {
    /// The original pattern text.
    pub pattern: String,
    /// Containment DFA: accepts any string containing a match.
    pub dfa: Dfa,
    /// The parsed pattern.
    pub ast: Ast,
    /// Left anchor word (lowercased), if the pattern is left-anchored.
    pub anchor: Option<String>,
    /// The compiled scan kernel the filescan executors run (dense DFA,
    /// interned label transitions, anchor prescreen).
    pub kernel: ScanKernel,
}

impl Query {
    /// Compile a regex in the paper's dialect (keywords are just regexes
    /// with no metacharacters).
    pub fn regex(pattern: &str) -> Result<Query, QueryError> {
        let ast = parse(pattern)?;
        let dfa = Dfa::compile_containment(&ast);
        // Any string containing a match contains the pattern's literal
        // prefix, case preserved — sound for the containment DFA.
        let kernel = ScanKernel::new(&dfa, required_literal(&ast));
        Ok(Query {
            pattern: pattern.to_string(),
            dfa,
            anchor: left_anchor(&ast),
            ast,
            kernel,
        })
    }

    /// Compile a SQL `LIKE` pattern. `'%Ford%'` matches documents
    /// containing "Ford"; a pattern without wildcards must match the whole
    /// document text.
    pub fn like(pattern: &str) -> Result<Query, QueryError> {
        let ast = like_to_ast(pattern)?;
        // A LIKE pattern constrains the *whole* string, so the DFA is the
        // exact-match automaton of the translated AST (which itself embeds
        // `(\x)*` for `%`).
        let dfa = Dfa::compile(&ast);
        // An accepted string is `(anything)·rest` with `rest` matching the
        // stripped AST, so it contains that AST's literal prefix.
        let kernel = ScanKernel::new(&dfa, required_literal(&strip_leading_any_star(&ast)));
        Ok(Query {
            pattern: pattern.to_string(),
            dfa,
            anchor: left_anchor(&strip_leading_any_star(&ast)),
            ast,
            kernel,
        })
    }

    /// Convenience for keyword containment queries.
    pub fn keyword(word: &str) -> Result<Query, QueryError> {
        Query::regex(word)
    }

    /// Minimum number of characters a match spans.
    pub fn min_span(&self) -> usize {
        self.ast.min_len()
    }

    /// Maximum number of characters a match spans (`None` = unbounded).
    pub fn max_span(&self) -> Option<usize> {
        self.ast.max_len()
    }
}

/// For LIKE patterns the AST starts with `(\x)*` when the pattern starts
/// with `%`; the anchor lives just after it.
fn strip_leading_any_star(ast: &Ast) -> Ast {
    if let Ast::Concat(parts) = ast {
        if let Some(Ast::Star(_)) = parts.first() {
            return match parts.len() {
                1 => Ast::Empty,
                2 => parts[1].clone(),
                _ => Ast::Concat(parts[1..].to_vec()),
            };
        }
    }
    ast.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_query_matches_containment() {
        let q = Query::keyword("President").unwrap();
        assert!(q.dfa.accepts("the President signed"));
        assert!(!q.dfa.accepts("the Presldent signed"));
        assert_eq!(q.anchor.as_deref(), Some("president"));
        assert_eq!(q.min_span(), 9);
        assert_eq!(q.max_span(), Some(9));
    }

    #[test]
    fn like_query_semantics() {
        let q = Query::like("%Ford%").unwrap();
        assert!(q.dfa.accepts("my Ford truck"));
        assert!(!q.dfa.accepts("my Frd truck"));
        assert_eq!(q.anchor.as_deref(), Some("ford"));
    }

    #[test]
    fn like_without_wildcards_is_exact() {
        let q = Query::like("Ford").unwrap();
        assert!(q.dfa.accepts("Ford"));
        assert!(!q.dfa.accepts("a Ford"));
    }

    #[test]
    fn regex_queries_from_the_paper() {
        let q = Query::regex(r"U.S.C. 2\d\d\d").unwrap();
        assert!(q.dfa.accepts("cf. U.S.C. 2345."));
        assert!(q.anchor.is_none()); // 'U' alone is too short to anchor
        let q = Query::regex(r"Public Law (8|9)\d").unwrap();
        assert_eq!(q.anchor.as_deref(), Some("public"));
        assert_eq!(q.min_span(), 13);
    }

    #[test]
    fn unbounded_patterns_report_no_max() {
        let q = Query::regex(r"Sec(\x)*\d").unwrap();
        assert_eq!(q.max_span(), None);
        assert_eq!(q.min_span(), 4);
    }

    #[test]
    fn bad_patterns_surface_errors() {
        assert!(Query::regex("a(b").is_err());
        assert!(Query::like("abc\\").is_err());
    }
}
