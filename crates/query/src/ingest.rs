//! Ingest-path types and the WAL payload codec.
//!
//! A [`crate::Staccato::ingest`] call turns a batch of
//! [`DocumentInput`]s into one WAL record. The record does **not**
//! carry the raw text: the write path first runs the full construction
//! pipeline (channel → k-best → Staccato approximation) and logs the
//! finished [per-line artifacts](crate::store) plus the history
//! metadata. Replay therefore re-inserts exactly the bytes the
//! original ingest inserted — recovery is byte-identical by
//! construction and needs no OCR channel.
//!
//! Payload layout (all integers little-endian):
//!
//! ```text
//! [magic "SWB1"] [batch_seq u64] [first_key i64] [ndocs u32] docs...
//! doc  := meta artifacts
//! meta := str(provider) f64(confidence) i64(processing_time_ms)
//!         i64(ingested_at)
//! artifacts := str(doc_name) i64(sfa_num) str(clean)
//!              u32(nk) [str f64]*nk          -- k-MAP strings
//!              bytes(full_blob) bytes(stac_blob)
//!              u32(nc) [i64 i64 str f64]*nc  -- Staccato chunk rows
//! str/bytes := u32 length + payload
//! ```

use crate::error::QueryError;
use crate::store::LineArtifacts;

/// One document handed to [`crate::Staccato::ingest`].
#[derive(Debug, Clone)]
pub struct DocumentInput {
    /// Document name, stored in `MasterData.DocName` and
    /// `StaccatoHistory.FileName`.
    pub name: String,
    /// The (noisy) line text the OCR channel reads.
    pub text: String,
    /// Pre-built SFA blob from an external OCR engine (codec format).
    /// When absent the store's own channel builds the SFA from `text`.
    pub sfa: Option<Vec<u8>>,
    /// OCR engine that produced the document.
    pub provider: String,
    /// Engine-reported confidence in `[0, 1]`.
    pub confidence: f64,
    /// Engine-reported processing time.
    pub processing_time_ms: i64,
}

impl DocumentInput {
    /// A document with default provenance metadata.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> DocumentInput {
        DocumentInput {
            name: name.into(),
            text: text.into(),
            sfa: None,
            provider: "unknown".to_string(),
            confidence: 1.0,
            processing_time_ms: 0,
        }
    }

    /// Set the OCR engine name (builder-style).
    pub fn provider(mut self, provider: impl Into<String>) -> DocumentInput {
        self.provider = provider.into();
        self
    }
}

/// A batch of documents committed atomically: one WAL record, one
/// history `BatchSeq`, all-or-nothing visibility to readers.
#[derive(Debug, Clone, Default)]
pub struct IngestBatch {
    /// The documents, assigned consecutive `DataKey`s in order.
    pub docs: Vec<DocumentInput>,
}

impl IngestBatch {
    /// An empty batch.
    pub fn new() -> IngestBatch {
        IngestBatch::default()
    }

    /// Append one document (builder-style).
    pub fn doc(mut self, doc: DocumentInput) -> IngestBatch {
        self.docs.push(doc);
        self
    }
}

/// What [`crate::Staccato::ingest`] returns for a committed batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Monotonic batch sequence number (also `StaccatoHistory.BatchSeq`).
    pub batch_seq: u64,
    /// `DataKey` of the batch's first document.
    pub first_key: i64,
    /// Documents in the batch.
    pub docs: usize,
    /// Framed bytes appended to the WAL for this batch (0 when no WAL
    /// is attached).
    pub wal_bytes: u64,
    /// WAL LSN (end offset) of the batch's record. The write path only
    /// acknowledges a receipt once everything at or below this LSN is
    /// on stable storage, so receipts are monotonically LSN-ordered by
    /// `batch_seq`. 0 when no WAL is attached.
    pub lsn: u64,
}

/// One `StaccatoHistory` row.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// `DataKey` of the ingested line.
    pub data_key: i64,
    /// Document name as submitted.
    pub file_name: String,
    /// OCR engine that produced it.
    pub provider: String,
    /// Engine-reported confidence.
    pub confidence: f64,
    /// Engine-reported processing time.
    pub processing_time_ms: i64,
    /// Unix seconds when the batch was ingested.
    pub ingested_at: i64,
    /// The committing batch.
    pub batch_seq: u64,
}

/// Session-cumulative ingest/WAL counters (mirrored into `GET /stats`;
/// per-statement deltas ride on [`crate::ExecStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestStats {
    /// Batches applied (ingested live or replayed).
    pub batches: u64,
    /// Documents applied.
    pub docs: u64,
    /// WAL records appended by this session.
    pub wal_records_appended: u64,
    /// WAL bytes logged by this session.
    pub wal_bytes_logged: u64,
    /// fsyncs issued by the WAL (appends, commits, and group flushes).
    pub wal_fsyncs: u64,
    /// Batches replayed from the WAL at recovery.
    pub replays: u64,
    /// Group-commit fsyncs — each one issued by a flush leader on
    /// behalf of every batch enqueued since the last flush.
    pub wal_group_commits: u64,
    /// Durability waits served per group fsync (amortization factor;
    /// > 1 means concurrent batches shared fsyncs).
    pub wal_batches_per_fsync: f64,
    /// p95 time an ingest spent blocked waiting for its durable LSN.
    pub wal_flush_wait_p95: std::time::Duration,
    /// Sealed WAL segments deleted by checkpoint GC.
    pub wal_segments_deleted: u64,
    /// Checkpoints taken (manual and background).
    pub checkpoints: u64,
    /// Checkpoints completed by the background checkpointer thread.
    pub background_checkpoints: u64,
}

/// A fully built batch: what the WAL logs and replay decodes.
pub(crate) struct DecodedBatch {
    pub(crate) batch_seq: u64,
    pub(crate) first_key: i64,
    pub(crate) docs: Vec<DecodedDoc>,
}

/// One document's artifacts plus history metadata.
pub(crate) struct DecodedDoc {
    pub(crate) art: LineArtifacts,
    pub(crate) provider: String,
    pub(crate) confidence: f64,
    pub(crate) processing_time_ms: i64,
    pub(crate) ingested_at: i64,
}

const MAGIC: &[u8; 4] = b"SWB1";

pub(crate) fn encode_batch(batch: &DecodedBatch) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&batch.batch_seq.to_le_bytes());
    out.extend_from_slice(&batch.first_key.to_le_bytes());
    out.extend_from_slice(&(batch.docs.len() as u32).to_le_bytes());
    for doc in &batch.docs {
        put_str(&mut out, &doc.provider);
        out.extend_from_slice(&doc.confidence.to_le_bytes());
        out.extend_from_slice(&doc.processing_time_ms.to_le_bytes());
        out.extend_from_slice(&doc.ingested_at.to_le_bytes());
        let art = &doc.art;
        put_str(&mut out, &art.doc_name);
        out.extend_from_slice(&art.sfa_num.to_le_bytes());
        put_str(&mut out, &art.clean);
        out.extend_from_slice(&(art.kmap.len() as u32).to_le_bytes());
        for (s, p) in &art.kmap {
            put_str(&mut out, s);
            out.extend_from_slice(&p.to_le_bytes());
        }
        put_bytes(&mut out, &art.full_blob);
        put_bytes(&mut out, &art.stac_blob);
        out.extend_from_slice(&(art.stac_chunks.len() as u32).to_le_bytes());
        for (ci, rank, s, lp) in &art.stac_chunks {
            out.extend_from_slice(&ci.to_le_bytes());
            out.extend_from_slice(&rank.to_le_bytes());
            put_str(&mut out, s);
            out.extend_from_slice(&lp.to_le_bytes());
        }
    }
    out
}

pub(crate) fn decode_batch(bytes: &[u8]) -> Result<DecodedBatch, QueryError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(QueryError::CorruptWal("bad batch magic"));
    }
    let batch_seq = r.u64()?;
    let first_key = r.i64()?;
    let ndocs = r.u32()? as usize;
    if ndocs > bytes.len() {
        // Cheap sanity bound: each doc costs well over one byte.
        return Err(QueryError::CorruptWal("implausible document count"));
    }
    let mut docs = Vec::with_capacity(ndocs);
    for _ in 0..ndocs {
        let provider = r.string()?;
        let confidence = r.f64()?;
        let processing_time_ms = r.i64()?;
        let ingested_at = r.i64()?;
        let doc_name = r.string()?;
        let sfa_num = r.i64()?;
        let clean = r.string()?;
        let nk = r.u32()? as usize;
        let mut kmap = Vec::with_capacity(nk.min(bytes.len()));
        for _ in 0..nk {
            let s = r.string()?;
            let p = r.f64()?;
            kmap.push((s, p));
        }
        let full_blob = r.bytes()?.to_vec();
        let stac_blob = r.bytes()?.to_vec();
        let nc = r.u32()? as usize;
        let mut stac_chunks = Vec::with_capacity(nc.min(bytes.len()));
        for _ in 0..nc {
            let ci = r.i64()?;
            let rank = r.i64()?;
            let s = r.string()?;
            let lp = r.f64()?;
            stac_chunks.push((ci, rank, s, lp));
        }
        docs.push(DecodedDoc {
            art: LineArtifacts {
                doc_name,
                sfa_num,
                clean,
                kmap,
                full_blob,
                stac_blob,
                stac_chunks,
            },
            provider,
            confidence,
            processing_time_ms,
            ingested_at,
        });
    }
    if r.pos != bytes.len() {
        return Err(QueryError::CorruptWal("trailing bytes after batch"));
    }
    Ok(DecodedBatch {
        batch_seq,
        first_key,
        docs,
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], QueryError> {
        let out = self
            .bytes
            .get(self.pos..self.pos + n)
            .ok_or(QueryError::CorruptWal("truncated batch payload"))?;
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, QueryError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, QueryError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, QueryError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, QueryError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<&'a [u8], QueryError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, QueryError> {
        std::str::from_utf8(self.bytes()?)
            .map(str::to_string)
            .map_err(|_| QueryError::CorruptWal("non-UTF-8 string in batch"))
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// SQL `LIKE` over history file names: `%` matches any run, `_` any one
/// character. Hand-rolled because [`crate::QueryRequest::like`] compiles
/// patterns against the OCR alphabet, which is narrower than file names.
pub(crate) fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // dp[j] = does p[..i] match t[..j]; rolled over i.
    let mut dp = vec![false; t.len() + 1];
    dp[0] = true;
    for &pc in &p {
        if pc == '%' {
            // '%' extends any earlier match to every longer prefix.
            let mut any = false;
            for slot in dp.iter_mut() {
                any |= *slot;
                *slot = any;
            }
        } else {
            let mut prev_diag = dp[0];
            dp[0] = false;
            for j in 1..=t.len() {
                let cur = dp[j];
                dp[j] = prev_diag && (pc == '_' || t[j - 1] == pc);
                prev_diag = cur;
            }
        }
    }
    dp[t.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> DecodedBatch {
        DecodedBatch {
            batch_seq: 42,
            first_key: 100,
            docs: vec![DecodedDoc {
                art: LineArtifacts {
                    doc_name: "scan_001.png".into(),
                    sfa_num: 7,
                    clean: "selinger access path".into(),
                    kmap: vec![("selinger".into(), 0.5), ("sel1nger".into(), 0.25)],
                    full_blob: vec![1, 2, 3, 4],
                    stac_blob: vec![9, 8],
                    stac_chunks: vec![(0, 0, "sel".into(), -0.1), (1, 0, "inger".into(), -0.2)],
                },
                provider: "tesseract".into(),
                confidence: 0.93,
                processing_time_ms: 412,
                ingested_at: 1_700_000_000,
            }],
        }
    }

    #[test]
    fn batch_codec_round_trips() {
        let batch = sample_batch();
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes).unwrap();
        assert_eq!(back.batch_seq, 42);
        assert_eq!(back.first_key, 100);
        assert_eq!(back.docs.len(), 1);
        let doc = &back.docs[0];
        assert_eq!(doc.provider, "tesseract");
        assert_eq!(doc.confidence, 0.93);
        assert_eq!(doc.processing_time_ms, 412);
        assert_eq!(doc.ingested_at, 1_700_000_000);
        assert_eq!(doc.art.doc_name, "scan_001.png");
        assert_eq!(doc.art.kmap, batch.docs[0].art.kmap);
        assert_eq!(doc.art.full_blob, vec![1, 2, 3, 4]);
        assert_eq!(doc.art.stac_chunks, batch.docs[0].art.stac_chunks);
    }

    #[test]
    fn truncated_or_garbled_payloads_are_rejected() {
        let bytes = encode_batch(&sample_batch());
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(
                decode_batch(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(decode_batch(&wrong_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_batch(&trailing).is_err());
    }

    #[test]
    fn like_matcher_semantics() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("scan_%.png", "scan_001.png"));
        assert!(like_match("scan___", "scan001"));
        assert!(!like_match("scan___", "scan01"));
        assert!(like_match("%.png", "a.png"));
        assert!(!like_match("%.png", "a.pngx"));
        assert!(like_match("a%b%c", "aXXbYYc"));
        assert!(!like_match("a%b%c", "aXXcYYb"));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
    }
}
