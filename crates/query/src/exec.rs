//! Filescan executors for the four access methods and top-NumAns ranking.
//!
//! All four return a *probabilistic relation*: `(DataKey, probability)`
//! rows ranked by probability, truncated to `NumAns` (the paper sets 100,
//! "greater than the number of answers in the ground truth"). A line is
//! an answer iff its match probability is positive; FullSFA's noise floor
//! makes almost every line weakly positive, which is exactly why its
//! precision collapses while recall is perfect (§5.1).

use crate::error::QueryError;
use crate::eval::{eval_sfa, eval_strings};
use crate::query::Query;
use crate::store::OcrStore;

/// Which representation a query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The single most likely transcription (what Google Books stores).
    Map,
    /// The k most likely transcriptions per line.
    KMap,
    /// The complete OCR SFA.
    FullSfa,
    /// The Staccato chunk graph.
    Staccato,
}

impl Approach {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            Approach::Map => "MAP",
            Approach::KMap => "k-MAP",
            Approach::FullSfa => "FullSFA",
            Approach::Staccato => "STACCATO",
        }
    }

    /// All four, in the paper's column order.
    pub fn all() -> [Approach; 4] {
        [Approach::Map, Approach::KMap, Approach::FullSfa, Approach::Staccato]
    }
}

/// One row of the probabilistic answer relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// The line's DataKey.
    pub data_key: i64,
    /// Probability that the line matches the query.
    pub probability: f64,
}

/// Rank candidate answers: positive probability only, descending, ties by
/// DataKey, truncated to `num_ans`.
pub fn rank_answers(mut answers: Vec<Answer>, num_ans: usize) -> Vec<Answer> {
    answers.retain(|a| a.probability > 0.0);
    answers.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.data_key.cmp(&b.data_key))
    });
    answers.truncate(num_ans);
    answers
}

/// Run `query` over the chosen representation with a full filescan,
/// evaluating lines on `threads` worker threads.
///
/// §5.4 of the paper: "One can speedup query answering in all of the
/// approaches by partitioning the dataset across multiple machines" — the
/// probability computations are independent per line, so the scan
/// partitions trivially. The scan itself stays sequential (one buffer
/// pool); only the CPU-heavy decode + DFA evaluation fans out.
pub fn filescan_query_parallel(
    store: &OcrStore,
    approach: Approach,
    query: &Query,
    num_ans: usize,
    threads: usize,
) -> Result<Vec<Answer>, QueryError> {
    let threads = threads.max(1);
    if threads == 1 {
        return filescan_query(store, approach, query, num_ans);
    }
    match approach {
        // String representations are cheap to evaluate; the scan
        // dominates, so parallelism buys nothing — run sequentially.
        Approach::Map | Approach::KMap => filescan_query(store, approach, query, num_ans),
        Approach::FullSfa | Approach::Staccato => {
            let rows = match approach {
                Approach::FullSfa => store.scan_full_sfa()?,
                _ => store.scan_staccato()?,
            };
            let chunk = rows.len().div_ceil(threads).max(1);
            let mut answers: Vec<Answer> = Vec::with_capacity(rows.len());
            let results: Vec<Vec<Answer>> = std::thread::scope(|scope| {
                let handles: Vec<_> = rows
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            slice
                                .iter()
                                .map(|(key, sfa)| Answer {
                                    data_key: *key,
                                    probability: eval_sfa(&query.dfa, sfa),
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            for r in results {
                answers.extend(r);
            }
            Ok(rank_answers(answers, num_ans))
        }
    }
}

/// Run `query` over the chosen representation with a full filescan.
pub fn filescan_query(
    store: &OcrStore,
    approach: Approach,
    query: &Query,
    num_ans: usize,
) -> Result<Vec<Answer>, QueryError> {
    let candidates: Vec<Answer> = match approach {
        Approach::Map => store
            .scan_map()?
            .into_iter()
            .map(|(key, s, p)| Answer {
                data_key: key,
                probability: eval_strings(&query.dfa, std::iter::once((s.as_str(), p))),
            })
            .collect(),
        Approach::KMap => store
            .scan_kmap()?
            .into_iter()
            .map(|(key, strings)| Answer {
                data_key: key,
                probability: eval_strings(
                    &query.dfa,
                    strings.iter().map(|(s, p)| (s.as_str(), *p)),
                ),
            })
            .collect(),
        Approach::FullSfa => store
            .scan_full_sfa()?
            .into_iter()
            .map(|(key, sfa)| Answer { data_key: key, probability: eval_sfa(&query.dfa, &sfa) })
            .collect(),
        Approach::Staccato => store
            .scan_staccato()?
            .into_iter()
            .map(|(key, sfa)| Answer { data_key: key, probability: eval_sfa(&query.dfa, &sfa) })
            .collect(),
    };
    Ok(rank_answers(candidates, num_ans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{LoadOptions, OcrStore};
    use staccato_core::StaccatoParams;
    use staccato_ocr::{generate, ChannelConfig, CorpusKind, Dataset};
    use staccato_storage::Database;

    fn store_with(lines: usize, seed: u64) -> (OcrStore, Dataset) {
        let dataset = generate(CorpusKind::DbPapers, lines, seed);
        let db = Database::in_memory(512).unwrap();
        let opts = LoadOptions {
            channel: ChannelConfig::compact(seed),
            kmap_k: 10,
            staccato: StaccatoParams::new(10, 10),
            parallelism: 2,
        };
        (OcrStore::load(db, &dataset, &opts).unwrap(), dataset)
    }

    #[test]
    fn rank_answers_orders_and_truncates() {
        let raw = vec![
            Answer { data_key: 1, probability: 0.2 },
            Answer { data_key: 2, probability: 0.0 },
            Answer { data_key: 3, probability: 0.9 },
            Answer { data_key: 4, probability: 0.2 },
        ];
        let ranked = rank_answers(raw, 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].data_key, 3);
        assert_eq!(ranked[1].data_key, 1); // tie with 4 broken by key
    }

    #[test]
    fn fullsfa_recall_dominates_map() {
        let (store, dataset) = store_with(40, 11);
        let query = Query::keyword("database").unwrap();
        let truth: Vec<i64> = dataset
            .lines()
            .enumerate()
            .filter(|(_, (_, _, l))| l.contains("database"))
            .map(|(i, _)| i as i64)
            .collect();
        assert!(!truth.is_empty(), "corpus must contain the term");

        let map = filescan_query(&store, Approach::Map, &query, 100).unwrap();
        let full = filescan_query(&store, Approach::FullSfa, &query, 100).unwrap();
        let found = |answers: &[Answer], key: i64| answers.iter().any(|a| a.data_key == key);
        // FullSFA must find every true line (the truth always survives in
        // the full model).
        for &t in &truth {
            assert!(found(&full, t), "FullSFA missed true line {t}");
        }
        // And MAP can never find more true lines than FullSFA.
        let map_tp = truth.iter().filter(|&&t| found(&map, t)).count();
        let full_tp = truth.iter().filter(|&&t| found(&full, t)).count();
        assert!(map_tp <= full_tp);
    }

    #[test]
    fn approach_ordering_map_kmap_staccato_fullsfa() {
        // Retained mass ordering implies per-line probability ordering:
        // P_MAP ≤ P_kMAP and P_STACCATO ≤ P_FullSFA for every line.
        let (store, _) = store_with(15, 23);
        let query = Query::keyword("data").unwrap();
        let by_key = |answers: Vec<Answer>| -> std::collections::HashMap<i64, f64> {
            answers.into_iter().map(|a| (a.data_key, a.probability)).collect()
        };
        let map = by_key(filescan_query(&store, Approach::Map, &query, 1000).unwrap());
        let kmap = by_key(filescan_query(&store, Approach::KMap, &query, 1000).unwrap());
        let stac = by_key(filescan_query(&store, Approach::Staccato, &query, 1000).unwrap());
        let full = by_key(filescan_query(&store, Approach::FullSfa, &query, 1000).unwrap());
        for (key, p) in &map {
            assert!(kmap.get(key).copied().unwrap_or(0.0) >= p - 1e-9, "kMAP < MAP at {key}");
        }
        for (key, p) in &stac {
            assert!(full.get(key).copied().unwrap_or(0.0) >= p - 1e-9, "Full < Stac at {key}");
        }
    }

    #[test]
    fn num_ans_caps_result_size() {
        let (store, _) = store_with(30, 7);
        // 'a' appears nearly everywhere → FullSFA matches nearly all lines.
        let query = Query::keyword("a").unwrap();
        let full = filescan_query(&store, Approach::FullSfa, &query, 5).unwrap();
        assert_eq!(full.len(), 5);
        for w in full.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
    }

    #[test]
    fn approach_names_for_tables() {
        assert_eq!(Approach::Map.name(), "MAP");
        assert_eq!(Approach::all().len(), 4);
    }

    #[test]
    fn parallel_scan_equals_sequential() {
        let (store, _) = store_with(25, 13);
        for pattern in ["database", r"Sec(\x)*\d"] {
            let query = Query::regex(pattern).unwrap();
            for ap in Approach::all() {
                let seq = filescan_query(&store, ap, &query, 1000).unwrap();
                let par = filescan_query_parallel(&store, ap, &query, 1000, 4).unwrap();
                assert_eq!(seq.len(), par.len(), "{} {pattern}", ap.name());
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.data_key, b.data_key);
                    assert!((a.probability - b.probability).abs() < 1e-12);
                }
            }
        }
    }
}
