//! Streaming filescan executors for the four access methods and bounded
//! top-NumAns ranking.
//!
//! All four produce a *probabilistic relation*: `(DataKey, probability)`
//! rows ranked by probability, truncated to `NumAns` (the paper sets 100,
//! "greater than the number of answers in the ground truth"). A line is
//! an answer iff its match probability is positive; FullSFA's noise floor
//! makes almost every line weakly positive, which is exactly why its
//! precision collapses while recall is perfect (§5.1).
//!
//! Execution is pull-based: each executor consumes a row cursor from
//! [`OcrStore`] one line at a time and feeds a bounded [`TopK`] heap, so
//! sequential query memory is `O(NumAns + one line)` regardless of
//! corpus size (a parallel scan holds one private accumulator per worker
//! plus a bounded in-flight window: `O(P · NumAns + P · 4 lines)`). With
//! `parallelism > 1` every representation scans morsel-style: one thread
//! drives the (sequential) heap scan and hands rows to worker threads
//! over a bounded channel; each worker folds its share into a private
//! accumulator (a [`TopK`] heap or a partial aggregate) and the driver
//! merges the per-worker accumulators in worker order once the scan is
//! drained (§5.4: per-line probability computations are independent, so
//! the scan partitions trivially). Merging bounded heaps is exact: every
//! answer of the global top-k survives in its worker's local top-k, and
//! the final heap re-applies the full ranking order, ties included.
//!
//! These executors are plumbing; the public entry point is
//! [`Staccato::execute`](crate::session::Staccato::execute) with a
//! [`QueryRequest`](crate::plan::QueryRequest).

use crate::agg::StreamingAggregate;
use crate::error::QueryError;
use crate::kernel::ScanScratch;
use crate::plan::ExecStats;
use crate::query::Query;
use crate::store::OcrStore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Which representation a query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The single most likely transcription (what Google Books stores).
    Map,
    /// The k most likely transcriptions per line.
    KMap,
    /// The complete OCR SFA.
    FullSfa,
    /// The Staccato chunk graph.
    Staccato,
}

impl Approach {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            Approach::Map => "MAP",
            Approach::KMap => "k-MAP",
            Approach::FullSfa => "FullSFA",
            Approach::Staccato => "STACCATO",
        }
    }

    /// All four, in the paper's column order.
    pub fn all() -> [Approach; 4] {
        [
            Approach::Map,
            Approach::KMap,
            Approach::FullSfa,
            Approach::Staccato,
        ]
    }
}

/// Is a line with this match probability a tuple of the answer relation?
/// The single qualification rule shared by the ranked ([`TopK`]) and
/// aggregate ([`crate::agg::StreamingAggregate`]) sinks: positive
/// probability, at or above the request's `Prob >=` threshold.
pub fn qualifies(probability: f64, min_prob: f64) -> bool {
    probability > 0.0 && probability >= min_prob
}

/// Normalize a user-supplied probability threshold: NaN means "no
/// threshold", everything else clamps into `[0, 1]`. Applied at every
/// public entry point that accepts one
/// ([`QueryRequest::min_prob`](crate::plan::QueryRequest::min_prob),
/// [`TopK::with_min_prob`], [`StreamingAggregate::new`]), so a NaN can
/// never silently drop every answer.
///
/// [`StreamingAggregate::new`]: crate::agg::StreamingAggregate::new
pub fn sanitize_min_prob(min_prob: f64) -> f64 {
    if min_prob.is_nan() {
        0.0
    } else {
        min_prob.clamp(0.0, 1.0)
    }
}

/// One row of the probabilistic answer relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer {
    /// The line's DataKey.
    pub data_key: i64,
    /// Probability that the line matches the query.
    pub probability: f64,
}

/// `Answer` with the ranking order: higher probability first, ties broken
/// by smaller DataKey. `Ord` is total because probabilities are clamped
/// finite by construction (NaN compares as equal, keeping the heap sane).
#[derive(Debug, Clone, Copy, PartialEq)]
struct RankedAnswer(Answer);

impl Eq for RankedAnswer {}

impl Ord for RankedAnswer {
    fn cmp(&self, other: &Self) -> Ordering {
        // "greater" = better = higher probability, then smaller key.
        self.0
            .probability
            .partial_cmp(&other.0.probability)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.0.data_key.cmp(&self.0.data_key))
    }
}

impl PartialOrd for RankedAnswer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k accumulator: a min-heap of the best `k` answers seen so
/// far. `push` is `O(log k)`; a full filescan ranks in `O(n log k)`
/// instead of the full `O(n log n)` sort the first revision paid.
///
/// SQL `LIMIT n OFFSET m` lowers into one heap: the accumulator keeps
/// the best `n + m` answers and [`TopK::into_ranked`] drops the leading
/// `m`, so a paged query ranks against the *whole* relation (honest
/// pagination) while memory stays `O(n + m)`.
#[derive(Debug)]
pub struct TopK {
    cap: usize,
    skip: usize,
    min_prob: f64,
    heap: BinaryHeap<std::cmp::Reverse<RankedAnswer>>,
}

impl TopK {
    /// Keep the best `cap` answers.
    pub fn new(cap: usize) -> TopK {
        TopK::with_min_prob(cap, 0.0)
    }

    /// Keep the best `cap` answers with probability `>= min_prob` — the
    /// SQL `AND Prob >= t` filter, applied before anything enters the
    /// heap so below-threshold rows cost nothing to rank. The threshold
    /// is sanitized by [`sanitize_min_prob`].
    pub fn with_min_prob(cap: usize, min_prob: f64) -> TopK {
        TopK::with_limit_offset(cap, 0, min_prob)
    }

    /// Keep the best `limit` answers *after* skipping the `offset`
    /// best-ranked ones — SQL `LIMIT limit OFFSET offset`. The heap holds
    /// `limit + offset` candidates so the skipped prefix is ranked
    /// exactly, and [`TopK::into_ranked`] drops it.
    pub fn with_limit_offset(limit: usize, offset: usize, min_prob: f64) -> TopK {
        let cap = limit.saturating_add(offset);
        TopK {
            cap,
            skip: offset,
            min_prob: sanitize_min_prob(min_prob),
            heap: BinaryHeap::with_capacity(cap.min(4096).saturating_add(1)),
        }
    }

    /// Offer one answer. Non-positive or below-threshold probabilities
    /// are not answers.
    pub fn push(&mut self, answer: Answer) {
        if !qualifies(answer.probability, self.min_prob) || self.cap == 0 {
            return;
        }
        let entry = std::cmp::Reverse(RankedAnswer(answer));
        if self.heap.len() < self.cap {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry.0 > worst.0 {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// Total candidates this heap retains (`limit + offset`).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Ranked answers skipped by [`TopK::into_ranked`] (the `OFFSET`).
    pub fn skip(&self) -> usize {
        self.skip
    }

    /// The qualification threshold (already sanitized).
    pub fn min_prob(&self) -> f64 {
        self.min_prob
    }

    /// Answers currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the accumulator empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finish: answers in rank order (probability descending, DataKey
    /// ascending on ties), with the first `skip` (OFFSET) rows dropped.
    pub fn into_ranked(self) -> Vec<Answer> {
        let mut out: Vec<RankedAnswer> = self.heap.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out.into_iter().skip(self.skip).map(|r| r.0).collect()
    }
}

/// Rank candidate answers: positive probability only, descending, ties by
/// DataKey, truncated to `num_ans`. Heap-bounded: `O(n log num_ans)`.
pub fn rank_answers(answers: Vec<Answer>, num_ans: usize) -> Vec<Answer> {
    let mut topk = TopK::new(num_ans);
    for a in answers {
        topk.push(a);
    }
    topk.into_ranked()
}

/// Where executors deliver per-line answers: the bounded ranking heap for
/// `SELECT DataKey` queries, or the constant-space accumulator for
/// aggregate projections. Both apply the same qualification (positive
/// probability, above any threshold), so switching the projection never
/// changes which lines count as answers.
#[derive(Debug)]
pub(crate) enum Sink<'a> {
    /// Rank into a bounded top-k heap.
    Ranked(&'a mut TopK),
    /// Fold into a streaming aggregate.
    Aggregate(&'a mut StreamingAggregate),
}

impl Sink<'_> {
    /// Deliver one line's answer.
    pub(crate) fn offer(&mut self, answer: Answer) {
        match self {
            Sink::Ranked(topk) => topk.push(answer),
            Sink::Aggregate(agg) => agg.fold(answer),
        }
    }

    /// An owned, empty accumulator of the same kind and qualification
    /// rules — the per-worker sink of the morsel-parallel scan.
    fn fork(&self) -> OwnedSink {
        match self {
            Sink::Ranked(topk) => {
                OwnedSink::Ranked(TopK::with_min_prob(topk.cap(), topk.min_prob()))
            }
            Sink::Aggregate(agg) => OwnedSink::Aggregate(StreamingAggregate::new(agg.min_prob())),
        }
    }

    /// Fold one worker's accumulator back in. Ranked merges re-offer the
    /// worker's surviving candidates into the shared heap — exact,
    /// because the heap's total order (probability, then DataKey) decides
    /// every tie the same way a sequential scan would.
    fn absorb(&mut self, local: OwnedSink) {
        match (self, local) {
            (Sink::Ranked(topk), OwnedSink::Ranked(local)) => {
                for answer in local.into_ranked() {
                    topk.push(answer);
                }
            }
            (Sink::Aggregate(agg), OwnedSink::Aggregate(local)) => agg.merge(&local),
            _ => unreachable!("forked sink kind always matches its parent"),
        }
    }
}

/// A worker's private accumulator (see [`Sink::fork`]).
enum OwnedSink {
    Ranked(TopK),
    Aggregate(StreamingAggregate),
}

impl OwnedSink {
    fn offer(&mut self, answer: Answer) {
        match self {
            OwnedSink::Ranked(topk) => topk.push(answer),
            OwnedSink::Aggregate(agg) => agg.fold(answer),
        }
    }
}

/// Streaming filescan over `approach`, evaluating lines on up to
/// `parallelism` workers, delivering answers into `sink`, counting into
/// `stats`. Every representation partitions the same way: the scan stays
/// sequential (one buffer pool cursor) while per-line evaluation fans
/// out.
///
/// Evaluation runs through the query's compiled [`ScanKernel`]
/// (see [`crate::kernel`]): rows stream as raw bytes and are decoded
/// *borrowed* inside each worker (no per-line `String`/`Sfa`
/// materialization), blobs run through the arena DP with interned label
/// transitions, and the anchor prescreen skips lines that provably
/// cannot match — counted in [`ExecStats::prescreen_skipped`]. Skipped
/// lines still count as evaluated: the prescreen changes *how* a line's
/// probability is computed, never whether it is.
///
/// [`ScanKernel`]: crate::kernel::ScanKernel
pub(crate) fn exec_filescan(
    store: &OcrStore,
    approach: Approach,
    query: &Query,
    parallelism: usize,
    sink: &mut Sink<'_>,
    stats: &mut ExecStats,
) -> Result<(), QueryError> {
    let parallelism = parallelism.max(1);
    let kernel = &query.kernel;
    let skipped = AtomicU64::new(0);
    let skipped = &skipped;
    let result = match approach {
        Approach::Map => scan_into(
            store.map_raw_cursor()?,
            |_| 1,
            || {
                move |bytes: &Vec<u8>| {
                    let (s, p) = crate::store::decode_map_row(bytes)?;
                    let out = kernel.eval_string(s, p);
                    if out.prescreened {
                        skipped.fetch_add(1, AtomicOrdering::Relaxed);
                    }
                    Ok(out.probability)
                }
            },
            parallelism,
            sink,
            stats,
        ),
        Approach::KMap => scan_into(
            store.kmap_raw_cursor()?,
            |rows| rows.len() as u64,
            || {
                move |rows: &Vec<Vec<u8>>| {
                    let mut decoded = Vec::with_capacity(rows.len());
                    for row in rows {
                        decoded.push(crate::store::decode_kmap_row(row)?);
                    }
                    let out = kernel.eval_string_group(decoded.iter().copied());
                    if out.prescreened {
                        skipped.fetch_add(1, AtomicOrdering::Relaxed);
                    }
                    Ok(out.probability)
                }
            },
            parallelism,
            sink,
            stats,
        ),
        Approach::FullSfa | Approach::Staccato => {
            if parallelism <= 1 {
                // Single-threaded blob scans stream borrowed bytes through
                // one reusable blob buffer (no per-row `Vec`); the morsel
                // path below needs owned rows to ship across the channel.
                let mut scratch = ScanScratch::new();
                let stats = &mut *stats;
                let each = move |key: i64, blob: &[u8]| -> Result<(), QueryError> {
                    stats.rows_scanned += 1;
                    stats.lines_evaluated += 1;
                    let out = kernel.eval_blob(&mut scratch, blob)?;
                    if out.prescreened {
                        skipped.fetch_add(1, AtomicOrdering::Relaxed);
                    }
                    sink.offer(Answer {
                        data_key: key,
                        probability: out.probability,
                    });
                    Ok(())
                };
                match approach {
                    Approach::FullSfa => store.for_each_full_sfa_blob(each),
                    _ => store.for_each_staccato_blob(each),
                }
            } else {
                let cursor = match approach {
                    Approach::FullSfa => store.full_sfa_blobs()?,
                    _ => store.staccato_blobs()?,
                };
                scan_into(
                    cursor,
                    |_| 1,
                    || {
                        let mut scratch = ScanScratch::new();
                        move |blob: &Vec<u8>| {
                            let out = kernel.eval_blob(&mut scratch, blob)?;
                            if out.prescreened {
                                skipped.fetch_add(1, AtomicOrdering::Relaxed);
                            }
                            Ok(out.probability)
                        }
                    },
                    parallelism,
                    sink,
                    stats,
                )
            }
        }
    };
    stats.prescreen_skipped += skipped.load(AtomicOrdering::Relaxed);
    result
}

/// The shared scan driver: pull `(DataKey, payload)` rows off `cursor`
/// and fold per-line probabilities into `sink`, sequentially or
/// morsel-parallel. `rows_of` is the physical row count a payload
/// represents (k-MAP reads k rows per line). `make_eval` builds one
/// evaluation closure per worker — the closure owns that worker's
/// mutable scan scratch (decode arena, label memo, DP vector pool), so
/// workers never contend on shared state.
fn scan_into<T, E>(
    cursor: impl Iterator<Item = Result<(i64, T), QueryError>>,
    rows_of: impl Fn(&T) -> u64,
    make_eval: impl Fn() -> E + Sync,
    parallelism: usize,
    sink: &mut Sink<'_>,
    stats: &mut ExecStats,
) -> Result<(), QueryError>
where
    T: Send,
    E: FnMut(&T) -> Result<f64, QueryError>,
{
    if parallelism <= 1 {
        let mut eval = make_eval();
        for item in cursor {
            let (key, payload) = item?;
            stats.rows_scanned += rows_of(&payload);
            stats.lines_evaluated += 1;
            sink.offer(Answer {
                data_key: key,
                probability: eval(&payload)?,
            });
        }
        return Ok(());
    }
    morsel_scan(cursor, rows_of, make_eval, parallelism, sink, stats)
}

/// What one scan worker hands back when the work queue drains.
struct WorkerOutcome {
    sink: OwnedSink,
    lines: u64,
    error: Option<QueryError>,
}

/// Fan per-line evaluation out to `parallelism` workers while this
/// thread drives the (sequential) heap scan. Workers pull rows from a
/// bounded queue and fold answers into private accumulators; the driver
/// merges them in worker-index order once the scan is drained, so merged
/// ranked results are identical to a sequential run.
fn morsel_scan<T, E>(
    cursor: impl Iterator<Item = Result<(i64, T), QueryError>>,
    rows_of: impl Fn(&T) -> u64,
    make_eval: impl Fn() -> E + Sync,
    parallelism: usize,
    sink: &mut Sink<'_>,
    stats: &mut ExecStats,
) -> Result<(), QueryError>
where
    T: Send,
    E: FnMut(&T) -> Result<f64, QueryError>,
{
    std::thread::scope(|scope| -> Result<(), QueryError> {
        // Bounded work queue: the scan stays ahead of the workers without
        // ever materializing more than a window of rows.
        let (work_tx, work_rx) = mpsc::sync_channel::<(i64, T)>(parallelism * 4);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let make_eval = &make_eval;
        let mut handles = Vec::with_capacity(parallelism);
        for _ in 0..parallelism {
            let work_rx = Arc::clone(&work_rx);
            let mut local = sink.fork();
            handles.push(scope.spawn(move || {
                // Per-worker evaluation state, built on the worker's own
                // thread: scratch buffers are owned, never shared.
                let mut eval = make_eval();
                let mut lines = 0u64;
                let mut error = None;
                loop {
                    let next = work_rx.lock().expect("queue lock").recv();
                    let Ok((key, payload)) = next else { break };
                    if error.is_some() {
                        continue; // drain cheaply; the query already failed
                    }
                    match eval(&payload) {
                        Ok(probability) => {
                            lines += 1;
                            local.offer(Answer {
                                data_key: key,
                                probability,
                            });
                        }
                        Err(e) => error = Some(e),
                    }
                }
                WorkerOutcome {
                    sink: local,
                    lines,
                    error,
                }
            }));
        }
        // Drop the driver's receiver handle: if every worker dies (only
        // on panic), the channel closes and `send` below errors instead
        // of blocking forever once the bounded queue fills.
        drop(work_rx);

        let mut scan_error = None;
        for item in cursor {
            match item {
                Ok((key, payload)) => {
                    stats.rows_scanned += rows_of(&payload);
                    if work_tx.send((key, payload)).is_err() {
                        break; // all workers gone (only on panic)
                    }
                }
                Err(e) => {
                    scan_error = Some(e);
                    break;
                }
            }
        }
        drop(work_tx);

        let mut eval_error = None;
        for handle in handles {
            let outcome = handle.join().expect("scan worker panicked");
            stats.lines_evaluated += outcome.lines;
            if let Some(e) = outcome.error {
                eval_error = Some(e);
            }
            sink.absorb(outcome.sink);
        }
        match (scan_error, eval_error) {
            (Some(e), _) | (None, Some(e)) => Err(e),
            (None, None) => Ok(()),
        }
    })
}

/// Run `query` over the chosen representation with a full filescan,
/// evaluating lines on `threads` worker threads.
#[deprecated(
    since = "0.2.0",
    note = "use `Staccato::execute` with `QueryRequest::...parallelism(n)` instead"
)]
pub fn filescan_query_parallel(
    store: &OcrStore,
    approach: Approach,
    query: &Query,
    num_ans: usize,
    threads: usize,
) -> Result<Vec<Answer>, QueryError> {
    let mut stats = ExecStats::default();
    let mut topk = TopK::new(num_ans);
    exec_filescan(
        store,
        approach,
        query,
        threads.max(1),
        &mut Sink::Ranked(&mut topk),
        &mut stats,
    )?;
    Ok(topk.into_ranked())
}

/// Run `query` over the chosen representation with a full filescan.
#[deprecated(
    since = "0.2.0",
    note = "use `Staccato::execute` with a `QueryRequest` instead"
)]
pub fn filescan_query(
    store: &OcrStore,
    approach: Approach,
    query: &Query,
    num_ans: usize,
) -> Result<Vec<Answer>, QueryError> {
    let mut stats = ExecStats::default();
    let mut topk = TopK::new(num_ans);
    exec_filescan(
        store,
        approach,
        query,
        1,
        &mut Sink::Ranked(&mut topk),
        &mut stats,
    )?;
    Ok(topk.into_ranked())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{LoadOptions, OcrStore};
    use staccato_core::StaccatoParams;
    use staccato_ocr::{generate, ChannelConfig, CorpusKind, Dataset};
    use staccato_storage::Database;

    fn store_with(lines: usize, seed: u64) -> (OcrStore, Dataset) {
        let dataset = generate(CorpusKind::DbPapers, lines, seed);
        let db = Database::in_memory(512).unwrap();
        let opts = LoadOptions {
            channel: ChannelConfig::compact(seed),
            kmap_k: 10,
            staccato: StaccatoParams::new(10, 10),
            parallelism: 2,
        };
        (OcrStore::load(db, &dataset, &opts).unwrap(), dataset)
    }

    fn run(store: &OcrStore, approach: Approach, query: &Query, num_ans: usize) -> Vec<Answer> {
        let mut stats = ExecStats::default();
        let mut topk = TopK::new(num_ans);
        exec_filescan(
            store,
            approach,
            query,
            1,
            &mut Sink::Ranked(&mut topk),
            &mut stats,
        )
        .unwrap();
        topk.into_ranked()
    }

    #[test]
    fn rank_answers_orders_and_truncates() {
        let raw = vec![
            Answer {
                data_key: 1,
                probability: 0.2,
            },
            Answer {
                data_key: 2,
                probability: 0.0,
            },
            Answer {
                data_key: 3,
                probability: 0.9,
            },
            Answer {
                data_key: 4,
                probability: 0.2,
            },
        ];
        let ranked = rank_answers(raw, 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].data_key, 3);
        assert_eq!(ranked[1].data_key, 1); // tie with 4 broken by key
    }

    #[test]
    fn offset_windows_agree_with_the_unpaged_ranking() {
        // LIMIT n OFFSET m must return rows m..m+n of the full ranking —
        // including past adversarial ties — and an offset past the end is
        // an empty page, not an error.
        let answers: Vec<Answer> = (0..150)
            .map(|i| Answer {
                data_key: 149 - i,
                probability: ((i % 5) as f64 + 1.0) / 6.0,
            })
            .collect();
        let full = rank_answers(answers.clone(), usize::MAX);
        for (limit, offset) in [
            (10usize, 0usize),
            (10, 10),
            (7, 33),
            (50, 140),
            (10, 10_000),
        ] {
            let mut topk = TopK::with_limit_offset(limit, offset, 0.0);
            for a in &answers {
                topk.push(*a);
            }
            let page = topk.into_ranked();
            let expect: Vec<Answer> = full.iter().skip(offset).take(limit).copied().collect();
            assert_eq!(page, expect, "LIMIT {limit} OFFSET {offset}");
        }
    }

    #[test]
    fn topk_equals_full_sort_on_adversarial_ties() {
        // Many duplicate probabilities so heap tie-breaks are exercised.
        let answers: Vec<Answer> = (0..200)
            .map(|i| Answer {
                data_key: 199 - i,
                probability: ((i % 7) as f64) / 7.0,
            })
            .collect();
        for num_ans in [1usize, 3, 50, 200, 500] {
            let mut sorted = answers.clone();
            sorted.retain(|a| a.probability > 0.0);
            sorted.sort_by(|a, b| {
                b.probability
                    .partial_cmp(&a.probability)
                    .unwrap()
                    .then(a.data_key.cmp(&b.data_key))
            });
            sorted.truncate(num_ans);
            assert_eq!(
                rank_answers(answers.clone(), num_ans),
                sorted,
                "num_ans={num_ans}"
            );
        }
    }

    #[test]
    fn fullsfa_recall_dominates_map() {
        let (store, dataset) = store_with(40, 11);
        let query = Query::keyword("database").unwrap();
        let truth: Vec<i64> = dataset
            .lines()
            .enumerate()
            .filter(|(_, (_, _, l))| l.contains("database"))
            .map(|(i, _)| i as i64)
            .collect();
        assert!(!truth.is_empty(), "corpus must contain the term");

        let map = run(&store, Approach::Map, &query, 100);
        let full = run(&store, Approach::FullSfa, &query, 100);
        let found = |answers: &[Answer], key: i64| answers.iter().any(|a| a.data_key == key);
        // FullSFA must find every true line (the truth always survives in
        // the full model).
        for &t in &truth {
            assert!(found(&full, t), "FullSFA missed true line {t}");
        }
        // And MAP can never find more true lines than FullSFA.
        let map_tp = truth.iter().filter(|&&t| found(&map, t)).count();
        let full_tp = truth.iter().filter(|&&t| found(&full, t)).count();
        assert!(map_tp <= full_tp);
    }

    #[test]
    fn approach_ordering_map_kmap_staccato_fullsfa() {
        // Retained mass ordering implies per-line probability ordering:
        // P_MAP ≤ P_kMAP and P_STACCATO ≤ P_FullSFA for every line.
        let (store, _) = store_with(15, 23);
        let query = Query::keyword("data").unwrap();
        let by_key = |answers: Vec<Answer>| -> std::collections::HashMap<i64, f64> {
            answers
                .into_iter()
                .map(|a| (a.data_key, a.probability))
                .collect()
        };
        let map = by_key(run(&store, Approach::Map, &query, 1000));
        let kmap = by_key(run(&store, Approach::KMap, &query, 1000));
        let stac = by_key(run(&store, Approach::Staccato, &query, 1000));
        let full = by_key(run(&store, Approach::FullSfa, &query, 1000));
        for (key, p) in &map {
            assert!(
                kmap.get(key).copied().unwrap_or(0.0) >= p - 1e-9,
                "kMAP < MAP at {key}"
            );
        }
        for (key, p) in &stac {
            assert!(
                full.get(key).copied().unwrap_or(0.0) >= p - 1e-9,
                "Full < Stac at {key}"
            );
        }
    }

    #[test]
    fn num_ans_caps_result_size() {
        let (store, _) = store_with(30, 7);
        // 'a' appears nearly everywhere → FullSFA matches nearly all lines.
        let query = Query::keyword("a").unwrap();
        let full = run(&store, Approach::FullSfa, &query, 5);
        assert_eq!(full.len(), 5);
        for w in full.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
    }

    #[test]
    fn approach_names_for_tables() {
        assert_eq!(Approach::Map.name(), "MAP");
        assert_eq!(Approach::all().len(), 4);
    }

    #[test]
    fn parallel_scan_equals_sequential() {
        let (store, _) = store_with(25, 13);
        for pattern in ["database", r"Sec(\x)*\d"] {
            let query = Query::regex(pattern).unwrap();
            for ap in Approach::all() {
                let mut seq_stats = ExecStats::default();
                let mut seq_topk = TopK::new(1000);
                exec_filescan(
                    &store,
                    ap,
                    &query,
                    1,
                    &mut Sink::Ranked(&mut seq_topk),
                    &mut seq_stats,
                )
                .unwrap();
                let seq = seq_topk.into_ranked();
                let mut par_stats = ExecStats::default();
                let mut par_topk = TopK::new(1000);
                exec_filescan(
                    &store,
                    ap,
                    &query,
                    4,
                    &mut Sink::Ranked(&mut par_topk),
                    &mut par_stats,
                )
                .unwrap();
                let par = par_topk.into_ranked();
                assert_eq!(seq.len(), par.len(), "{} {pattern}", ap.name());
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.data_key, b.data_key);
                    assert!((a.probability - b.probability).abs() < 1e-12);
                }
                assert_eq!(seq_stats.rows_scanned, par_stats.rows_scanned);
                assert_eq!(seq_stats.lines_evaluated, par_stats.lines_evaluated);
            }
        }
    }

    #[test]
    fn parallel_aggregate_count_is_exact() {
        // COUNT(*) is merge-order independent, so the morsel scan must
        // produce the exact sequential count on every representation
        // (SUM/AVG may differ in ulps; COUNT may not).
        let (store, _) = store_with(25, 29);
        let query = Query::keyword("data").unwrap();
        for ap in Approach::all() {
            let count_with = |threads: usize| {
                let mut agg = crate::agg::StreamingAggregate::new(0.0);
                let mut stats = ExecStats::default();
                exec_filescan(
                    &store,
                    ap,
                    &query,
                    threads,
                    &mut Sink::Aggregate(&mut agg),
                    &mut stats,
                )
                .unwrap();
                (agg.rows(), stats)
            };
            let (seq, seq_stats) = count_with(1);
            let (par, par_stats) = count_with(4);
            assert_eq!(seq, par, "{}", ap.name());
            assert_eq!(seq_stats.rows_scanned, par_stats.rows_scanned);
            assert_eq!(seq_stats.lines_evaluated, par_stats.lines_evaluated);
        }
    }

    fn stats_of(store: &OcrStore, approach: Approach, query: &Query) -> ExecStats {
        let mut stats = ExecStats::default();
        let mut topk = TopK::new(100);
        exec_filescan(
            store,
            approach,
            query,
            1,
            &mut Sink::Ranked(&mut topk),
            &mut stats,
        )
        .unwrap();
        stats
    }

    #[test]
    fn filescan_stats_count_rows_and_lines() {
        let (store, _) = store_with(12, 3);
        let query = Query::keyword("data").unwrap();
        let stats = stats_of(&store, Approach::Staccato, &query);
        assert_eq!(stats.rows_scanned, 12);
        assert_eq!(stats.lines_evaluated, 12);
        assert_eq!(stats.postings_probed, 0);
        // k-MAP scans k rows per line but still evaluates one line each.
        let stats = stats_of(&store, Approach::KMap, &query);
        assert_eq!(stats.lines_evaluated, 12);
        assert!(stats.rows_scanned > 12, "k-MAP reads k rows per line");
    }

    #[test]
    fn topk_threshold_drops_rows_before_the_heap() {
        let answers: Vec<Answer> = [0.1, 0.5, 0.49999, 0.9, 0.0]
            .iter()
            .enumerate()
            .map(|(i, &p)| Answer {
                data_key: i as i64,
                probability: p,
            })
            .collect();
        let mut topk = TopK::with_min_prob(10, 0.5);
        for &a in &answers {
            topk.push(a);
        }
        let ranked = topk.into_ranked();
        assert_eq!(
            ranked.iter().map(|a| a.data_key).collect::<Vec<_>>(),
            vec![3, 1]
        );
        // Threshold 0.0 behaves exactly like the unthresholded heap.
        let mut a = TopK::new(10);
        let mut b = TopK::with_min_prob(10, 0.0);
        for &x in &answers {
            a.push(x);
            b.push(x);
        }
        assert_eq!(a.into_ranked(), b.into_ranked());
        // Threshold 1.0 keeps only certain answers.
        let mut c = TopK::with_min_prob(10, 1.0);
        for &x in &answers {
            c.push(x);
        }
        assert!(c.is_empty());
        c.push(Answer {
            data_key: 9,
            probability: 1.0,
        });
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn aggregate_sink_agrees_with_ranked_sink_on_qualification() {
        let (store, _) = store_with(15, 19);
        let query = Query::keyword("data").unwrap();
        for min_prob in [0.0, 0.3, 1.0] {
            let mut stats = ExecStats::default();
            let mut topk = TopK::with_min_prob(10_000, min_prob);
            exec_filescan(
                &store,
                Approach::Staccato,
                &query,
                1,
                &mut Sink::Ranked(&mut topk),
                &mut stats,
            )
            .unwrap();
            let ranked = topk.into_ranked();
            let mut agg = crate::agg::StreamingAggregate::new(min_prob);
            let mut stats = ExecStats::default();
            exec_filescan(
                &store,
                Approach::Staccato,
                &query,
                1,
                &mut Sink::Aggregate(&mut agg),
                &mut stats,
            )
            .unwrap();
            assert_eq!(agg.rows() as usize, ranked.len(), "min_prob={min_prob}");
            let sum: f64 = ranked.iter().map(|a| a.probability).sum();
            assert!(
                (agg.finish(crate::agg::AggregateFunc::SumProb) - sum).abs() < 1e-12,
                "min_prob={min_prob}"
            );
        }
    }

    #[test]
    fn deprecated_shims_still_answer() {
        let (store, _) = store_with(10, 5);
        let query = Query::keyword("data").unwrap();
        #[allow(deprecated)]
        let a = filescan_query(&store, Approach::Map, &query, 10).unwrap();
        #[allow(deprecated)]
        let b = filescan_query_parallel(&store, Approach::Map, &query, 10, 4).unwrap();
        assert_eq!(a, b);
    }
}
