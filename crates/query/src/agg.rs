//! Probabilistic aggregation over query answers.
//!
//! The paper's future work (§7) is to "extend Staccato … using
//! aggregation with a probabilistic RDBMS": the select-project queries
//! here produce a probabilistic relation (one independent Bernoulli event
//! per line, since per-line SFAs are independent), and downstream systems
//! like MystiQ/Trio aggregate over it. This module implements the three
//! standard aggregates that workload needs:
//!
//! * [`expected_count`] — `E[COUNT(*)]` by linearity of expectation;
//! * [`expected_sum`] — `E[SUM(attr)]` for a numeric attribute joined to
//!   the answers (the §2.1 `SUM(Loss)` use case);
//! * [`count_distribution`] — the full Poisson–binomial distribution of
//!   `COUNT(*)`, computed by the classic `O(n²)` dynamic program, from
//!   which [`threshold_probability`] answers `P[COUNT(*) ≥ τ]`.
//!
//! The SQL front-end's aggregate projections (`SELECT COUNT(*) | SUM(Prob)
//! | AVG(Prob)`) execute through [`StreamingAggregate`]: a constant-space
//! accumulator the executors fold every qualifying line into, so aggregate
//! plans never materialize the answer relation. `SUM(Prob)` is exactly
//! [`expected_count`] by linearity of expectation (the Koch–Olteanu
//! confidence-aggregation view); `COUNT(*)` counts the tuples of the
//! answer relation (positive probability, above any `Prob >=` threshold).

use crate::exec::Answer;

/// An aggregate projection of the SQL surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunc {
    /// `COUNT(*)` — number of tuples in the answer relation.
    CountStar,
    /// `SUM(Prob)` — `Σᵢ pᵢ`, i.e. `E[COUNT(*)]` by linearity.
    SumProb,
    /// `AVG(Prob)` — mean probability of the answer tuples (0 when empty).
    AvgProb,
}

impl AggregateFunc {
    /// The SQL spelling, as it appears in a `SELECT` list.
    pub fn sql_name(self) -> &'static str {
        match self {
            AggregateFunc::CountStar => "COUNT(*)",
            AggregateFunc::SumProb => "SUM(Prob)",
            AggregateFunc::AvgProb => "AVG(Prob)",
        }
    }
}

/// One computed aggregate: which function ran and the scalar it produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateResult {
    /// The aggregate that was evaluated.
    pub func: AggregateFunc,
    /// Its value over the answer relation.
    pub value: f64,
}

/// Constant-space accumulator for the SQL aggregates.
///
/// Executors fold one [`Answer`] per line; rows with non-positive
/// probability or below `min_prob` are not part of the answer relation and
/// are skipped — the same qualification the ranked path's `TopK` applies.
#[derive(Debug, Clone, Copy)]
pub struct StreamingAggregate {
    min_prob: f64,
    rows: u64,
    sum: f64,
}

impl StreamingAggregate {
    /// Accumulator over answers with probability `>= min_prob` (and
    /// `> 0`). The threshold is sanitized by
    /// [`crate::exec::sanitize_min_prob`].
    pub fn new(min_prob: f64) -> StreamingAggregate {
        StreamingAggregate {
            min_prob: crate::exec::sanitize_min_prob(min_prob),
            rows: 0,
            sum: 0.0,
        }
    }

    /// Fold one line's answer into the accumulator.
    pub fn fold(&mut self, answer: Answer) {
        if !crate::exec::qualifies(answer.probability, self.min_prob) {
            return;
        }
        self.rows += 1;
        self.sum += answer.probability;
    }

    /// Tuples folded so far (the `COUNT(*)` numerator).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The qualification threshold this accumulator was built with
    /// (already sanitized). Parallel executors use it to spawn per-worker
    /// accumulators that qualify identically.
    pub fn min_prob(&self) -> f64 {
        self.min_prob
    }

    /// Absorb a partial accumulator from a parallel worker. `COUNT(*)` is
    /// exact under any merge order; `SUM(Prob)`/`AVG(Prob)` reassociate
    /// the floating-point additions, so a parallel run can differ from a
    /// serial one in the last ulps (the same caveat any parallel SUM has).
    pub fn merge(&mut self, partial: &StreamingAggregate) {
        self.rows += partial.rows;
        self.sum += partial.sum;
    }

    /// Finish: the value of `func` over everything folded so far.
    pub fn finish(&self, func: AggregateFunc) -> f64 {
        match func {
            AggregateFunc::CountStar => self.rows as f64,
            AggregateFunc::SumProb => self.sum,
            AggregateFunc::AvgProb => {
                if self.rows == 0 {
                    0.0
                } else {
                    self.sum / self.rows as f64
                }
            }
        }
    }
}

/// Expected number of matching lines: `Σᵢ pᵢ`.
pub fn expected_count(answers: &[Answer]) -> f64 {
    answers.iter().map(|a| a.probability).sum()
}

/// Expected sum of `value(DataKey)` over matching lines:
/// `Σᵢ pᵢ · value(i)`. Lines missing from `value` contribute zero.
pub fn expected_sum(answers: &[Answer], value: impl Fn(i64) -> Option<f64>) -> f64 {
    answers
        .iter()
        .filter_map(|a| value(a.data_key).map(|v| v * a.probability))
        .sum()
}

/// The distribution of `COUNT(*)` over the independent per-line match
/// events: `out[c] = P[exactly c lines match]`, `out.len() == n + 1`.
///
/// Poisson–binomial DP: process answers one at a time, convolving each
/// Bernoulli in place.
pub fn count_distribution(answers: &[Answer]) -> Vec<f64> {
    let mut dist = vec![0.0f64; answers.len() + 1];
    dist[0] = 1.0;
    for (i, a) in answers.iter().enumerate() {
        let p = a.probability.clamp(0.0, 1.0);
        // Walk backwards so each entry is updated from the previous round.
        for c in (0..=i).rev() {
            let stay = dist[c] * (1.0 - p);
            dist[c + 1] += dist[c] * p;
            dist[c] = stay;
        }
    }
    dist
}

/// `P[COUNT(*) ≥ threshold]` over the answer relation.
pub fn threshold_probability(answers: &[Answer], threshold: usize) -> f64 {
    count_distribution(answers)
        .into_iter()
        .skip(threshold)
        .sum::<f64>()
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answers(ps: &[f64]) -> Vec<Answer> {
        ps.iter()
            .enumerate()
            .map(|(i, &p)| Answer {
                data_key: i as i64,
                probability: p,
            })
            .collect()
    }

    #[test]
    fn expected_count_is_linear() {
        assert_eq!(expected_count(&answers(&[0.5, 0.25, 1.0])), 1.75);
        assert_eq!(expected_count(&[]), 0.0);
    }

    #[test]
    fn expected_sum_weights_values() {
        let a = answers(&[0.5, 1.0]);
        let loss = |key: i64| Some(if key == 0 { 100.0 } else { 40.0 });
        assert_eq!(expected_sum(&a, loss), 90.0);
        // Missing attribute rows contribute nothing.
        let partial = |key: i64| (key == 1).then_some(40.0);
        assert_eq!(expected_sum(&a, partial), 40.0);
    }

    #[test]
    fn count_distribution_two_coins() {
        let d = count_distribution(&answers(&[0.5, 0.5]));
        assert_eq!(d.len(), 3);
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[1] - 0.50).abs() < 1e-12);
        assert!((d[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn count_distribution_certain_events() {
        let d = count_distribution(&answers(&[1.0, 1.0, 0.0]));
        assert!((d[2] - 1.0).abs() < 1e-12);
        assert!(d[0].abs() < 1e-12 && d[1].abs() < 1e-12 && d[3].abs() < 1e-12);
    }

    #[test]
    fn distribution_sums_to_one_and_mean_matches() {
        let ps = [0.1, 0.9, 0.33, 0.66, 0.5];
        let a = answers(&ps);
        let d = count_distribution(&a);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mean: f64 = d.iter().enumerate().map(|(c, p)| c as f64 * p).sum();
        assert!((mean - expected_count(&a)).abs() < 1e-12);
    }

    #[test]
    fn threshold_probability_matches_distribution_tail() {
        let a = answers(&[0.5, 0.5, 0.5]);
        // P[count ≥ 2] = 3·0.125 + 0.125 = 0.5
        assert!((threshold_probability(&a, 2) - 0.5).abs() < 1e-12);
        assert!((threshold_probability(&a, 0) - 1.0).abs() < 1e-12);
        assert_eq!(threshold_probability(&a, 4), 0.0);
    }

    #[test]
    fn empty_answer_set_aggregates() {
        // An empty probabilistic relation: COUNT(*) is certainly zero.
        let d = count_distribution(&[]);
        assert_eq!(d, vec![1.0]);
        assert_eq!(expected_count(&[]), 0.0);
        assert_eq!(expected_sum(&[], |_| Some(1.0)), 0.0);
        assert_eq!(threshold_probability(&[], 0), 1.0);
        assert_eq!(threshold_probability(&[], 1), 0.0);
    }

    #[test]
    fn single_answer_is_a_bernoulli() {
        let a = answers(&[0.3]);
        let d = count_distribution(&a);
        assert_eq!(d.len(), 2);
        assert!((d[0] - 0.7).abs() < 1e-12);
        assert!((d[1] - 0.3).abs() < 1e-12);
        assert!((expected_count(&a) - 0.3).abs() < 1e-12);
        assert!((threshold_probability(&a, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn threshold_beyond_distribution_is_zero() {
        let a = answers(&[0.9, 0.8]);
        // There are only 2 events; counts of 3+ are impossible.
        assert_eq!(threshold_probability(&a, 3), 0.0);
        assert_eq!(threshold_probability(&a, 1000), 0.0);
    }

    #[test]
    fn streaming_aggregate_matches_batch_helpers() {
        let a = answers(&[0.5, 0.25, 1.0, 0.0]);
        let mut agg = StreamingAggregate::new(0.0);
        for &x in &a {
            agg.fold(x);
        }
        // The zero-probability row is not a tuple of the answer relation.
        assert_eq!(agg.finish(AggregateFunc::CountStar), 3.0);
        assert!((agg.finish(AggregateFunc::SumProb) - expected_count(&a)).abs() < 1e-12);
        assert!((agg.finish(AggregateFunc::AvgProb) - 1.75 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_aggregate_respects_threshold_and_empty_input() {
        let mut agg = StreamingAggregate::new(0.5);
        for &x in &answers(&[0.49, 0.5, 0.9]) {
            agg.fold(x);
        }
        assert_eq!(agg.rows(), 2);
        assert!((agg.finish(AggregateFunc::SumProb) - 1.4).abs() < 1e-12);
        let empty = StreamingAggregate::new(0.0);
        assert_eq!(empty.finish(AggregateFunc::CountStar), 0.0);
        assert_eq!(empty.finish(AggregateFunc::SumProb), 0.0);
        assert_eq!(empty.finish(AggregateFunc::AvgProb), 0.0, "AVG over empty");
    }

    #[test]
    fn out_of_range_probabilities_are_clamped() {
        // Answers straight from a projection overestimate can exceed 1.0;
        // the DP must clamp instead of producing a negative mass.
        let a = answers(&[1.5, -0.25]);
        let d = count_distribution(&a);
        assert_eq!(d.len(), 3);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d.iter().all(|&p| (0.0..=1.0).contains(&p)), "{d:?}");
        assert!((threshold_probability(&a, 1) - 1.0).abs() < 1e-12);
    }
}
