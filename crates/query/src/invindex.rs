//! Dictionary-based inverted indexing over SFA data (§4).
//!
//! Directly indexing every term of every retained string blows up
//! exponentially with the number of chunks `m` (Figure 5) — so, following
//! the paper, the index only covers terms from a user-supplied dictionary
//! compiled to a trie automaton. Construction is Algorithms 3–4: a
//! topological walk over the chunk graph that starts a fresh trie walk at
//! every character offset of every retained string and carries in-flight
//! walks across edges as *augmented states*, so terms straddling chunk
//! boundaries are still found. A posting records where a term starts:
//! `(DataKey, edge, path, offset)`.
//!
//! Postings live in a relational B+-tree (`term ␀ DataKey seq → packed
//! location`), mirroring "we implement the index as a relational table
//! with a B+-tree on top of it" (§5.3). Probing takes a query's left
//! anchor (§2.1), fetches candidate lines point-wise through the primary
//! key, and evaluates only a *projection* of each graph — the nodes
//! reachable within the pattern's span from the posted start (§4,
//! "Projection").

use crate::error::QueryError;
use crate::exec::{Answer, Sink, TopK};
use crate::plan::ExecStats;
use crate::query::Query;
use crate::store::OcrStore;
use staccato_automata::{TermId, Trie};
use staccato_sfa::{NodeId, Sfa};
use staccato_storage::{BTree, BufferPool};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// A term-start location within one line's chunk graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Posting {
    /// Edge (chunk) id within the stored graph.
    pub edge: u32,
    /// Which retained string (path rank) on that edge.
    pub path: u16,
    /// Byte offset of the term start within that string.
    pub offset: u16,
}

impl Posting {
    fn pack(self) -> u64 {
        (self.edge as u64) << 32 | (self.path as u64) << 16 | self.offset as u64
    }

    fn unpack(v: u64) -> Posting {
        Posting {
            edge: (v >> 32) as u32,
            path: (v >> 16) as u16,
            offset: v as u16,
        }
    }
}

/// Handle to a built inverted index. The posting counter is atomic so
/// the ingest path can extend a registered (Arc-shared) index in place.
pub struct InvertedIndex {
    postings: BTree,
    dict: BTree,
    posting_count: AtomicU64,
}

impl InvertedIndex {
    /// Is `term` in the index dictionary? (The planner's legality check:
    /// distinguishes "no matches" from "term not indexed".)
    pub fn contains_term(&self, pool: &BufferPool, term: &str) -> Result<bool, QueryError> {
        Ok(self.dict.get(pool, term.as_bytes())?.is_some())
    }

    /// Number of postings inserted (Figure 19/20's index size), including
    /// any added by live ingest.
    pub fn posting_count(&self) -> u64 {
        self.posting_count.load(Ordering::Acquire)
    }

    /// Index one more line's chunk graph — the ingest path's incremental
    /// maintenance hook. Inserts the same `(term ␀ DataKey seq)` keys a
    /// full rebuild would produce for `key`, so an extended index equals
    /// one built after the fact.
    pub(crate) fn extend_with_line(
        &self,
        pool: &BufferPool,
        trie: &Trie,
        key: i64,
        graph: &Sfa,
    ) -> Result<(), QueryError> {
        let added = insert_line_postings(&self.postings, pool, trie, key, graph)?;
        self.posting_count.fetch_add(added, Ordering::AcqRel);
        Ok(())
    }
}

/// Insert the postings of one line into the index's B+-tree. Shared by
/// [`build_index`] and [`InvertedIndex::extend_with_line`].
fn insert_line_postings(
    postings: &BTree,
    pool: &BufferPool,
    trie: &Trie,
    key: i64,
    graph: &Sfa,
) -> Result<u64, QueryError> {
    let mut inserted = 0u64;
    let mut seq_per_term: HashMap<TermId, u32> = HashMap::new();
    for (term, posting) in line_postings(trie, graph) {
        let seq = seq_per_term.entry(term).or_insert(0);
        let mut k = Vec::with_capacity(trie.term(term).len() + 13);
        k.extend_from_slice(trie.term(term).as_bytes());
        k.push(0);
        k.extend_from_slice(&key.to_be_bytes());
        k.extend_from_slice(&seq.to_be_bytes());
        *seq += 1;
        postings.insert(pool, &k, posting.pack())?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Algorithm 3–4: all dictionary-term start locations in one chunk graph.
///
/// Returns `(term, posting)` pairs, deduplicated (a start that completes
/// the same term along two downstream branches is one posting).
pub fn line_postings(trie: &Trie, sfa: &Sfa) -> Vec<(TermId, Posting)> {
    // Augmented states per node: in-flight trie walks with the posting
    // where they started.
    let mut aug: HashMap<NodeId, Vec<(u32, Posting)>> = HashMap::new();
    let mut found: HashSet<(TermId, Posting)> = HashSet::new();

    // Process edges in topological order of their source node.
    let order = sfa.topo_order();
    let rank: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut edges: Vec<u32> = sfa.edges().map(|(id, _)| id).collect();
    edges.sort_by_key(|&id| {
        let e = sfa.edge(id).expect("live");
        (rank[&e.from], rank[&e.to], id)
    });

    for eid in edges {
        let edge = sfa.edge(eid).expect("live");
        let incoming = aug.get(&edge.from).cloned().unwrap_or_default();
        let mut outgoing: Vec<(u32, Posting)> = Vec::new();
        for (path_idx, em) in edge.emissions.iter().enumerate() {
            let bytes = em.label.as_bytes();
            // Fresh walks starting inside this string (Algorithm 4's SO
            // set) — one per offset.
            let mut live: Vec<(u32, u16)> = Vec::new(); // (trie state, start offset)
            for (j, &c) in bytes.iter().enumerate() {
                let mut survivors = Vec::with_capacity(live.len() + 1);
                for (st, start) in live.drain(..) {
                    if let Some(nxt) = trie.step(st, c) {
                        if let Some(term) = trie.terminal(nxt) {
                            found.insert((
                                term,
                                Posting {
                                    edge: eid,
                                    path: path_idx as u16,
                                    offset: start,
                                },
                            ));
                        }
                        survivors.push((nxt, start));
                    }
                }
                // Start a new walk at offset j.
                if let Some(nxt) = trie.step(trie.root(), c) {
                    if let Some(term) = trie.terminal(nxt) {
                        found.insert((
                            term,
                            Posting {
                                edge: eid,
                                path: path_idx as u16,
                                offset: j as u16,
                            },
                        ));
                    }
                    survivors.push((nxt, j as u16));
                }
                live = survivors;
            }
            for (st, start) in live {
                outgoing.push((
                    st,
                    Posting {
                        edge: eid,
                        path: path_idx as u16,
                        offset: start,
                    },
                ));
            }
            // Continue incoming augmented walks through this string
            // (Algorithm 4's second loop).
            for &(st0, origin) in &incoming {
                let mut cur = st0;
                let mut alive = true;
                for &c in bytes {
                    match trie.step(cur, c) {
                        Some(nxt) => {
                            if let Some(term) = trie.terminal(nxt) {
                                found.insert((term, origin));
                            }
                            cur = nxt;
                        }
                        None => {
                            alive = false;
                            break; // the walk dies mid-string
                        }
                    }
                }
                if alive {
                    outgoing.push((cur, origin));
                }
            }
        }
        aug.entry(edge.to).or_default().extend(outgoing);
    }

    let mut out: Vec<(TermId, Posting)> = found.into_iter().collect();
    out.sort();
    out
}

/// Build the inverted index over the Staccato representation.
///
/// Creates two B+-trees in the store's database: `<name>_postings` and
/// `<name>_dict` (dictionary membership, so probes can tell "no matches"
/// apart from "term not indexed").
pub fn build_index(store: &OcrStore, trie: &Trie, name: &str) -> Result<InvertedIndex, QueryError> {
    let postings = store.create_index(&format!("{name}_postings"))?;
    let dict = store.create_index(&format!("{name}_dict"))?;
    let pool = store.db().pool();
    for tid in 0..trie.term_count() as u32 {
        dict.insert(pool, trie.term(tid).as_bytes(), 1)?;
    }
    let mut posting_count = 0u64;
    for item in store.staccato_cursor()? {
        let (key, graph) = item?;
        posting_count += insert_line_postings(&postings, pool, trie, key, &graph)?;
    }
    Ok(InvertedIndex {
        postings,
        dict,
        posting_count: AtomicU64::new(posting_count),
    })
}

/// All postings for `term`, grouped by line.
pub fn probe_term(
    store: &OcrStore,
    index: &InvertedIndex,
    term: &str,
) -> Result<Vec<(i64, Vec<Posting>)>, QueryError> {
    let mut prefix = term.as_bytes().to_vec();
    prefix.push(0);
    let pool = store.db().pool();
    let mut grouped: Vec<(i64, Vec<Posting>)> = Vec::new();
    for (k, v) in index.postings.scan_prefix(pool, &prefix)? {
        let key_bytes: [u8; 8] = k[prefix.len()..prefix.len() + 8]
            .try_into()
            .expect("posting key layout");
        let data_key = i64::from_be_bytes(key_bytes);
        let posting = Posting::unpack(v);
        match grouped.last_mut() {
            Some((dk, v)) if *dk == data_key => v.push(posting),
            _ => grouped.push((data_key, vec![posting])),
        }
    }
    Ok(grouped)
}

/// §4's *projection*: evaluate the match probability starting from the
/// posted location, over only the nodes reachable within `depth` edges —
/// an (over)estimate of how far the pattern can extend.
pub fn project_eval(sfa: &Sfa, query: &Query, from: NodeId, depth: usize) -> f64 {
    // BFS the projected node set.
    let mut dist: HashMap<NodeId, usize> = HashMap::new();
    dist.insert(from, 0);
    let mut frontier = vec![from];
    while let Some(v) = frontier.pop() {
        let d = dist[&v];
        if d >= depth {
            continue;
        }
        for &eid in sfa.out_edges(v) {
            let to = sfa.edge(eid).expect("live").to;
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(to) {
                e.insert(d + 1);
                frontier.push(to);
            }
        }
    }
    // DP over the projection, starting the DFA fresh at `from`. Mass that
    // reaches an accepting state is collected once and not propagated
    // (accepting states are absorbing).
    let dfa = &query.dfa;
    let q = dfa.state_count();
    let mut vectors: HashMap<NodeId, Vec<f64>> = HashMap::new();
    let mut v0 = vec![0.0; q];
    v0[dfa.start() as usize] = 1.0;
    vectors.insert(from, v0);
    let mut matched = 0.0;
    for v in sfa.topo_order() {
        if !dist.contains_key(&v) {
            continue;
        }
        let Some(src) = vectors.remove(&v) else {
            continue;
        };
        for &eid in sfa.out_edges(v) {
            let edge = sfa.edge(eid).expect("live");
            if !dist.contains_key(&edge.to) {
                continue;
            }
            for em in &edge.emissions {
                if em.prob <= 0.0 {
                    continue;
                }
                for (s, &mass) in src.iter().enumerate() {
                    if mass == 0.0 || dfa.is_accept(s as u32) {
                        continue;
                    }
                    let s2 = dfa.run_from(s as u32, &em.label);
                    let add = mass * em.prob;
                    if dfa.is_accept(s2) {
                        matched += add;
                    } else {
                        vectors.entry(edge.to).or_insert_with(|| vec![0.0; q])[s2 as usize] += add;
                    }
                }
            }
        }
    }
    matched.min(1.0)
}

/// Index-assisted execution of a left-anchored query (§5.3's protocol):
/// look up the anchor, fetch candidate lines point-wise, evaluate on the
/// projection, rank, counting work into `stats`. The returned *answer
/// set* equals a Staccato filescan for anchored patterns; probabilities
/// are the projection's (over)estimate conditioned on the match starting
/// at a posted location.
pub(crate) fn exec_index_probe(
    store: &OcrStore,
    index: &InvertedIndex,
    query: &Query,
    sink: &mut Sink<'_>,
    stats: &mut ExecStats,
) -> Result<(), QueryError> {
    let anchor = query
        .anchor
        .clone()
        .ok_or_else(|| QueryError::NotAnchored(query.pattern.clone()))?;
    if index
        .dict
        .get(store.db().pool(), anchor.as_bytes())?
        .is_none()
    {
        return Err(QueryError::TermNotInDictionary(anchor));
    }
    let depth = query.max_span().unwrap_or(usize::MAX);
    for (data_key, posts) in probe_term(store, index, &anchor)? {
        stats.postings_probed += posts.len() as u64;
        let graph = store.get_staccato_graph(data_key)?;
        stats.rows_scanned += 1;
        stats.lines_evaluated += 1;
        let mut best = 0.0f64;
        let mut seen_nodes: HashSet<NodeId> = HashSet::new();
        for p in posts {
            let Some(edge) = graph.edge(p.edge) else {
                continue;
            };
            // Distinct start nodes only; several postings on one edge
            // evaluate identically from its source.
            if !seen_nodes.insert(edge.from) {
                continue;
            }
            let score = project_eval(&graph, query, edge.from, depth.saturating_add(1));
            best = best.max(score);
        }
        sink.offer(Answer {
            data_key,
            probability: best,
        });
    }
    Ok(())
}

/// Index-assisted execution of a left-anchored query.
#[deprecated(
    since = "0.2.0",
    note = "register the index on a `Staccato` session and use `execute` instead"
)]
pub fn indexed_query(
    store: &OcrStore,
    index: &InvertedIndex,
    query: &Query,
    num_ans: usize,
) -> Result<Vec<Answer>, QueryError> {
    let mut stats = ExecStats::default();
    let mut topk = TopK::new(num_ans);
    exec_index_probe(
        store,
        index,
        query,
        &mut Sink::Ranked(&mut topk),
        &mut stats,
    )?;
    Ok(topk.into_ranked())
}

/// Figure 5's counter: how many postings *direct* indexing of one chunk
/// graph would create — the number of `(path, word-start)` pairs across
/// all `kᵐ` retained strings. Returned as `f64` because it overflows
/// 64-bit integers already at moderate `m` (the paper hits the overflow
/// at `m = 60, k = 50`).
pub fn direct_posting_count(sfa: &Sfa) -> f64 {
    // Path count DP.
    let mut cnt = vec![0.0f64; sfa.num_node_slots() as usize];
    cnt[sfa.start() as usize] = 1.0;
    for v in sfa.topo_order() {
        let c = cnt[v as usize];
        if c == 0.0 {
            continue;
        }
        for &eid in sfa.out_edges(v) {
            let e = sfa.edge(eid).expect("live");
            cnt[e.to as usize] += c * e.emissions.len() as f64;
        }
    }
    let paths = cnt[sfa.finish() as usize];
    // Words per retained string ≈ words in the most likely string.
    let words = staccato_sfa::map_string(sfa)
        .map(|(s, _)| s.split_whitespace().count().max(1))
        .unwrap_or(1) as f64;
    paths * words
}

/// `log₁₀` of [`direct_posting_count`], convenient for Figure 5's
/// log-scale axes.
pub fn direct_posting_count_log10(sfa: &Sfa) -> f64 {
    direct_posting_count(sfa).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanPreference, QueryRequest};
    use crate::session::Staccato;
    use crate::store::{LoadOptions, OcrStore};
    use staccato_core::StaccatoParams;
    use staccato_ocr::{generate, ChannelConfig, CorpusKind};
    use staccato_sfa::{Emission, SfaBuilder};
    use staccato_storage::Database;

    /// Chunk graph whose chunks split "my Ford car" as "my Fo" + "rd car",
    /// so the term 'ford' straddles the chunk boundary.
    fn straddle_graph() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..3).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("my Fo", 0.6), Emission::new("my F0", 0.4)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("rd car", 0.7), Emission::new("rd  ar", 0.3)],
        );
        b.build(n[0], n[2]).unwrap()
    }

    #[test]
    fn postings_found_within_one_chunk() {
        let trie = Trie::build(["car", "my"]);
        let posts = line_postings(&trie, &straddle_graph());
        let terms: Vec<&str> = posts.iter().map(|(t, _)| trie.term(*t)).collect();
        assert!(terms.contains(&"my"));
        assert!(terms.contains(&"car"));
        // 'my' starts at edge 0 offset 0 on both paths.
        let my_id = trie.lookup("my").unwrap();
        let my_posts: Vec<&Posting> = posts
            .iter()
            .filter(|(t, _)| *t == my_id)
            .map(|(_, p)| p)
            .collect();
        assert!(my_posts
            .iter()
            .any(|p| p.edge == 0 && p.offset == 0 && p.path == 0));
        assert!(my_posts
            .iter()
            .any(|p| p.edge == 0 && p.offset == 0 && p.path == 1));
    }

    #[test]
    fn postings_straddle_chunk_boundaries() {
        // The defining feature of Algorithms 3–4: 'ford' starts in chunk 0
        // ("my Fo", offset 3) and completes in chunk 1 ("rd car").
        let trie = Trie::build(["ford"]);
        let posts = line_postings(&trie, &straddle_graph());
        assert_eq!(posts.len(), 1);
        let (_, p) = posts[0];
        assert_eq!(p.edge, 0);
        assert_eq!(p.offset, 3);
        assert_eq!(p.path, 0); // only the "my Fo" path starts the term
    }

    #[test]
    fn case_folding_in_postings() {
        let trie = Trie::build(["fo"]);
        let posts = line_postings(&trie, &straddle_graph());
        // "Fo" matches case-insensitively.
        assert!(!posts.is_empty());
    }

    #[test]
    fn dead_walks_produce_no_postings() {
        let trie = Trie::build(["xyzzy"]);
        assert!(line_postings(&trie, &straddle_graph()).is_empty());
    }

    #[test]
    fn direct_count_grows_exponentially_with_chunks() {
        // Chain of m chunks, k strings each → kᵐ paths.
        let build = |m: usize, k: usize| {
            let mut b = SfaBuilder::new();
            let mut prev = b.add_node();
            let start = prev;
            for _ in 0..m {
                let next = b.add_node();
                let ems = (0..k)
                    .map(|i| Emission::new(format!("w{i} "), 1.0 / k as f64))
                    .collect();
                b.add_edge(prev, next, ems);
                prev = next;
            }
            b.build(start, prev).unwrap()
        };
        let c5 = direct_posting_count(&build(5, 10));
        let c10 = direct_posting_count(&build(10, 10));
        let c60 = direct_posting_count(&build(60, 50));
        assert!(c10 / c5 >= 1e4, "exponential growth expected: {c5} → {c10}");
        // Paper: k=50 overflows u64 beyond m=60.
        assert!(c60 > u64::MAX as f64);
        assert!(direct_posting_count_log10(&build(60, 50)) > 19.0);
    }

    fn anchored_store() -> OcrStore {
        let dataset = generate(CorpusKind::CongressActs, 60, 31);
        let db = Database::in_memory(1024).unwrap();
        let opts = LoadOptions {
            channel: ChannelConfig::compact(31),
            kmap_k: 8,
            staccato: StaccatoParams::new(10, 8),
            parallelism: 2,
        };
        OcrStore::load(db, &dataset, &opts).unwrap()
    }

    #[test]
    fn indexed_query_matches_filescan_answer_set() {
        let session = Staccato::open(anchored_store());
        let trie = Trie::build(["public", "president", "commission"]);
        let postings = session.register_index(&trie, "inv").unwrap();
        assert!(postings > 0);

        for pattern in ["President", r"Public Law (8|9)\d"] {
            let probe = session
                .execute(&QueryRequest::regex(pattern).num_ans(1000))
                .unwrap();
            assert!(probe.plan.is_index_probe(), "{pattern:?} should auto-probe");
            let scan = session
                .execute(
                    &QueryRequest::regex(pattern)
                        .num_ans(1000)
                        .plan_preference(PlanPreference::ForceFileScan),
                )
                .unwrap();
            assert!(!scan.plan.is_index_probe());
            let keys = |answers: &[Answer]| -> std::collections::BTreeSet<i64> {
                answers.iter().map(|a| a.data_key).collect()
            };
            assert_eq!(
                keys(&scan.answers),
                keys(&probe.answers),
                "answer sets differ for {pattern:?}"
            );
        }
    }

    #[test]
    fn unanchored_query_is_rejected() {
        let store = anchored_store();
        let trie = Trie::build(["public"]);
        let index = build_index(&store, &trie, "inv2").unwrap();
        let query = Query::regex(r"\d\d\d").unwrap();
        let mut stats = ExecStats::default();
        let mut topk = TopK::new(10);
        assert!(matches!(
            exec_index_probe(
                &store,
                &index,
                &query,
                &mut Sink::Ranked(&mut topk),
                &mut stats
            ),
            Err(QueryError::NotAnchored(_))
        ));
    }

    #[test]
    fn missing_dictionary_term_is_rejected() {
        let store = anchored_store();
        let trie = Trie::build(["public"]);
        let index = build_index(&store, &trie, "inv3").unwrap();
        assert!(index.contains_term(store.db().pool(), "public").unwrap());
        assert!(!index.contains_term(store.db().pool(), "president").unwrap());
        let query = Query::keyword("President").unwrap();
        let mut stats = ExecStats::default();
        let mut topk = TopK::new(10);
        assert!(matches!(
            exec_index_probe(
                &store,
                &index,
                &query,
                &mut Sink::Ranked(&mut topk),
                &mut stats
            ),
            Err(QueryError::TermNotInDictionary(_))
        ));
    }

    #[test]
    fn posting_pack_roundtrip() {
        let p = Posting {
            edge: 123_456,
            path: 42,
            offset: 999,
        };
        assert_eq!(Posting::unpack(p.pack()), p);
    }
}
