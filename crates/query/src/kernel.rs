//! The compiled scan kernel: per-query machinery that replaces the naive
//! per-row evaluation loop on the filescan hot path.
//!
//! [`crate::eval::eval_sfa`] is the reference semantics — a forward DP
//! over `(SFA node, DFA state)` pairs — but its inner loop re-walks every
//! emission label through the DFA once *per live DFA state per row*, and
//! every row pays a fresh `Sfa` decode (nodes, adjacency `Vec`s, one
//! `String` per label). [`ScanKernel`] + [`ScanScratch`] keep the
//! semantics and drop the per-row work:
//!
//! * **Dense DFA** — the query automaton is compiled once into a
//!   byte-class-compressed [`DenseDfa`] table (see
//!   `staccato_automata::dense`).
//! * **Compiled label transitions** — distinct emission labels are
//!   interned per worker; each label's full `state → state` transition
//!   vector is composed once ([`DenseDfa::compose_label`]) and memoized,
//!   turning the DP's `dfa.run_from(s, label)` into a table gather.
//! * **Arena batch decode** — blobs decode into a reusable
//!   [`DecodeArena`] (borrowed labels, CSR adjacency, recycled buffers);
//!   the DP's state vectors are pooled and reused across rows.
//! * **Two-tier prescreen** — rows that provably cannot match are skipped
//!   before the full DP: tier 1 is a byte-presence test for the pattern's
//!   required literal (substring containment for MAP/k-MAP strings),
//!   tier 2 a bitset reachability DP over `(node, DFA-state set)` using
//!   the same interned transition vectors. Both tiers only ever skip rows
//!   whose exact probability is `+0.0`, so results stay **bit-identical**
//!   to the naive path (see the soundness notes on [`ScanKernel::eval_blob`]).
//!
//! Every floating-point operation of the reference implementation is
//! replicated in the same order — same topological order (the arena
//! reproduces `Sfa::try_topo_order`'s tie-breaking), same edge and
//! emission order, same `dst[s2] += mass * prob` accumulation, same final
//! summation — so `f64::to_bits` equality with [`crate::eval::eval_sfa`]
//! / [`crate::eval::eval_strings`] holds on every row, which the
//! differential proptests in `tests/kernel.rs` enforce.

use staccato_automata::{DenseDfa, Dfa};
use staccato_sfa::{codec, DecodeArena, SfaError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone kernel ids, used to bind a [`ScanScratch`]'s label memo to
/// the kernel that composed it (ids start at 1 so a fresh scratch never
/// appears bound).
static KERNEL_IDS: AtomicU64 = AtomicU64::new(1);

/// Multiplicative byte hasher for the label interner. Interned labels
/// are at most [`MEMO_LABEL_MAX`] bytes, where SipHash's per-call setup
/// costs more than the hash itself; the map is per-worker scratch keyed
/// by trusted scan data, so DoS resistance buys nothing here.
#[derive(Default)]
struct LabelHasher(u64);

impl std::hash::Hasher for LabelHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }
}

type LabelMap = HashMap<Box<[u8]>, u32, std::hash::BuildHasherDefault<LabelHasher>>;

/// Distinct interned labels kept per worker before the memo is reset.
/// Bounds scratch memory on corpora with pathological label diversity;
/// typical queries intern a few hundred labels and never hit it.
const LABEL_MEMO_CAP: usize = 8192;

/// Sentinel transition id for emissions with `prob <= 0.0`, which the DP
/// skips without ever consulting a transition vector.
const SKIPPED: u32 = u32::MAX;

/// Sentinel transition id for emissions whose label is evaluated by
/// walking the dense table directly instead of through the memo.
const RAW: u32 = u32::MAX - 1;

/// Longest label (in bytes) worth interning. Short labels — FullSFA's
/// per-character emissions, punctuation chunks — repeat across the whole
/// corpus, so composing their transition vector once is a corpus-wide
/// saving. Long labels (Staccato's line-specific chunk text) almost
/// never repeat: hashing and composing them would cost more than the
/// one DP walk they feed, so they stay un-memoized and are walked in
/// place by the convergence-aware set walks ([`DenseDfa::advance_mask`],
/// [`DenseDfa::advance_states`]) — identical transitions, no allocation.
const MEMO_LABEL_MAX: usize = 4;

/// Result of evaluating one line through the kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// Match probability — bit-identical to the naive evaluation.
    pub probability: f64,
    /// Whether the prescreen rejected the line without running the full
    /// DP (the probability is then the exact zero — sign included — the
    /// naive evaluation would have produced).
    pub prescreened: bool,
}

/// Per-query compiled scan state: the dense DFA, the required literal for
/// the prescreen, and the accepting-state mask for the bitset tier.
/// Immutable after construction and shared by every scan worker; all
/// mutable state lives in [`ScanScratch`].
#[derive(Debug)]
pub struct ScanKernel {
    id: u64,
    dense: DenseDfa,
    /// Required literal: every accepted line contains it (case-sensitive).
    literal: Option<String>,
    /// Distinct bytes of the literal, for the tier-1 byte-presence test.
    literal_bytes: Vec<u8>,
    /// The same distinct bytes as a 256-bit map, so the tier-1 scan can
    /// count them off and stop as soon as all are found.
    literal_bitmap: [u64; 4],
    /// Bit per accepting DFA state; `None` when `q > 64` (tier 2 disabled).
    accept_mask: Option<u64>,
    /// What `eval_strings` returns when nothing is accepted: the empty
    /// `f64` sum. Its sign is a property of the standard library's fold
    /// identity, so it is captured here rather than assumed, keeping
    /// prescreen skips bit-identical.
    string_zero: f64,
    /// What `eval_sfa` returns when no mass reaches an accepting state:
    /// the sum of one `+0.0` per accepting DFA state over the same fold.
    blob_zero: f64,
}

impl ScanKernel {
    /// Compile the kernel for a query DFA. `literal` must be a string
    /// every accepted line provably contains (see
    /// `staccato_automata::required_literal`); pass `None` to disable the
    /// tier-1 prescreen.
    pub fn new(dfa: &Dfa, literal: Option<String>) -> ScanKernel {
        let dense = DenseDfa::new(dfa);
        let q = dense.state_count();
        let accept_mask = (q <= 64).then(|| {
            (0..q as u32)
                .filter(|&s| dense.is_accept(s))
                .fold(0u64, |m, s| m | 1u64 << s)
        });
        let mut literal_bytes: Vec<u8> = literal
            .as_deref()
            .map(|l| l.as_bytes().to_vec())
            .unwrap_or_default();
        literal_bytes.sort_unstable();
        literal_bytes.dedup();
        let mut literal_bitmap = [0u64; 4];
        for &b in &literal_bytes {
            literal_bitmap[(b >> 6) as usize] |= 1u64 << (b & 63);
        }
        let string_zero: f64 = std::iter::empty::<f64>().sum();
        let blob_zero: f64 = (0..q as u32)
            .filter(|&s| dense.is_accept(s))
            .map(|_| 0.0f64)
            .sum();
        ScanKernel {
            id: KERNEL_IDS.fetch_add(1, Ordering::Relaxed),
            dense,
            literal,
            literal_bytes,
            literal_bitmap,
            accept_mask,
            string_zero,
            blob_zero,
        }
    }

    /// The compiled dense automaton.
    pub fn dense(&self) -> &DenseDfa {
        &self.dense
    }

    /// The prescreen literal, if the pattern has one.
    pub fn literal(&self) -> Option<&str> {
        self.literal.as_deref()
    }

    /// Evaluate one MAP string. Equivalent to
    /// `eval_strings(dfa, once((s, p)))`: `p` if the string is accepted,
    /// `+0.0` otherwise. The prescreen skips the DFA run when the
    /// required literal is absent — the DFA could only reject.
    pub fn eval_string(&self, s: &str, p: f64) -> EvalOutcome {
        if let Some(lit) = &self.literal {
            if !s.contains(lit.as_str()) {
                // No literal ⇒ the DFA would reject ⇒ the naive sum is
                // its empty-fold identity.
                return EvalOutcome {
                    probability: self.string_zero,
                    prescreened: true,
                };
            }
        }
        EvalOutcome {
            probability: if self.dense.matches(s.as_bytes()) {
                self.string_zero + p
            } else {
                self.string_zero
            },
            prescreened: false,
        }
    }

    /// Evaluate a k-MAP group: the sum of `p` over accepted strings, in
    /// iteration order — the accumulation [`crate::eval::eval_strings`]
    /// performs. `prescreened` is true when every string (of a non-empty
    /// group) was rejected by the literal test alone.
    pub fn eval_string_group<'a, I>(&self, strings: I) -> EvalOutcome
    where
        I: IntoIterator<Item = (&'a str, f64)>,
    {
        let mut total = self.string_zero;
        let mut seen = 0usize;
        let mut skipped = 0usize;
        for (s, p) in strings {
            seen += 1;
            if let Some(lit) = &self.literal {
                if !s.contains(lit.as_str()) {
                    skipped += 1;
                    continue;
                }
            }
            if self.dense.matches(s.as_bytes()) {
                total += p;
            }
        }
        EvalOutcome {
            probability: total,
            prescreened: seen > 0 && skipped == seen,
        }
    }

    /// Evaluate an encoded SFA blob: decode into the scratch arena, run
    /// the two-tier prescreen, then (on any hit) the exact DP.
    ///
    /// **Prescreen soundness** — a skip is taken only when the naive DP
    /// provably returns exactly `+0.0`:
    ///
    /// * *Tier 1 (byte presence)*: every string the SFA can emit draws
    ///   its bytes from the union of all emission labels. An accepted
    ///   string contains the required literal, hence every distinct byte
    ///   of it. If some literal byte appears in no label, no emitted
    ///   string is accepted, so no mass ever reaches an accepting DFA
    ///   state at the finish node — the naive sum is a sum of never-
    ///   written `+0.0` entries.
    /// * *Tier 2 (bitset reachability)*: an over-approximation of the
    ///   exact DP's support. `bits[v]` ⊇ {DFA states reachable at node
    ///   `v` along any path whose emissions all have `prob > 0`} — the
    ///   only (node, state) pairs the DP can write to, regardless of
    ///   floating-point underflow (underflow loses a *skip*, never
    ///   soundness). If no accepting state is reachable at the finish
    ///   node, the accepting entries of the finish vector are never
    ///   written and the naive result is again exactly `+0.0`.
    pub fn eval_blob(
        &self,
        scratch: &mut ScanScratch,
        blob: &[u8],
    ) -> Result<EvalOutcome, SfaError> {
        let ScanScratch {
            bound,
            arena,
            interner,
            trans,
            compose_tmp,
            em_trans,
            bits,
            pairs,
            dests,
            vectors,
            free,
        } = scratch;
        // A scratch carries transition vectors composed against one
        // kernel's DFA; rebind (and drop the memo) if it last served a
        // different kernel.
        if *bound != self.id {
            interner.clear();
            trans.clear();
            *bound = self.id;
        }
        codec::decode_into_arena(blob, arena)?;

        // Tier 1: every distinct literal byte must occur in some label.
        // Counting the literal bytes off as they first appear lets rows
        // that do contain them all (the common case for short literals)
        // exit after a few labels instead of scanning every one.
        if !self.literal_bytes.is_empty() {
            let mut present = [0u64; 4];
            let mut missing = self.literal_bytes.len();
            'tier1: for em in arena.emissions() {
                for &b in &blob[em.label_range()] {
                    let (w, bit) = ((b >> 6) as usize, 1u64 << (b & 63));
                    if present[w] & bit == 0 {
                        present[w] |= bit;
                        if self.literal_bitmap[w] & bit != 0 {
                            missing -= 1;
                            if missing == 0 {
                                break 'tier1;
                            }
                        }
                    }
                }
            }
            if missing > 0 {
                return Ok(EvalOutcome {
                    probability: self.blob_zero,
                    prescreened: true,
                });
            }
        }

        // Resolve each positive-probability emission to its interned
        // transition vector; compose and memoize short labels on first
        // sight. The memo persists across rows (same worker), so a
        // repeated label costs one composition corpus-wide, and is reset
        // wholesale at the cap — never mid-row, so resolved ids stay
        // valid below. Long labels bypass the memo entirely (see
        // `MEMO_LABEL_MAX`) and are walked in place.
        if trans.len() >= LABEL_MEMO_CAP {
            interner.clear();
            trans.clear();
        }
        em_trans.clear();
        for em in arena.emissions() {
            if em.prob <= 0.0 {
                em_trans.push(SKIPPED);
                continue;
            }
            let label = &blob[em.label_range()];
            if label.len() > MEMO_LABEL_MAX {
                em_trans.push(RAW);
                continue;
            }
            let id = match interner.get(label) {
                Some(&id) => id,
                None => {
                    self.dense.compose_label(label, compose_tmp);
                    let id = trans.len() as u32;
                    trans.push(compose_tmp.as_slice().into());
                    interner.insert(label.into(), id);
                    id
                }
            };
            em_trans.push(id);
        }

        // Tier 2: bitset reachability over (node, DFA-state set). The
        // pass exists only to *prove absence*; the moment an accepting
        // state becomes reachable anywhere the proof is lost, so bail to
        // the exact DP rather than finish the walk (the DP is the
        // reference computation, so running it is always bit-identical —
        // tier-2 thresholds affect cost, never results).
        if let Some(mask) = self.accept_mask {
            let n = arena.node_count() as usize;
            bits.clear();
            bits.resize(n, 0);
            bits[arena.start() as usize] = 1u64 << self.dense.start();
            let mut accept_seen = false;
            'tier2: for &v in arena.topo() {
                let bv = bits[v as usize];
                if bv == 0 {
                    continue;
                }
                for &eid in arena.out_edges(v) {
                    let e = arena.edges()[eid as usize];
                    let mut out_bits = 0u64;
                    for ei in e.em_start..e.em_end {
                        let t = em_trans[ei as usize];
                        if t == SKIPPED {
                            continue;
                        }
                        if t == RAW {
                            let em = arena.emissions()[ei as usize];
                            out_bits |= self.dense.advance_mask(bv, &blob[em.label_range()]);
                        } else {
                            let tv = &trans[t as usize];
                            let mut rem = bv;
                            while rem != 0 {
                                let s = rem.trailing_zeros() as usize;
                                rem &= rem - 1;
                                out_bits |= 1u64 << tv[s];
                            }
                        }
                    }
                    if out_bits & mask != 0 {
                        accept_seen = true;
                        break 'tier2;
                    }
                    bits[e.to as usize] |= out_bits;
                }
            }
            if !accept_seen && bits[arena.finish() as usize] & mask == 0 {
                return Ok(EvalOutcome {
                    probability: self.blob_zero,
                    prescreened: true,
                });
            }
        }

        // Exact DP — the loop of `eval_sfa`, with the label walk replaced
        // by the interned transition gather and state vectors drawn from
        // a pool instead of allocated per row.
        let q = self.dense.state_count();
        let n = arena.node_count() as usize;
        if vectors.len() < n {
            vectors.resize_with(n, Vec::new);
        }
        let mut start_vec = free.pop().unwrap_or_default();
        start_vec.clear();
        start_vec.resize(q, 0.0);
        start_vec[self.dense.start() as usize] = 1.0;
        vectors[arena.start() as usize] = start_vec;

        for &v in arena.topo() {
            if vectors[v as usize].is_empty() {
                continue;
            }
            let src = std::mem::take(&mut vectors[v as usize]);
            // The massy sources are fixed for the whole node, so collect
            // them once instead of rescanning the q-length vector for
            // every emission on every out edge.
            pairs.clear();
            for (s, &mass) in src.iter().enumerate() {
                if mass != 0.0 {
                    pairs.push((s as u32, mass));
                }
            }
            if !pairs.is_empty() {
                for &eid in arena.out_edges(v) {
                    let e = arena.edges()[eid as usize];
                    for ei in e.em_start..e.em_end {
                        let t = em_trans[ei as usize];
                        if t == SKIPPED {
                            continue;
                        }
                        let em = arena.emissions()[ei as usize];
                        // Destinations first: memoized labels gather from
                        // the composed vector, un-memoized ones share one
                        // convergence-aware walk of the dense table — the
                        // same `state → state` function either way. The
                        // accumulation below then runs in the reference
                        // order (ascending source state).
                        dests.clear();
                        dests.extend(pairs.iter().map(|&(s, _)| s));
                        if t == RAW {
                            self.dense.advance_states(dests, &blob[em.label_range()]);
                        } else {
                            let tv = &trans[t as usize];
                            for d in dests.iter_mut() {
                                *d = tv[*d as usize];
                            }
                        }
                        let dst = &mut vectors[e.to as usize];
                        if dst.is_empty() {
                            let mut fresh = free.pop().unwrap_or_default();
                            fresh.clear();
                            fresh.resize(q, 0.0);
                            *dst = fresh;
                        }
                        for (&(_, mass), &d) in pairs.iter().zip(dests.iter()) {
                            dst[d as usize] += mass * em.prob;
                        }
                    }
                }
            }
            if v == arena.finish() {
                vectors[v as usize] = src;
            } else {
                free.push(src);
            }
        }

        let fin = &vectors[arena.finish() as usize];
        let probability: f64 = (0..q)
            .filter(|&s| self.dense.is_accept(s as u32))
            .map(|s| fin.get(s).copied().unwrap_or(0.0))
            .sum();

        // Recycle every vector touched this row.
        for slot in vectors[..n].iter_mut() {
            if !slot.is_empty() {
                free.push(std::mem::take(slot));
            }
        }
        Ok(EvalOutcome {
            probability,
            prescreened: false,
        })
    }
}

/// Per-worker mutable scan state: the decode arena, the label-transition
/// memo, and pooled DP vectors. One per scan thread; never shared.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Id of the kernel whose transitions are currently memoized
    /// (0 = none yet).
    bound: u64,
    arena: DecodeArena,
    /// Label bytes → index into `trans`.
    interner: LabelMap,
    /// Memoized `state → state` transition vector per interned label.
    trans: Vec<Box<[u32]>>,
    compose_tmp: Vec<u32>,
    /// Per-emission resolved transition id for the current row.
    em_trans: Vec<u32>,
    /// Tier-2 per-node DFA-state bitsets.
    bits: Vec<u64>,
    /// Per-node massy `(state, mass)` sources for the DP inner loop.
    pairs: Vec<(u32, f64)>,
    /// Per-emission destination states, parallel to `pairs`.
    dests: Vec<u32>,
    /// DP state vectors, indexed by node slot.
    vectors: Vec<Vec<f64>>,
    /// Pool of spent state vectors.
    free: Vec<Vec<f64>>,
}

impl ScanScratch {
    /// Fresh scratch. Buffers grow to the working set of the scan and are
    /// reused row to row.
    pub fn new() -> ScanScratch {
        ScanScratch::default()
    }

    /// Number of distinct labels currently memoized (diagnostics).
    pub fn interned_labels(&self) -> usize {
        self.trans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_sfa, eval_strings};
    use crate::query::Query;
    use staccato_sfa::{Emission, Sfa, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn blob_eval_is_bit_identical_to_naive() {
        let sfa = figure1();
        let blob = codec::encode(&sfa);
        let mut scratch = ScanScratch::new();
        for pattern in ["Ford", "F0", "rd", "m3", "zzz", "o", " ", "xyzzy"] {
            let q = Query::keyword(pattern).unwrap();
            let naive = eval_sfa(&q.dfa, &codec::decode(&blob).unwrap());
            let out = q.kernel.eval_blob(&mut scratch, &blob).unwrap();
            assert_eq!(
                out.probability.to_bits(),
                naive.to_bits(),
                "pattern {pattern:?}: kernel={} naive={}",
                out.probability,
                naive
            );
        }
    }

    #[test]
    fn prescreen_skips_only_zero_probability_rows() {
        let sfa = figure1();
        let blob = codec::encode(&sfa);
        let mut scratch = ScanScratch::new();
        // 'xyzzy' shares no bytes with the SFA: tier-1 skip.
        let q = Query::keyword("xyzzy").unwrap();
        let out = q.kernel.eval_blob(&mut scratch, &blob).unwrap();
        assert!(out.prescreened);
        assert_eq!(out.probability.to_bits(), 0.0f64.to_bits());
        assert_eq!(eval_sfa(&q.dfa, &codec::decode(&blob).unwrap()), 0.0);
        // 'dF' uses present bytes but is unreachable in order: tier-2 skip.
        let q = Query::keyword("dF").unwrap();
        let out = q.kernel.eval_blob(&mut scratch, &blob).unwrap();
        assert!(out.prescreened, "tier-2 should reject 'dF'");
        assert_eq!(eval_sfa(&q.dfa, &codec::decode(&blob).unwrap()), 0.0);
        // A hit is never prescreened.
        let q = Query::keyword("Ford").unwrap();
        let out = q.kernel.eval_blob(&mut scratch, &blob).unwrap();
        assert!(!out.prescreened && out.probability > 0.0);
    }

    #[test]
    fn string_eval_matches_eval_strings() {
        let q = Query::keyword("Ford").unwrap();
        let strings = [("a Ford here", 0.25), ("no match", 0.5), ("Ford Ford", 0.1)];
        let naive = eval_strings(&q.dfa, strings.iter().map(|(s, p)| (*s, *p)));
        let out = q
            .kernel
            .eval_string_group(strings.iter().map(|(s, p)| (*s, *p)));
        assert_eq!(out.probability.to_bits(), naive.to_bits());
        for (s, p) in strings {
            let single = q.kernel.eval_string(s, p);
            let naive = eval_strings(&q.dfa, std::iter::once((s, p)));
            assert_eq!(single.probability.to_bits(), naive.to_bits());
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_between_rows() {
        let blob1 = codec::encode(&figure1());
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(s, f, vec![Emission::new("Ford", 1.0)]);
        let blob2 = codec::encode(&b.build(s, f).unwrap());
        let q = Query::keyword("Ford").unwrap();
        let mut scratch = ScanScratch::new();
        let mut fresh = ScanScratch::new();
        for blob in [&blob1, &blob2, &blob1, &blob2, &blob1] {
            let reused = q.kernel.eval_blob(&mut scratch, blob).unwrap();
            let cold = q.kernel.eval_blob(&mut fresh, blob).unwrap();
            assert_eq!(reused.probability.to_bits(), cold.probability.to_bits());
            fresh = ScanScratch::new();
        }
        assert!(scratch.interned_labels() > 0);
    }
}
