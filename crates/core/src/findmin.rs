//! `FindMinSFA` — Algorithm 1 of the paper.
//!
//! Given a seed set of nodes `X`, grow it into the minimal set `Y ⊇ X`
//! whose induced subgraph is itself a valid SFA: a unique entry node,
//! a unique exit node, and no external edge incident to an interior node.
//! Figure 3 of the paper shows why this matters: collapsing a set that is
//! *not* a valid sub-SFA (e.g. two sibling edges) would introduce strings
//! the original model never emits.
//!
//! The growth loop alternates three repairs until the set is valid:
//!
//! 1. no unique entry → add the least common ancestor (and any nodes
//!    between it and the whole set);
//! 2. no unique exit → add the greatest common descendant (and the nodes
//!    between the set and it);
//! 3. an external edge touches an interior node → pull in its other
//!    endpoint.
//!
//! Termination: the set grows monotonically and the full node set is
//! always valid (entry = SFA start, exit = SFA finish).

use staccato_sfa::{NodeId, Sfa};

/// Dense reachability oracle for the partial order `≤` on SFA nodes
/// (`a ≤ b` iff `b` is reachable from `a`; reflexive).
///
/// Stores one descendant bitset per node — quadratic bits, linear to
/// query — plus topological ranks for deterministic LCA/GCD tie-breaks.
pub struct Reach {
    words_per_row: usize,
    desc: Vec<u64>,
    rank: Vec<u32>,
}

impl Reach {
    /// Build the oracle for the live subgraph of `sfa`.
    pub fn new(sfa: &Sfa) -> Reach {
        let slots = sfa.num_node_slots() as usize;
        let words = slots.div_ceil(64);
        let mut desc = vec![0u64; slots * words];
        let mut rank = vec![u32::MAX; slots];
        let order = sfa.topo_order();
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        // Reverse topological accumulation: desc[v] = {v} ∪ ⋃ desc[succ].
        for &v in order.iter().rev() {
            let vi = v as usize;
            // Collect successor rows first to appease the borrow checker
            // cheaply: copy each successor row into v's row.
            for &eid in sfa.out_edges(v) {
                let to = sfa.edge(eid).expect("live adjacency").to as usize;
                let (lo, hi) = (to * words, (to + 1) * words);
                // Split-borrow via pointers is unnecessary: rows are
                // disjoint because the graph is acyclic (to != v).
                let (dst_start, src_start) = (vi * words, lo);
                for w in 0..words {
                    let bits = desc[src_start + w];
                    desc[dst_start + w] |= bits;
                }
                let _ = hi;
            }
            desc[vi * words + (vi >> 6)] |= 1u64 << (vi & 63);
        }
        Reach {
            words_per_row: words,
            desc,
            rank,
        }
    }

    /// `a ≤ b`: is `b` reachable from `a` (including `a == b`)?
    #[inline]
    pub fn le(&self, a: NodeId, b: NodeId) -> bool {
        let row = a as usize * self.words_per_row;
        self.desc[row + (b as usize >> 6)] >> (b as usize & 63) & 1 == 1
    }

    /// Topological rank of a node (position in topological order).
    #[inline]
    pub fn rank(&self, n: NodeId) -> u32 {
        self.rank[n as usize]
    }
}

/// A valid sub-SFA region: the node set plus its unique entry and exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// All nodes of the region, sorted.
    pub nodes: Vec<NodeId>,
    /// The unique entry node (the region's start state).
    pub entry: NodeId,
    /// The unique exit node (the region's final state).
    pub exit: NodeId,
}

impl Region {
    /// Interior nodes (everything but entry and exit).
    pub fn interior(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .copied()
            .filter(move |&n| n != self.entry && n != self.exit)
    }
}

/// Check whether `set` (a membership mask over node slots) forms a valid
/// sub-SFA of `sfa`; if so return `(entry, exit)`.
fn validate_region(sfa: &Sfa, set: &[bool]) -> Option<(NodeId, NodeId)> {
    let mut entry = None;
    let mut exit = None;
    let mut members = 0usize;
    for n in sfa.nodes() {
        if !set[n as usize] {
            continue;
        }
        members += 1;
        let has_induced_in = sfa
            .in_edges(n)
            .iter()
            .any(|&e| set[sfa.edge(e).expect("live").from as usize]);
        let has_induced_out = sfa
            .out_edges(n)
            .iter()
            .any(|&e| set[sfa.edge(e).expect("live").to as usize]);
        if !has_induced_in && entry.replace(n).is_some() {
            return None; // two entries
        }
        if !has_induced_out && exit.replace(n).is_some() {
            return None; // two exits
        }
    }
    let (entry, exit) = (entry?, exit?);
    if members < 2 || entry == exit {
        return None;
    }
    // No external edge may touch an interior node.
    for n in sfa.nodes() {
        if !set[n as usize] || n == entry || n == exit {
            continue;
        }
        for &e in sfa.in_edges(n) {
            if !set[sfa.edge(e).expect("live").from as usize] {
                return None;
            }
        }
        for &e in sfa.out_edges(n) {
            if !set[sfa.edge(e).expect("live").to as usize] {
                return None;
            }
        }
    }
    Some((entry, exit))
}

/// Algorithm 1: grow `seed` into the minimal valid sub-SFA region.
///
/// `reach` must have been built against the current live graph of `sfa`.
pub fn find_min_sfa(sfa: &Sfa, reach: &Reach, seed: &[NodeId]) -> Region {
    let slots = sfa.num_node_slots() as usize;
    let mut set = vec![false; slots];
    for &n in seed {
        debug_assert!(sfa.is_node_alive(n), "seed node must be alive");
        set[n as usize] = true;
    }
    loop {
        if let Some((entry, exit)) = validate_region(sfa, &set) {
            let nodes: Vec<NodeId> = (0..slots as u32).filter(|&n| set[n as usize]).collect();
            return Region { nodes, entry, exit };
        }
        let members: Vec<NodeId> = (0..slots as u32).filter(|&n| set[n as usize]).collect();

        // Repair 1: unique start. A member can serve as the start iff it
        // precedes every member; otherwise add the least common ancestor
        // and the nodes between it and the whole set.
        let start_node = members
            .iter()
            .copied()
            .find(|&c| members.iter().all(|&x| reach.le(c, x)));
        if start_node.is_none() {
            // LCA: the common ancestor with the greatest topological rank.
            let lca = sfa
                .nodes()
                .filter(|&v| members.iter().all(|&x| reach.le(v, x)))
                .max_by_key(|&v| (reach.rank(v), v))
                .expect("the SFA start node is a common ancestor of every set");
            for y in sfa.nodes() {
                if reach.le(lca, y) && members.iter().all(|&x| reach.le(y, x)) {
                    set[y as usize] = true;
                }
            }
            continue;
        }

        // Repair 2: unique end, symmetric via the greatest common
        // descendant (Figure 3D's case).
        let end_node = members
            .iter()
            .copied()
            .find(|&c| members.iter().all(|&x| reach.le(x, c)));
        if end_node.is_none() {
            let gcd = sfa
                .nodes()
                .filter(|&v| members.iter().all(|&x| reach.le(x, v)))
                .min_by_key(|&v| (reach.rank(v), v))
                .expect("the SFA final node is a common descendant of every set");
            for y in sfa.nodes() {
                if reach.le(y, gcd) && members.iter().all(|&x| reach.le(x, y)) {
                    set[y as usize] = true;
                }
            }
            continue;
        }

        // Repair 3: the paper's closure rule — "∀e ∈ E s.t. exactly one
        // end-point is in X − {l, g}, add other end-point to X".
        let (l, g) = (start_node.expect("checked"), end_node.expect("checked"));
        let mut grew = false;
        for &n in &members {
            if n == l || n == g {
                continue;
            }
            for &e in sfa.in_edges(n) {
                let from = sfa.edge(e).expect("live").from;
                if !set[from as usize] {
                    set[from as usize] = true;
                    grew = true;
                }
            }
            for &e in sfa.out_edges(n) {
                let to = sfa.edge(e).expect("live").to;
                if !set[to as usize] {
                    set[to as usize] = true;
                    grew = true;
                }
            }
        }
        if !grew {
            // Still invalid but no closure applies: the set has a start and
            // an end yet skips intermediate nodes between them (possible
            // when the seed straddles a bypass). Enclose the full interval
            // [l, g], which strictly grows the set toward the whole graph.
            for y in sfa.nodes() {
                if reach.le(l, y) && reach.le(y, g) && !set[y as usize] {
                    set[y as usize] = true;
                    grew = true;
                }
            }
            assert!(
                grew || validate_region(sfa, &set).is_some(),
                "FindMinSFA failed to make progress"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staccato_sfa::{Emission, SfaBuilder};

    /// The Figure 3 SFA: emits `aef` (via 0→1→4→5) and `abcd`
    /// (via 0→1→2→3→5).
    fn figure3() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(n[0], n[1], vec![Emission::new("a", 1.0)]);
        b.add_edge(n[1], n[2], vec![Emission::new("b", 0.5)]);
        b.add_edge(n[2], n[3], vec![Emission::new("c", 1.0)]);
        b.add_edge(n[3], n[5], vec![Emission::new("d", 1.0)]);
        b.add_edge(n[1], n[4], vec![Emission::new("e", 0.5)]);
        b.add_edge(n[4], n[5], vec![Emission::new("f", 1.0)]);
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn reach_le_matches_paths() {
        let s = figure3();
        let r = Reach::new(&s);
        assert!(r.le(0, 5));
        assert!(r.le(1, 3));
        assert!(r.le(2, 2)); // reflexive
        assert!(!r.le(3, 2));
        assert!(!r.le(2, 4)); // branches are incomparable
        assert!(!r.le(4, 2));
    }

    #[test]
    fn successive_edges_are_already_minimal() {
        // Paper Figure 3B: merging {(1,2),(2,3)} — seed {1,2,3} — is a good
        // merge; the region is exactly those nodes.
        let s = figure3();
        let r = Reach::new(&s);
        let region = find_min_sfa(&s, &r, &[1, 2, 3]);
        assert_eq!(region.nodes, vec![1, 2, 3]);
        assert_eq!(region.entry, 1);
        assert_eq!(region.exit, 3);
    }

    #[test]
    fn sibling_edges_grow_to_greatest_common_descendant() {
        // Paper Figure 3C/D: merging {(1,2),(1,4)} — seed {1,2,4} — is a bad
        // merge; FindMinSFA must grow the set until node 5 (the greatest
        // common descendant) and node 3 are included.
        let s = figure3();
        let r = Reach::new(&s);
        let region = find_min_sfa(&s, &r, &[1, 2, 4]);
        assert_eq!(region.nodes, vec![1, 2, 3, 4, 5]);
        assert_eq!(region.entry, 1);
        assert_eq!(region.exit, 5);
    }

    #[test]
    fn no_unique_start_grows_to_least_common_ancestor() {
        // Paper Figure 12A: seed {3,4,5} has no unique start; node 1 is the
        // LCA, and node 2 must follow via edge closure.
        let s = figure3();
        let r = Reach::new(&s);
        let region = find_min_sfa(&s, &r, &[3, 4, 5]);
        assert_eq!(region.nodes, vec![1, 2, 3, 4, 5]);
        assert_eq!(region.entry, 1);
        assert_eq!(region.exit, 5);
    }

    #[test]
    fn external_edge_on_interior_pulls_in_endpoint() {
        // Paper Figure 12C: seed {0,1,2}: node 1 is interior but edge
        // (1,4) is external → 4 joins, then the exit repair completes.
        let s = figure3();
        let r = Reach::new(&s);
        let region = find_min_sfa(&s, &r, &[0, 1, 2]);
        assert_eq!(region.nodes, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(region.entry, 0);
        assert_eq!(region.exit, 5);
    }

    #[test]
    fn whole_graph_is_a_valid_region() {
        let s = figure3();
        let r = Reach::new(&s);
        let region = find_min_sfa(&s, &r, &[0, 5]);
        assert_eq!(region.entry, 0);
        assert_eq!(region.exit, 5);
        assert_eq!(region.nodes.len(), 6);
    }

    #[test]
    fn chain_triple_is_minimal() {
        let s = Sfa::from_string("hello");
        let r = Reach::new(&s);
        let region = find_min_sfa(&s, &r, &[1, 2, 3]);
        assert_eq!(region.nodes, vec![1, 2, 3]);
        assert_eq!(region.interior().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn diamond_interior_branch_is_minimal_without_bypass() {
        // l→a→g plus l→b→g: seed {l,a,g} is already valid — the bypass via
        // b does not invalidate it (only edges touching *interior* matter).
        let mut b = SfaBuilder::new();
        let l = b.add_node();
        let a = b.add_node();
        let bb = b.add_node();
        let g = b.add_node();
        b.add_edge(l, a, vec![Emission::new("x", 0.5)]);
        b.add_edge(a, g, vec![Emission::new("y", 1.0)]);
        b.add_edge(l, bb, vec![Emission::new("p", 0.5)]);
        b.add_edge(bb, g, vec![Emission::new("q", 1.0)]);
        let s = b.build(l, g).unwrap();
        let r = Reach::new(&s);
        let region = find_min_sfa(&s, &r, &[l, a, g]);
        assert_eq!(region.nodes, vec![l, a, g]);
        assert_eq!((region.entry, region.exit), (l, g));
    }
}
