//! Fast path for chain regions: `entry → mid → exit` with exactly two
//! induced edges.
//!
//! On OCR line SFAs almost every candidate region the greedy heuristic
//! scores has this shape (the channel emits a chain per character), so
//! `approximate` spends most of its time materializing two-edge sub-SFAs
//! and running the general k-best DP over them. For a two-edge chain both
//! collapse to closed forms:
//!
//! * region mass factors as `mass(e1) · mass(e2)`;
//! * the k best paths are the k largest pairwise products
//!   `p_i · q_j`, directly enumerable from the (sorted) emission lists.
//!
//! The helpers here replicate [`k_best_paths`]'s arithmetic **exactly** —
//! same log-space accumulation (`ln p + ln q`, exponentiated at the end),
//! same stable sort with the same comparator, same discovery order for
//! ties — so swapping them in changes no observable output, only the
//! constant factor. Regions with a bypass edge (`entry → exit` parallel to
//! the chain) or parallel edges do not qualify and fall back to the
//! general path.
//!
//! [`k_best_paths`]: staccato_sfa::k_best_paths

use crate::findmin::Region;
use staccato_sfa::{Edge, EdgeId, Sfa};

/// If `region` is exactly a two-edge chain — three nodes, the interior
/// node having a single in-edge from `entry` and a single out-edge to
/// `exit`, and no direct `entry → exit` edge — return `(in_edge,
/// out_edge)`. Any other shape returns `None`.
pub(crate) fn chain_edges(sfa: &Sfa, region: &Region) -> Option<(EdgeId, EdgeId)> {
    if region.nodes.len() != 3 {
        return None;
    }
    let mid = region.interior().next()?;
    let (ein, eout) = (sfa.in_edges(mid), sfa.out_edges(mid));
    let (&[e1], &[e2]) = (ein, eout) else {
        return None;
    };
    if sfa.edge(e1)?.from != region.entry || sfa.edge(e2)?.to != region.exit {
        return None;
    }
    if has_bypass(sfa, region.entry, region.exit) {
        return None;
    }
    Some((e1, e2))
}

/// Is there a direct `entry → exit` edge (which would be a third induced
/// edge of the region, invalidating the two-edge factorization)?
pub(crate) fn has_bypass(
    sfa: &Sfa,
    entry: staccato_sfa::NodeId,
    exit: staccato_sfa::NodeId,
) -> bool {
    sfa.out_edges(entry)
        .iter()
        .any(|&e| sfa.edge(e).expect("live adjacency").to == exit)
}

/// The k best labelled paths of the chain `e1 · e2`, as
/// `(log-prob, e1 emission index, e2 emission index)`, most likely first.
///
/// Bit-for-bit equivalent to running [`staccato_sfa::k_best_paths`] on
/// the extracted two-edge sub-SFA: the DP there seeds the interior node
/// with the first `min(k, positive)` emissions of `e1` (emissions are
/// kept sorted by decreasing probability, so the stable sort is a no-op),
/// then scores `ln p_i + ln q_j` per pair in `(j, i)` discovery order,
/// stable-sorts descending and truncates to `k`.
pub(crate) fn top_products(e1: &Edge, e2: &Edge, k: usize) -> Vec<(f64, u32, u32)> {
    let mid: Vec<(u32, f64)> = e1
        .emissions
        .iter()
        .enumerate()
        .filter(|(_, em)| em.prob > 0.0)
        .take(k)
        .map(|(i, em)| (i as u32, em.prob.ln()))
        .collect();
    let mut scratch: Vec<(f64, u32, u32)> = Vec::with_capacity(mid.len() * e2.emissions.len());
    for (j, em) in e2.emissions.iter().enumerate() {
        if em.prob <= 0.0 {
            continue;
        }
        let lq = em.prob.ln();
        for &(i, lp) in &mid {
            scratch.push((lp + lq, i, j as u32));
        }
    }
    scratch.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scratch.truncate(k);
    scratch
}

/// `region mass − retained top-k mass` for the chain `e1 · e2`, matching
/// `greedy::local_loss` on the extracted sub-SFA: the forward DP's total
/// mass is `mass(e1) · mass(e2)` and the retained mass sums the top-k
/// path probabilities in descending order.
///
/// Only the probability *values* matter for the loss, so the enumeration
/// prunes pairs that cannot rank in the top k: with both emission lists
/// sorted descending, pair `(i, j)` is dominated by the `(i+1)·(j+1)`
/// pairs at or above it (f64 addition is monotone), so pairs with
/// `(i+1)·(j+1) > k` never contribute — the top-k value multiset lives
/// entirely inside the hyperbola, shrinking the candidate set from `k²`
/// to `O(k log k)`.
pub(crate) fn chain_local_loss(e1: &Edge, e2: &Edge, k: usize) -> f64 {
    let sub_mass = e1.mass() * e2.mass();
    let mut vals: Vec<f64> = Vec::with_capacity(3 * k);
    for (i, em1) in e1.emissions.iter().enumerate().take(k) {
        if em1.prob <= 0.0 {
            break; // sorted descending: no positive emissions remain
        }
        let lp = em1.prob.ln();
        for em2 in e2.emissions.iter().take(k / (i + 1)) {
            if em2.prob <= 0.0 {
                break;
            }
            vals.push(lp + em2.prob.ln());
        }
    }
    vals.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    vals.truncate(k);
    let retained: f64 = vals.iter().map(|lp| lp.exp()).sum();
    (sub_mass - retained).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collapse::extract_region;
    use crate::findmin::{find_min_sfa, Reach};
    use staccato_sfa::{k_best_paths, total_mass, Emission, NodeId, SfaBuilder};

    fn chain3() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![
                Emission::new("a", 0.5),
                Emission::new("b", 0.3),
                Emission::new("c", 0.2),
            ],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![
                Emission::new("x", 0.6),
                Emission::new("y", 0.25),
                Emission::new("z", 0.15),
            ],
        );
        b.add_edge(n[2], n[3], vec![Emission::new("!", 1.0)]);
        b.build(n[0], n[3]).unwrap()
    }

    #[test]
    fn chain_loss_matches_general_path_bit_for_bit() {
        let s = chain3();
        let reach = Reach::new(&s);
        for k in 1..=9 {
            let region = find_min_sfa(&s, &reach, &[0, 1, 2]);
            let (e1, e2) = chain_edges(&s, &region).expect("two-edge chain");
            let fast = chain_local_loss(s.edge(e1).unwrap(), s.edge(e2).unwrap(), k);
            let (sub, _) = extract_region(&s, &region);
            let retained: f64 = k_best_paths(&sub, k).iter().map(|p| p.prob).sum();
            let general = (total_mass(&sub) - retained).max(0.0);
            assert_eq!(fast.to_bits(), general.to_bits(), "k={k}");
        }
    }

    #[test]
    fn top_products_match_kbest_strings_and_probs() {
        let s = chain3();
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[0, 1, 2]);
        let (e1, e2) = chain_edges(&s, &region).unwrap();
        let (sub, _) = extract_region(&s, &region);
        for k in [1, 3, 5, 9, 20] {
            let fast = top_products(s.edge(e1).unwrap(), s.edge(e2).unwrap(), k);
            let general = k_best_paths(&sub, k);
            assert_eq!(fast.len(), general.len(), "k={k}");
            for (f, g) in fast.iter().zip(&general) {
                let (lp, i, j) = *f;
                let label = format!(
                    "{}{}",
                    s.edge(e1).unwrap().emissions[i as usize].label,
                    s.edge(e2).unwrap().emissions[j as usize].label
                );
                assert_eq!(label, g.string);
                assert_eq!(lp.exp().to_bits(), g.prob.to_bits());
            }
        }
    }

    #[test]
    fn bypass_edge_disqualifies_the_region() {
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node()).collect();
        b.add_edge(n[0], n[1], vec![Emission::new("a", 0.5)]);
        b.add_edge(n[1], n[2], vec![Emission::new("b", 0.5)]);
        b.add_edge(n[0], n[2], vec![Emission::new("c", 0.5)]);
        let s = b.build(n[0], n[2]).unwrap();
        let region = Region {
            nodes: vec![0, 1, 2],
            entry: 0,
            exit: 2,
        };
        assert!(chain_edges(&s, &region).is_none());
    }

    #[test]
    fn parallel_in_edges_disqualify_the_region() {
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node()).collect();
        b.add_edge(n[0], n[1], vec![Emission::new("a", 0.4)]);
        b.add_edge(n[0], n[1], vec![Emission::new("b", 0.4)]);
        b.add_edge(n[1], n[2], vec![Emission::new("c", 1.0)]);
        let s = b.build(n[0], n[2]).unwrap();
        let region = Region {
            nodes: vec![0, 1, 2],
            entry: 0,
            exit: 2,
        };
        assert!(chain_edges(&s, &region).is_none());
    }
}
