//! # staccato-core
//!
//! The Staccato approximation — the primary contribution of Kumar & Ré
//! (VLDB 2011, §3).
//!
//! Given a per-line OCR SFA, Staccato produces a smaller SFA whose edges
//! are *chunks*: each of the (at most) `m` remaining edges carries the `k`
//! highest-probability strings of the sub-SFA it replaced. With `m = 1`
//! the output is exactly k-MAP; as `m` grows toward the original edge
//! count the output approaches the full SFA — the knob that trades recall
//! for query performance.
//!
//! * [`findmin`] — `FindMinSFA` (Algorithm 1): grow a seed node set into
//!   the minimal region that forms a valid sub-SFA (unique entry, unique
//!   exit, no external edges on interior nodes).
//! * [`mod@collapse`] — replace a region with a single edge holding the
//!   region's top-k strings (`Collapse`). By Proposition 3.1 this is the
//!   mass-optimal choice per chunk.
//! * [`greedy`] — Algorithm 2: repeatedly collapse the adjacent-edge-pair
//!   region that loses the least probability mass, until at most `m` edges
//!   remain. Uses the forward/backward-mass factorization for O(1)
//!   candidate scoring and caches candidate regions across iterations, the
//!   paper's stated optimization.
//! * [`tuning`] — §3.2's automated parameter selection: fit the Table 1
//!   size model, then binary-search the smallest `m` meeting a recall
//!   constraint within a storage budget.

mod chain;
pub mod collapse;
pub mod findmin;
pub mod greedy;
pub mod tuning;

pub use collapse::{collapse, extract_region};
pub use findmin::{find_min_sfa, Reach, Region};
pub use greedy::{approximate, StaccatoParams};
pub use tuning::{tune, SizeModel, TuningConstraints, TuningOutcome};
