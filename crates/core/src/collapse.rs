//! `Collapse`: replace a valid sub-SFA region with a single edge that
//! retains the region's k highest-probability strings (§3.1).
//!
//! Correctness conditions (Figure 3 of the paper, verified by tests and
//! property tests):
//!
//! * no new strings: everything the collapsed SFA emits was emitted by the
//!   original;
//! * mass-optimal pruning: the retained strings are exactly the top-k of
//!   the region (Proposition 3.1 shows this maximizes retained mass among
//!   per-chunk choices);
//! * the unique path property is preserved.

use crate::chain::{chain_edges, top_products};
use crate::findmin::Region;
use staccato_sfa::{k_best_paths, Emission, NodeId, Sfa, SfaBuilder};

/// Materialize the region's induced sub-SFA as a standalone automaton
/// (entry becomes the start node, exit the final node). Also returns the
/// node remapping used (old node id → new node id).
pub fn extract_region(sfa: &Sfa, region: &Region) -> (Sfa, Vec<(NodeId, NodeId)>) {
    let mut b = SfaBuilder::new();
    let mut map: Vec<(NodeId, NodeId)> = Vec::with_capacity(region.nodes.len());
    for &n in &region.nodes {
        let new = b.add_node();
        map.push((n, new));
    }
    let lookup =
        |old: NodeId| -> Option<NodeId> { map.iter().find(|&&(o, _)| o == old).map(|&(_, n)| n) };
    for (_, e) in sfa.edges() {
        if let (Some(from), Some(to)) = (lookup(e.from), lookup(e.to)) {
            b.add_edge(from, to, e.emissions.clone());
        }
    }
    let start = lookup(region.entry).expect("entry is in the region");
    let finish = lookup(region.exit).expect("exit is in the region");
    let sub = b
        .build(start, finish)
        .expect("a valid FindMinSFA region induces a structurally valid SFA");
    (sub, map)
}

/// The top-k strings of a region, as emissions for the replacement edge.
/// Probabilities are the labelled-path products within the region — i.e.
/// the conditional probability of the string given arrival at the entry.
pub fn region_top_k(sfa: &Sfa, region: &Region, k: usize) -> Vec<Emission> {
    // Two-edge chain regions (the common case on line SFAs) have a closed
    // form that reproduces the general DP's output exactly — see
    // `crate::chain`.
    if let Some((e1, e2)) = chain_edges(sfa, region) {
        let (e1, e2) = (
            sfa.edge(e1).expect("live edge"),
            sfa.edge(e2).expect("live edge"),
        );
        return top_products(e1, e2, k)
            .into_iter()
            .map(|(lp, i, j)| {
                let mut label = String::with_capacity(
                    e1.emissions[i as usize].label.len() + e2.emissions[j as usize].label.len(),
                );
                label.push_str(&e1.emissions[i as usize].label);
                label.push_str(&e2.emissions[j as usize].label);
                Emission {
                    label,
                    prob: lp.exp(),
                }
            })
            .collect();
    }
    let (sub, _) = extract_region(sfa, region);
    k_best_paths(&sub, k)
        .into_iter()
        .map(|p| Emission {
            label: p.string,
            prob: p.prob,
        })
        .collect()
}

/// Collapse `region` in place: delete every induced edge and interior
/// node, then insert one entry→exit edge carrying the region's top-k
/// strings. Returns the new edge id.
///
/// # Panics
///
/// Panics if the region has no positive-probability path (it then retains
/// zero strings, which would disconnect the graph); FindMinSFA regions on
/// live SFAs always have one.
pub fn collapse(sfa: &mut Sfa, region: &Region, k: usize) -> staccato_sfa::EdgeId {
    let emissions = region_top_k(sfa, region, k);
    assert!(
        !emissions.is_empty(),
        "collapse of a region with no retained strings"
    );
    let member = |n: NodeId| region.nodes.binary_search(&n).is_ok();
    let doomed: Vec<_> = sfa
        .edges()
        .filter(|(_, e)| member(e.from) && member(e.to))
        .map(|(id, _)| id)
        .collect();
    for id in doomed {
        sfa.remove_edge(id).expect("edge was live");
    }
    for n in region.interior() {
        sfa.remove_node(n)
            .expect("interior nodes have no surviving edges");
    }
    sfa.add_edge(region.entry, region.exit, emissions)
        .expect("entry and exit stay alive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findmin::{find_min_sfa, Reach};
    use staccato_sfa::{check_structure, check_unique_paths, total_mass};

    fn figure3() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(n[0], n[1], vec![Emission::new("a", 1.0)]);
        b.add_edge(n[1], n[2], vec![Emission::new("b", 0.5)]);
        b.add_edge(n[2], n[3], vec![Emission::new("c", 1.0)]);
        b.add_edge(n[3], n[5], vec![Emission::new("d", 1.0)]);
        b.add_edge(n[1], n[4], vec![Emission::new("e", 0.5)]);
        b.add_edge(n[4], n[5], vec![Emission::new("f", 1.0)]);
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn good_merge_emits_bc_on_new_edge() {
        // Paper Figure 3B: collapsing {1,2,3} yields edge (1,3) emitting "bc".
        let mut s = figure3();
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[1, 2, 3]);
        let eid = collapse(&mut s, &region, 10);
        let e = s.edge(eid).unwrap();
        assert_eq!((e.from, e.to), (1, 3));
        assert_eq!(e.emissions.len(), 1);
        assert_eq!(e.emissions[0].label, "bc");
        assert!((e.emissions[0].prob - 0.5).abs() < 1e-12);
        // The SFA still emits exactly aef and abcd.
        let mut strings: Vec<String> = s
            .enumerate_strings(100)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        strings.sort();
        assert_eq!(strings, vec!["abcd".to_string(), "aef".to_string()]);
        check_structure(&s).unwrap();
        check_unique_paths(&s).unwrap();
    }

    #[test]
    fn bad_merge_region_collapse_keeps_language() {
        // Paper Figure 3D: seed {1,2,4} grows to {1..5}; collapsing it must
        // not create strings like "abf".
        let mut s = figure3();
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[1, 2, 4]);
        collapse(&mut s, &region, 10);
        let mut strings: Vec<String> = s
            .enumerate_strings(100)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        strings.sort();
        assert_eq!(strings, vec!["abcd".to_string(), "aef".to_string()]);
        // The whole tail collapsed into a single edge (0→1 plus 1→5).
        assert_eq!(s.edge_count(), 2);
    }

    #[test]
    fn top_k_truncation_keeps_highest_mass() {
        // Collapse Figure 3's {1..5} with k=1: only "ef" or "bcd" survives —
        // they tie at 0.5, so the retained one must carry 0.5 mass.
        let mut s = figure3();
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[1, 2, 4]);
        collapse(&mut s, &region, 1);
        assert!((total_mass(&s) - 0.5).abs() < 1e-12);
        assert_eq!(s.enumerate_strings(10).len(), 1);
    }

    #[test]
    fn collapse_never_increases_mass() {
        let mut s = figure3();
        let before = total_mass(&s);
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[1, 2, 3]);
        collapse(&mut s, &region, 10);
        let after = total_mass(&s);
        assert!(after <= before + 1e-12);
    }

    #[test]
    fn collapse_merges_parallel_edges() {
        // Two parallel edges u→v merge into one edge with both labels.
        let mut b = SfaBuilder::new();
        let u = b.add_node();
        let v = b.add_node();
        let w = b.add_node();
        b.add_edge(u, v, vec![Emission::new("a", 0.6)]);
        b.add_edge(u, v, vec![Emission::new("b", 0.4)]);
        b.add_edge(v, w, vec![Emission::new("c", 1.0)]);
        let mut s = b.build(u, w).unwrap();
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[u, v]);
        let eid = collapse(&mut s, &region, 10);
        let e = s.edge(eid).unwrap();
        assert_eq!(e.emissions.len(), 2);
        assert_eq!(e.emissions[0].label, "a");
        assert_eq!(e.emissions[1].label, "b");
        assert_eq!(s.edge_count(), 2);
    }

    #[test]
    fn extract_region_is_standalone_valid() {
        let s = figure3();
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[1, 2, 4]);
        let (sub, map) = extract_region(&s, &region);
        check_structure(&sub).unwrap();
        assert_eq!(map.len(), region.nodes.len());
        let mut strings: Vec<String> = sub
            .enumerate_strings(100)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        strings.sort();
        assert_eq!(strings, vec!["bcd".to_string(), "ef".to_string()]);
    }

    #[test]
    fn region_top_k_is_sorted_by_mass() {
        let s = figure3();
        let reach = Reach::new(&s);
        let region = find_min_sfa(&s, &reach, &[1, 2, 4]);
        let top = region_top_k(&s, &region, 10);
        assert_eq!(top.len(), 2);
        assert!(top[0].prob >= top[1].prob);
        let sum: f64 = top.iter().map(|e| e.prob).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
