//! Automated parameter tuning (§3.2, evaluated in §5.5).
//!
//! The user supplies a *size constraint* (storage budget as a fraction of
//! the full-SFA dataset) and a *quality constraint* (average recall over a
//! labelled query workload). Table 1's cost model makes the Staccato size
//! a function of `(m, k)` — per line roughly `l·k + 16·m·k` bytes — so the
//! size constraint expresses `k` in terms of `m`. The paper observes that
//! for a fixed size, smaller `m` is faster to query, so tuning reduces to
//! a one-dimensional search for the smallest `m` whose `(m, k(m))` meets
//! the recall target, solved "using essentially a binary search".
//!
//! Recall evaluation requires running queries, which lives upstream of
//! this crate; [`tune`] therefore takes the recall oracle as a closure.

/// Linear size model `size(m, k) ≈ per_chunk · m·k + per_path · k` fitted
/// from the dataset (the paper's §5.5 instance is `20mk + 58k = 45540`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeModel {
    /// Bytes contributed per `(m·k)` unit: chunk metadata (tuple id,
    /// location, probability — the paper budgets 16 bytes) times the
    /// number of lines.
    pub per_chunk_bytes: f64,
    /// Bytes contributed per `k` unit: one copy of each line's text
    /// (`Σ lᵢ` over the dataset).
    pub per_path_bytes: f64,
}

impl SizeModel {
    /// Per-chunk metadata bytes assumed by Table 1.
    pub const METADATA_BYTES: f64 = 16.0;

    /// Fit the model from per-line string lengths: `per_path = Σ lᵢ`,
    /// `per_chunk = 16 · #lines`.
    pub fn from_line_lengths(lengths: &[usize]) -> SizeModel {
        let total: usize = lengths.iter().sum();
        SizeModel {
            per_chunk_bytes: Self::METADATA_BYTES * lengths.len() as f64,
            per_path_bytes: total as f64,
        }
    }

    /// Predicted dataset size for parameters `(m, k)`.
    pub fn predicted_size(&self, m: usize, k: usize) -> f64 {
        self.per_chunk_bytes * (m * k) as f64 + self.per_path_bytes * k as f64
    }

    /// Largest `k` (a multiple of `step`, at least `step`) on the budget
    /// boundary for a given `m`; `None` if even `k = step` exceeds it.
    pub fn k_for_budget(&self, m: usize, budget_bytes: f64, step: usize) -> Option<usize> {
        let denom = self.per_chunk_bytes * m as f64 + self.per_path_bytes;
        if denom <= 0.0 {
            return None;
        }
        let k_max = (budget_bytes / denom).floor() as usize;
        let k = (k_max / step) * step;
        (k >= step).then_some(k)
    }
}

/// User-facing tuning constraints (§5.5 uses a 10% size budget, 0.9 recall
/// target, and parameter increments of 5).
#[derive(Debug, Clone, Copy)]
pub struct TuningConstraints {
    /// Storage budget in bytes (e.g. 10% of the FullSFA dataset size).
    pub size_budget_bytes: f64,
    /// Required average recall over the workload.
    pub recall_target: f64,
    /// Granularity of the `(m, k)` grid (the paper uses 5).
    pub step: usize,
    /// Upper bound on `m` to search (e.g. the max edge count per line).
    pub max_m: usize,
}

/// Result of a successful tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningOutcome {
    /// Chosen number of chunks.
    pub m: usize,
    /// Chosen paths-per-chunk, on the size-constraint boundary for `m`.
    pub k: usize,
    /// Measured average recall at `(m, k)`.
    pub recall: f64,
    /// Number of recall evaluations performed (each one approximates the
    /// labelled set and runs the workload, so callers care).
    pub evaluations: usize,
}

/// Find the smallest `m` (on the `step` grid) whose boundary `k` meets the
/// recall target, via binary search over `m`.
///
/// `recall_fn(m, k)` must approximate the labelled dataset with `(m, k)`
/// and return average recall over the representative queries. Returns
/// `None` if the constraints are infeasible, in which case the paper's
/// protocol is to relax one constraint and retry.
pub fn tune<F>(
    model: &SizeModel,
    constraints: &TuningConstraints,
    mut recall_fn: F,
) -> Option<TuningOutcome>
where
    F: FnMut(usize, usize) -> f64,
{
    let step = constraints.step.max(1);
    let grid_max = constraints.max_m / step;
    if grid_max == 0 {
        return None;
    }
    let mut evaluations = 0usize;

    // Feasibility probe at the largest m: if even the most chunked layout
    // that fits the budget cannot reach the target, report infeasible.
    let mut eval = |m: usize, evaluations: &mut usize| -> Option<(usize, f64)> {
        let k = model.k_for_budget(m, constraints.size_budget_bytes, step)?;
        *evaluations += 1;
        Some((k, recall_fn(m, k)))
    };

    // Binary search the smallest grid index with recall ≥ target. Recall
    // is treated as monotone in m along the budget boundary (the paper's
    // premise; §5.5 validates it empirically).
    let (mut lo, mut hi) = (1usize, grid_max);
    let mut best: Option<TuningOutcome> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let m = mid * step;
        match eval(m, &mut evaluations) {
            None => {
                // Budget cannot even afford k = step at this m; smaller m
                // frees budget for k, so search downward.
                hi = mid - 1;
                if hi == 0 {
                    break;
                }
            }
            Some((k, recall)) => {
                if recall >= constraints.recall_target {
                    best = Some(TuningOutcome {
                        m,
                        k,
                        recall,
                        evaluations,
                    });
                    if mid == 1 {
                        break;
                    }
                    hi = mid - 1;
                } else {
                    lo = mid + 1;
                }
            }
        }
    }
    best.map(|mut b| {
        b.evaluations = evaluations;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_model() -> SizeModel {
        // §5.5: 1590 SFAs; the paper's fitted equation is 20mk + 58k =
        // 45540 (in their units); ours uses 16·lines per chunk and Σl per
        // path.
        SizeModel {
            per_chunk_bytes: 20.0,
            per_path_bytes: 58.0,
        }
    }

    #[test]
    fn k_for_budget_solves_boundary() {
        let m = paper_like_model();
        // 20·45·k + 58·k = 958k ≤ 45540 → k ≤ 47 → grid 45.
        assert_eq!(m.k_for_budget(45, 45540.0, 5), Some(45));
        // Higher m leaves less room for k.
        assert_eq!(m.k_for_budget(100, 45540.0, 5), Some(20));
        // Tiny budget → infeasible.
        assert_eq!(m.k_for_budget(45, 100.0, 5), None);
    }

    #[test]
    fn predicted_size_is_linear() {
        let m = paper_like_model();
        assert_eq!(m.predicted_size(10, 5), 20.0 * 50.0 + 58.0 * 5.0);
        assert!(m.predicted_size(20, 5) > m.predicted_size(10, 5));
    }

    #[test]
    fn from_line_lengths_fits_table1() {
        let model = SizeModel::from_line_lengths(&[10, 20, 30]);
        assert_eq!(model.per_chunk_bytes, 16.0 * 3.0);
        assert_eq!(model.per_path_bytes, 60.0);
    }

    #[test]
    fn tune_finds_smallest_feasible_m() {
        let model = paper_like_model();
        let constraints = TuningConstraints {
            size_budget_bytes: 45540.0,
            recall_target: 0.9,
            step: 5,
            max_m: 200,
        };
        // Synthetic monotone recall surface: grows with m, mildly with k.
        let outcome = tune(&model, &constraints, |m, k| {
            let r = 0.5 + 0.01 * m as f64 + 0.0005 * k as f64;
            r.min(1.0)
        })
        .expect("feasible");
        // Recall ≥ 0.9 needs roughly m ≥ 38 given the k(m) boundary; the
        // grid step of 5 lands on 40.
        assert_eq!(outcome.m % 5, 0);
        assert!(outcome.recall >= 0.9);
        // Must be the smallest feasible grid point: one grid step down
        // fails the target.
        let m_down = outcome.m - 5;
        if m_down >= 5 {
            let k_down = model
                .k_for_budget(m_down, constraints.size_budget_bytes, 5)
                .unwrap();
            let r_down = (0.5 + 0.01 * m_down as f64 + 0.0005 * k_down as f64).min(1.0);
            assert!(r_down < 0.9);
        }
        // Binary search touches O(log) grid points, not all 40.
        assert!(
            outcome.evaluations <= 8,
            "{} evaluations",
            outcome.evaluations
        );
    }

    #[test]
    fn tune_reports_infeasible() {
        let model = paper_like_model();
        let constraints = TuningConstraints {
            size_budget_bytes: 45540.0,
            recall_target: 0.99,
            step: 5,
            max_m: 100,
        };
        assert!(tune(&model, &constraints, |_, _| 0.5).is_none());
    }

    #[test]
    fn tune_handles_budget_starved_large_m() {
        let model = paper_like_model();
        // Budget affords k=5 only up to m≈150; beyond that eval yields None
        // and the search must come back down.
        let constraints = TuningConstraints {
            size_budget_bytes: 16_000.0,
            recall_target: 0.8,
            step: 5,
            max_m: 10_000,
        };
        let outcome = tune(
            &model,
            &constraints,
            |m, _| if m >= 50 { 0.95 } else { 0.1 },
        );
        let o = outcome.expect("feasible in the affordable range");
        assert!(o.m >= 50);
        assert!(model.predicted_size(o.m, o.k) <= constraints.size_budget_bytes);
    }

    #[test]
    fn tune_with_m1_feasible_immediately() {
        let model = paper_like_model();
        let constraints = TuningConstraints {
            size_budget_bytes: 1e9,
            recall_target: 0.1,
            step: 5,
            max_m: 100,
        };
        let o = tune(&model, &constraints, |_, _| 1.0).unwrap();
        assert_eq!(o.m, 5); // smallest grid point
    }
}
