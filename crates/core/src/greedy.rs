//! Algorithm 2: the greedy chunk-merging heuristic.
//!
//! Repeat until at most `m` edges remain: for every adjacent edge pair
//! `(x,y), (y,z)`, grow `{x,y,z}` with `FindMinSFA`, score the collapse by
//! the probability mass it would retain, and apply the best one.
//!
//! Two optimizations from the paper are implemented:
//!
//! * **incremental scoring** — the retained-mass change of collapsing a
//!   region factors as `forward[entry] · (region mass − top-k mass) ·
//!   backward[exit]`, so candidates are scored without materializing the
//!   collapsed graph ("a faster incremental variant is actually used in
//!   Staccato", §3.1);
//! * **candidate caching** — regions and their local mass loss are cached
//!   across iterations and only invalidated when they overlap the applied
//!   collapse ("a simple optimization … is to cache those candidates we
//!   have considered in previous iterations", §3.1).

use crate::chain::{chain_local_loss, has_bypass};
use crate::collapse::{collapse, extract_region};
use crate::findmin::{find_min_sfa, Reach, Region};
use staccato_sfa::{k_best_paths, total_mass, NodeId, Sfa};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The two knobs of the approximation (Table 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaccatoParams {
    /// Maximum number of edges (chunks) retained. `m = 1` collapses the
    /// whole line into one chunk (equivalent to k-MAP); `m ≥ |E|` keeps
    /// every transition as its own chunk (the full SFA, pruned to k
    /// strings per edge).
    pub m: usize,
    /// Number of strings retained per chunk.
    pub k: usize,
}

impl StaccatoParams {
    /// Convenience constructor.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(m >= 1, "m (number of chunks) must be at least 1");
        assert!(k >= 1, "k (paths per chunk) must be at least 1");
        StaccatoParams { m, k }
    }
}

#[derive(Clone)]
struct Cached {
    region: Region,
    /// `region mass − retained top-k mass` — independent of the rest of
    /// the graph, so it survives collapses elsewhere.
    local_loss: f64,
}

/// Multiply–xor hasher for the `(x, y, z)` candidate keys. The greedy
/// scan performs thousands of cache probes per line, where SipHash's
/// per-lookup setup dominates; node-id triples need no DoS resistance.
#[derive(Default)]
struct TripleHasher(u64);

impl Hasher for TripleHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u32(b as u32);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0.rotate_left(5) ^ n as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type CandidateCache = HashMap<(NodeId, NodeId, NodeId), Cached, BuildHasherDefault<TripleHasher>>;

/// [`staccato_sfa::forward_mass`] with the topological order and per-edge
/// masses precomputed and the output buffer reused across iterations —
/// the greedy loop recomputes the DP after every collapse, and on line
/// SFAs the allocations and repeated `Edge::mass()` sums dominate the DP
/// itself. Arithmetic is identical (same traversal, same summation
/// order), so results match the public function bit for bit.
fn forward_mass_into(sfa: &Sfa, topo: &[NodeId], edge_mass: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(sfa.num_node_slots() as usize, 0.0);
    out[sfa.start() as usize] = 1.0;
    for &v in topo {
        let mv = out[v as usize];
        if mv == 0.0 {
            continue;
        }
        for &eid in sfa.out_edges(v) {
            let to = sfa.edge(eid).expect("live adjacency").to;
            out[to as usize] += mv * edge_mass[eid as usize];
        }
    }
}

/// [`staccato_sfa::backward_mass`] under the same precomputation; see
/// [`forward_mass_into`].
fn backward_mass_into(sfa: &Sfa, topo: &[NodeId], edge_mass: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(sfa.num_node_slots() as usize, 0.0);
    out[sfa.finish() as usize] = 1.0;
    for &v in topo.iter().rev() {
        if v == sfa.finish() {
            continue;
        }
        let mut mv = 0.0;
        for &eid in sfa.out_edges(v) {
            let edge = sfa.edge(eid).expect("live adjacency");
            mv += edge_mass[eid as usize] * out[edge.to as usize];
        }
        out[v as usize] = mv;
    }
}

/// Compute a region's local mass loss for a given k.
fn local_loss(sfa: &Sfa, region: &Region, k: usize) -> f64 {
    let (sub, _) = extract_region(sfa, region);
    let sub_mass = total_mass(&sub);
    let retained: f64 = k_best_paths(&sub, k).iter().map(|p| p.prob).sum();
    (sub_mass - retained).max(0.0)
}

/// Build the Staccato approximation of `original` with parameters
/// `(m, k)`: prune each edge to its top-k emissions, then greedily merge
/// chunks until at most `m` edges remain. The result is compacted
/// (densely numbered) and structurally valid; it intentionally retains
/// less than unit probability mass.
pub fn approximate(original: &Sfa, params: StaccatoParams) -> Sfa {
    let StaccatoParams { m, k } = params;
    assert!(m >= 1 && k >= 1, "StaccatoParams must be at least (1, 1)");
    let mut sfa = original.clone();

    // Step 0: restrict every edge to at most k strings, keeping the
    // highest-probability ones (emissions are maintained sorted).
    let ids: Vec<_> = sfa.edges().map(|(id, _)| id).collect();
    for id in ids {
        let e = sfa.edge_mut(id).expect("live edge");
        if e.emissions.len() > k {
            e.emissions.truncate(k);
        }
    }

    let mut cache: CandidateCache = CandidateCache::default();

    // Per-edge masses, indexed by edge slot. Edges never change emissions
    // once created (collapse only removes edges and inserts new ones), so
    // each mass is summed exactly once.
    let mut edge_mass: Vec<f64> = vec![0.0; sfa.num_edge_slots() as usize];
    for (id, e) in sfa.edges() {
        edge_mass[id as usize] = e.mass();
    }
    let (mut fwd, mut bwd): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());

    while sfa.edge_count() > m {
        // The reachability oracle is only consulted by FindMinSFA's repair
        // loop; chain-triple candidates (the overwhelming majority on line
        // SFAs) validate immediately, so build it lazily.
        let mut reach: Option<Reach> = None;
        let topo = sfa.topo_order();
        forward_mass_into(&sfa, &topo, &edge_mass, &mut fwd);
        backward_mass_into(&sfa, &topo, &edge_mass, &mut bwd);

        let mut best: Option<(f64, (NodeId, NodeId, NodeId))> = None;
        let nodes: Vec<NodeId> = sfa.nodes().collect();
        for &y in &nodes {
            for &ein in sfa.in_edges(y) {
                let x = sfa.edge(ein).expect("live").from;
                for &eout in sfa.out_edges(y) {
                    let z = sfa.edge(eout).expect("live").to;
                    let key = (x, y, z);
                    let cached = match cache.entry(key) {
                        std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            // When y's only edges are the pair under
                            // consideration, {x, y, z} is already a valid
                            // region (unique entry/exit, no external edge on
                            // the interior) and FindMinSFA would return it
                            // unchanged — skip straight to it, and score it
                            // with the closed-form chain loss unless an
                            // x → z bypass edge makes the region three-edged.
                            let chain = sfa.in_edges(y).len() == 1 && sfa.out_edges(y).len() == 1;
                            let fresh = if chain {
                                let mut nodes3 = vec![x, y, z];
                                nodes3.sort_unstable();
                                let region = Region {
                                    nodes: nodes3,
                                    entry: x,
                                    exit: z,
                                };
                                let loss = if has_bypass(&sfa, x, z) {
                                    local_loss(&sfa, &region, k)
                                } else {
                                    chain_local_loss(
                                        sfa.edge(ein).expect("live"),
                                        sfa.edge(eout).expect("live"),
                                        k,
                                    )
                                };
                                Cached {
                                    region,
                                    local_loss: loss,
                                }
                            } else {
                                let reach = reach.get_or_insert_with(|| Reach::new(&sfa));
                                let region = find_min_sfa(&sfa, reach, &[x, y, z]);
                                let loss = local_loss(&sfa, &region, k);
                                Cached {
                                    region,
                                    local_loss: loss,
                                }
                            };
                            slot.insert(fresh)
                        }
                    };
                    let loss = fwd[cached.region.entry as usize]
                        * cached.local_loss
                        * bwd[cached.region.exit as usize];
                    if best.as_ref().is_none_or(|(b, _)| loss < *b) {
                        best = Some((loss, key));
                    }
                }
            }
        }

        let Some((_, best_key)) = best else {
            // No adjacent edge pair exists (the graph is a single edge or a
            // bundle of parallel edges between start and finish with no
            // interior node) — nothing further can be merged.
            break;
        };
        // The winning candidate overlaps its own region, so the retain
        // below would evict it anyway — take ownership instead of cloning.
        let region = cache
            .remove(&best_key)
            .expect("best candidate is cached")
            .region;

        let new_edge = collapse(&mut sfa, &region, k);
        if edge_mass.len() <= new_edge as usize {
            edge_mass.resize(new_edge as usize + 1, 0.0);
        }
        edge_mass[new_edge as usize] = sfa.edge(new_edge).expect("just inserted").mass();

        // Invalidate cached candidates overlapping the collapsed region
        // (their seed nodes may be gone or their sub-SFA changed).
        let touched = |n: NodeId| region.nodes.binary_search(&n).is_ok();
        cache.retain(|&(x, y, z), c| {
            !(touched(x) || touched(y) || touched(z) || c.region.nodes.iter().any(|&n| touched(n)))
        });
    }

    sfa.compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use staccato_sfa::{check_structure, check_unique_paths, Emission, SfaBuilder};

    /// Figure 2's chain SFA: 4 edges, 3 emissions each.
    fn figure2() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.add_node()).collect();
        let rows: [&[(&str, f64)]; 4] = [
            &[("a", 0.6), ("p", 0.2), ("w", 0.1), ("!", 0.1)],
            &[("b", 0.5), ("q", 0.3), ("x", 0.2)],
            &[("c", 0.4), ("r", 0.3), ("y", 0.1), ("@", 0.2)],
            &[("d", 0.7), ("s", 0.2), ("z", 0.1)],
        ];
        for (i, row) in rows.iter().enumerate() {
            b.add_edge(
                n[i],
                n[i + 1],
                row.iter().map(|&(l, p)| Emission::new(l, p)).collect(),
            );
        }
        b.build(n[0], n[4]).unwrap()
    }

    #[test]
    fn m_at_least_edge_count_only_prunes_k() {
        // Paper §5.2: "When m ≥ |E|, the algorithm picks each transition as
        // a block, and terminates."
        let s = figure2();
        let approx = approximate(&s, StaccatoParams::new(10, 3));
        assert_eq!(approx.edge_count(), 4);
        for (_, e) in approx.edges() {
            assert!(e.emissions.len() <= 3);
        }
        // Figure 2 math: with k=3 per edge and m=Max=4, the retained mass
        // per edge is the top-3 sum.
        check_structure(&approx).unwrap();
    }

    #[test]
    fn figure2_m2_k3_matches_paper_split() {
        // Paper Figure 2 (right): m=2, k=3 splits the chain into two chunks
        // of two edges; the left chunk keeps ab(0.30), aq(0.18), ax(0.12).
        let s = figure2();
        let approx = approximate(&s, StaccatoParams::new(2, 3));
        assert_eq!(approx.edge_count(), 2);
        // 3 strings per chunk → up to 9 emitted strings.
        let strings = approx.enumerate_strings(100);
        assert_eq!(strings.len(), 9);
        check_structure(&approx).unwrap();
        check_unique_paths(&approx).unwrap();
    }

    #[test]
    fn m1_equals_kmap() {
        // With one chunk the approximation must retain exactly the k-MAP
        // strings of the original.
        let s = figure2();
        let k = 5;
        let approx = approximate(&s, StaccatoParams::new(1, k));
        assert_eq!(approx.edge_count(), 1);
        let mut got: Vec<(String, f64)> = approx.enumerate_strings(100);
        got.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let expect = k_best_paths(&s, k);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.0, e.string);
            assert!((g.1 - e.prob).abs() < 1e-12);
        }
    }

    #[test]
    fn no_new_strings_ever() {
        let s = figure2();
        let original: std::collections::HashSet<String> = s
            .enumerate_strings(10_000)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        for (m, k) in [(1, 2), (2, 2), (3, 1), (2, 100), (4, 3)] {
            let approx = approximate(&s, StaccatoParams::new(m, k));
            for (t, _) in approx.enumerate_strings(10_000) {
                assert!(original.contains(&t), "({m},{k}) invented string {t:?}");
            }
        }
    }

    #[test]
    fn retained_mass_grows_with_k_and_m() {
        let s = figure2();
        let mass = |m, k| total_mass(&approximate(&s, StaccatoParams::new(m, k)));
        // More strings per chunk can only help.
        assert!(mass(2, 3) >= mass(2, 1) - 1e-12);
        assert!(mass(2, 100) >= mass(2, 3) - 1e-12);
        // With k saturated, more chunks retain more (km strings).
        assert!(mass(4, 3) >= mass(1, 3) - 1e-12);
        // Full parameters retain everything.
        assert!((mass(4, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branching_sfa_approximation_is_valid() {
        // Figure 1-style branch: approximation must stay structurally valid
        // and unique-path across parameter settings.
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        let s = b.build(n[0], n[5]).unwrap();
        for (m, k) in [(1, 4), (2, 4), (3, 2), (4, 2), (6, 3)] {
            let approx = approximate(&s, StaccatoParams::new(m, k));
            assert!(approx.edge_count() <= m.max(1), "({m},{k})");
            check_structure(&approx).unwrap();
            check_unique_paths(&approx).unwrap();
            assert!(total_mass(&approx) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn greedy_prefers_low_loss_merges() {
        // A chain where one edge pair is deterministic (no loss to merge)
        // and another is high-entropy: with k=1 and m=3, the greedy step
        // must merge in the deterministic region first.
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..5).map(|_| b.add_node()).collect();
        b.add_edge(n[0], n[1], vec![Emission::new("a", 1.0)]);
        b.add_edge(n[1], n[2], vec![Emission::new("b", 1.0)]);
        b.add_edge(
            n[2],
            n[3],
            vec![Emission::new("c", 0.5), Emission::new("r", 0.5)],
        );
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("d", 0.5), Emission::new("s", 0.5)],
        );
        let s = b.build(n[0], n[4]).unwrap();
        let approx = approximate(&s, StaccatoParams::new(3, 1));
        // Merging (0,1)+(1,2) loses nothing; the result keeps mass 0.25
        // (the two coin-flip edges pruned to 1 string each).
        assert!((total_mass(&approx) - 0.25).abs() < 1e-12);
        assert_eq!(approx.edge_count(), 3);
        let strings = approx.enumerate_strings(10);
        assert_eq!(strings.len(), 1);
        assert_eq!(strings[0].0, "abcd");
    }

    #[test]
    fn single_edge_sfa_is_a_fixed_point() {
        let mut b = SfaBuilder::new();
        let u = b.add_node();
        let v = b.add_node();
        b.add_edge(u, v, vec![Emission::new("x", 0.7), Emission::new("y", 0.3)]);
        let s = b.build(u, v).unwrap();
        let approx = approximate(&s, StaccatoParams::new(1, 1));
        assert_eq!(approx.edge_count(), 1);
        assert_eq!(approx.enumerate_strings(10), vec![("x".to_string(), 0.7)]);
    }

    #[test]
    #[should_panic(expected = "m (number of chunks) must be at least 1")]
    fn zero_m_panics() {
        StaccatoParams::new(0, 1);
    }
}
