//! Synthetic corpora styled after the paper's three evaluation datasets
//! (Table 2) plus the Google-Books-style scale-up corpus of §5.4.
//!
//! | dataset | paper source | paper size | query terms (Table 6) |
//! |---|---|---|---|
//! | CA | Hathi Trust scans of U.S. Congress acts | 38 pages, 1590 SFAs | Attorney, Commission, employment, President, United States, `Public Law (8\|9)\d`, `U.S.C. 2\d\d\d` |
//! | LT | JSTOR English literature book | 32 pages, 1211 SFAs | Brinkmann, Hitler, Jonathan, Kerouac, Third Reich, `19\d\d, \d\d`, `spontan(\x)*` |
//! | DB | self-scanned database papers | 16 pages, 627 SFAs | accuracy, confidence, database, lineage, Trio, `Sec(\x)*\d`, `\x\x\x\d\d` |
//!
//! The generators embed the query terms at per-line rates matching the
//! paper's ground-truth counts (e.g. 'Commission' ≈ 128/1590 lines in CA),
//! so scaled corpora keep proportional ground truth. Generation is fully
//! deterministic in `(kind, lines, seed)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which corpus to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusKind {
    /// Acts of the U.S. Congress (the paper's CA dataset).
    CongressActs,
    /// English literature (the paper's LT dataset).
    EnglishLit,
    /// Database papers (the paper's DB dataset).
    DbPapers,
    /// Generic scanned-books text for the §5.4 scalability study.
    Books,
}

impl CorpusKind {
    /// Short name used in tables.
    pub fn short_name(self) -> &'static str {
        match self {
            CorpusKind::CongressActs => "CA",
            CorpusKind::EnglishLit => "LT",
            CorpusKind::DbPapers => "DB",
            CorpusKind::Books => "GB",
        }
    }

    /// Line count matching Table 2 of the paper.
    pub fn paper_scale(self) -> usize {
        match self {
            CorpusKind::CongressActs => 1590,
            CorpusKind::EnglishLit => 1211,
            CorpusKind::DbPapers => 627,
            CorpusKind::Books => 3400, // the 1 GB row of Figure 10
        }
    }
}

/// One scanned document: a name and its clean text lines (the ground
/// truth the OCR channel corrupts).
#[derive(Debug, Clone)]
pub struct Document {
    /// Document name (the `DocName` column of the paper's MasterData).
    pub name: String,
    /// Clean text lines; one OCR SFA is produced per line.
    pub lines: Vec<String>,
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name, e.g. "CA".
    pub name: String,
    /// Which generator produced it.
    pub kind: CorpusKind,
    /// Documents in order.
    pub docs: Vec<Document>,
}

impl Dataset {
    /// Total number of lines (= number of SFAs, Table 2's column).
    pub fn total_lines(&self) -> usize {
        self.docs.iter().map(|d| d.lines.len()).sum()
    }

    /// Number of "pages" at the paper's ~42 lines per page.
    pub fn pages(&self) -> usize {
        self.total_lines().div_ceil(42)
    }

    /// Total clean-text bytes (Table 2's "Size as Text").
    pub fn text_bytes(&self) -> usize {
        self.docs
            .iter()
            .map(|d| d.lines.iter().map(|l| l.len() + 1).sum::<usize>())
            .sum()
    }

    /// Iterate `(doc index, line index within doc, line text)`.
    pub fn lines(&self) -> impl Iterator<Item = (usize, usize, &str)> {
        self.docs.iter().enumerate().flat_map(|(di, d)| {
            d.lines
                .iter()
                .enumerate()
                .map(move |(li, l)| (di, li, l.as_str()))
        })
    }
}

const LINES_PER_DOC: usize = 210;

struct Injection {
    rate: f64,
    build: fn(&mut StdRng) -> String,
}

fn word_bank(kind: CorpusKind) -> &'static [&'static str] {
    match kind {
        CorpusKind::CongressActs => &[
            "the",
            "act",
            "shall",
            "be",
            "amended",
            "by",
            "striking",
            "out",
            "section",
            "subsection",
            "paragraph",
            "clause",
            "and",
            "inserting",
            "in",
            "lieu",
            "thereof",
            "federal",
            "agency",
            "secretary",
            "provided",
            "that",
            "no",
            "funds",
            "authorized",
            "appropriated",
            "under",
            "this",
            "title",
            "may",
            "used",
            "for",
            "purposes",
            "of",
            "chapter",
            "code",
            "pursuant",
            "to",
            "regulations",
            "issued",
            "hereunder",
            "state",
            "governor",
            "report",
            "committee",
            "senate",
            "house",
            "representatives",
            "fiscal",
            "year",
            "term",
            "means",
            "any",
            "person",
            "entity",
            "program",
            "assistance",
        ],
        CorpusKind::EnglishLit => &[
            "the",
            "novel",
            "poem",
            "writes",
            "chapter",
            "poetry",
            "prose",
            "narrative",
            "author",
            "criticism",
            "literary",
            "war",
            "memory",
            "history",
            "german",
            "voice",
            "reader",
            "language",
            "image",
            "essay",
            "translation",
            "modern",
            "period",
            "his",
            "her",
            "work",
            "of",
            "and",
            "in",
            "a",
            "on",
            "with",
            "text",
            "style",
            "lyric",
            "postwar",
            "years",
            "berlin",
            "exile",
            "silence",
            "ruins",
            "generation",
            "motif",
            "irony",
            "stanza",
            "verse",
            "volume",
            "published",
            "early",
            "late",
            "influence",
        ],
        CorpusKind::DbPapers => &[
            "query",
            "table",
            "tuple",
            "relation",
            "join",
            "index",
            "transaction",
            "schema",
            "probabilistic",
            "data",
            "system",
            "algorithm",
            "the",
            "of",
            "and",
            "we",
            "in",
            "for",
            "results",
            "model",
            "approach",
            "section",
            "evaluation",
            "performance",
            "storage",
            "disk",
            "buffer",
            "page",
            "scan",
            "cost",
            "optimizer",
            "plan",
            "processing",
            "uncertain",
            "semantics",
            "tuples",
            "queries",
            "runtime",
            "figure",
            "experiments",
            "show",
            "that",
            "our",
            "baseline",
            "approximate",
            "using",
        ],
        CorpusKind::Books => &[
            "the", "and", "of", "to", "a", "in", "that", "he", "was", "it", "his", "her", "with",
            "as", "had", "for", "on", "at", "by", "but", "from", "they", "she", "which", "or",
            "we", "an", "there", "were", "their", "been", "has", "when", "who", "will", "more",
            "no", "if", "out", "so", "said", "what", "up", "its", "about", "into", "than", "them",
            "can", "only", "other", "time", "new", "some",
        ],
    }
}

fn digit(rng: &mut StdRng) -> char {
    char::from(b'0' + rng.random_range(0..10u8))
}

fn injections(kind: CorpusKind) -> Vec<Injection> {
    match kind {
        // Rates ≈ paper ground-truth count / 1590 lines (Table 6).
        CorpusKind::CongressActs => vec![
            Injection {
                rate: 0.040,
                build: |_| "Attorney General".into(),
            },
            Injection {
                rate: 0.080,
                build: |_| "Commission".into(),
            },
            Injection {
                rate: 0.046,
                build: |_| "employment".into(),
            },
            Injection {
                rate: 0.040,
                build: |_| "President".into(),
            },
            Injection {
                rate: 0.040,
                build: |_| "United States".into(),
            },
            Injection {
                rate: 0.042,
                build: |rng| {
                    format!(
                        "Public Law {}{}",
                        if rng.random_bool(0.5) { 8 } else { 9 },
                        digit(rng)
                    )
                },
            },
            Injection {
                rate: 0.040,
                build: |rng| format!("U.S.C. 2{}{}{}", digit(rng), digit(rng), digit(rng)),
            },
        ],
        // Rates ≈ count / 1211 (Table 6).
        CorpusKind::EnglishLit => vec![
            Injection {
                rate: 0.076,
                build: |_| "Brinkmann".into(),
            },
            Injection {
                rate: 0.040,
                build: |_| "Hitler".into(),
            },
            Injection {
                rate: 0.040,
                build: |_| "Jonathan".into(),
            },
            Injection {
                rate: 0.040,
                build: |_| "Kerouac".into(),
            },
            Injection {
                rate: 0.040,
                build: |_| "Third Reich".into(),
            },
            Injection {
                rate: 0.042,
                build: |rng| {
                    format!(
                        "19{}{}, {}{}",
                        digit(rng),
                        digit(rng),
                        digit(rng),
                        digit(rng)
                    )
                },
            },
            Injection {
                rate: 0.082,
                build: |rng| {
                    [
                        "spontaneous",
                        "spontaneously",
                        "spontaneity",
                        "spontaneous prose",
                    ][rng.random_range(0..4usize)]
                    .into()
                },
            },
        ],
        // Rates ≈ count / 627 (Table 6).
        CorpusKind::DbPapers => vec![
            Injection {
                rate: 0.104,
                build: |_| "accuracy".into(),
            },
            Injection {
                rate: 0.057,
                build: |_| "confidence".into(),
            },
            Injection {
                rate: 0.069,
                build: |_| "database".into(),
            },
            Injection {
                rate: 0.132,
                build: |_| "lineage".into(),
            },
            Injection {
                rate: 0.108,
                build: |_| "Trio".into(),
            },
            Injection {
                rate: 0.053,
                build: |rng| format!("Sec. {} {}", digit(rng), digit(rng)),
            },
            Injection {
                rate: 0.075,
                build: |rng| format!("ref{}{}", digit(rng), digit(rng)),
            },
        ],
        CorpusKind::Books => vec![
            Injection {
                rate: 0.040,
                build: |_| "President".into(),
            },
            Injection {
                rate: 0.040,
                build: |rng| {
                    format!(
                        "Public Law {}{}",
                        if rng.random_bool(0.5) { 8 } else { 9 },
                        digit(rng)
                    )
                },
            },
        ],
    }
}

/// Generate a dataset of `lines` clean text lines, deterministically in
/// `(kind, lines, seed)`.
pub fn generate(kind: CorpusKind, lines: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ (kind.short_name().len() as u64) << 32 ^ 0xDA7A);
    let bank = word_bank(kind);
    let injectors = injections(kind);
    let mut docs: Vec<Document> = Vec::new();
    let mut cur = Document {
        name: format!("{}_doc_000", kind.short_name()),
        lines: Vec::new(),
    };

    for _ in 0..lines {
        let target = rng.random_range(38..68usize);
        let mut line = String::with_capacity(target + 16);
        // Occasionally start with a section marker (gives regexes like
        // `\x\x\x\d\d` natural matches).
        if rng.random_bool(0.12) {
            line.push_str(&format!("({}{}) ", digit(&mut rng), digit(&mut rng)));
        }
        while line.len() < target {
            let w = bank[rng.random_range(0..bank.len())];
            if !line.is_empty() {
                line.push(' ');
            }
            // Sentence-case some words, add occasional punctuation.
            if rng.random_bool(0.06) {
                let mut cs = w.chars();
                if let Some(c0) = cs.next() {
                    line.push(c0.to_ascii_uppercase());
                    line.push_str(cs.as_str());
                }
            } else {
                line.push_str(w);
            }
            if rng.random_bool(0.08) {
                line.push(if rng.random_bool(0.7) { ',' } else { '.' });
            }
        }
        // Inject query terms at their calibrated rates.
        for inj in &injectors {
            if rng.random_bool(inj.rate) {
                let phrase = (inj.build)(&mut rng);
                // Insert at a word boundary.
                let spaces: Vec<usize> = line
                    .char_indices()
                    .filter(|&(_, c)| c == ' ')
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&pos) = spaces.get(
                    rng.random_range(0..spaces.len().max(1))
                        .min(spaces.len().saturating_sub(1)),
                ) {
                    line.insert_str(pos + 1, &format!("{phrase} "));
                } else {
                    line.push(' ');
                    line.push_str(&phrase);
                }
            }
        }
        cur.lines.push(line);
        if cur.lines.len() >= LINES_PER_DOC {
            let n = docs.len() + 1;
            docs.push(std::mem::replace(
                &mut cur,
                Document {
                    name: format!("{}_doc_{n:03}", kind.short_name()),
                    lines: Vec::new(),
                },
            ));
        }
    }
    if !cur.lines.is_empty() {
        docs.push(cur);
    }
    Dataset {
        name: kind.short_name().to_string(),
        kind,
        docs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(CorpusKind::CongressActs, 100, 7);
        let b = generate(CorpusKind::CongressActs, 100, 7);
        let la: Vec<_> = a.lines().map(|(_, _, l)| l.to_string()).collect();
        let lb: Vec<_> = b.lines().map(|(_, _, l)| l.to_string()).collect();
        assert_eq!(la, lb);
        let c = generate(CorpusKind::CongressActs, 100, 8);
        let lc: Vec<_> = c.lines().map(|(_, _, l)| l.to_string()).collect();
        assert_ne!(la, lc);
    }

    #[test]
    fn line_counts_and_doc_split() {
        let d = generate(CorpusKind::DbPapers, 500, 1);
        assert_eq!(d.total_lines(), 500);
        assert_eq!(d.docs.len(), 3); // 210 + 210 + 80
        assert!(d.pages() >= 10);
        assert!(d.text_bytes() > 500 * 38);
    }

    #[test]
    fn query_terms_appear_at_calibrated_rates() {
        let d = generate(CorpusKind::CongressActs, 1590, 42);
        let count = |needle: &str| d.lines().filter(|(_, _, l)| l.contains(needle)).count();
        // Rates are calibrated to keep ground truth statistically useful
        // at reduced scales (a 0.04 floor on the rarest paper terms).
        let commission = count("Commission");
        assert!(
            (60..=220).contains(&commission),
            "Commission lines: {commission}"
        );
        let president = count("President");
        assert!(
            (30..=110).contains(&president),
            "President lines: {president}"
        );
        let usc = count("U.S.C. 2");
        assert!((30..=110).contains(&usc), "U.S.C. lines: {usc}");
    }

    #[test]
    fn lt_terms_present() {
        let d = generate(CorpusKind::EnglishLit, 1211, 42);
        let count = |needle: &str| d.lines().filter(|(_, _, l)| l.contains(needle)).count();
        assert!(count("Brinkmann") > 30);
        assert!(count("spontan") > 40);
        assert!(count("Kerouac") >= 5);
    }

    #[test]
    fn lines_are_printable_ascii_and_reasonable_length() {
        for kind in [
            CorpusKind::CongressActs,
            CorpusKind::EnglishLit,
            CorpusKind::DbPapers,
            CorpusKind::Books,
        ] {
            let d = generate(kind, 200, 3);
            for (_, _, l) in d.lines() {
                assert!(
                    l.bytes().all(|b| (0x20..=0x7E).contains(&b)),
                    "{kind:?}: {l:?}"
                );
                assert!(
                    l.len() >= 20 && l.len() <= 120,
                    "{kind:?} length {}: {l:?}",
                    l.len()
                );
            }
        }
    }

    #[test]
    fn paper_scales_match_table2() {
        assert_eq!(CorpusKind::CongressActs.paper_scale(), 1590);
        assert_eq!(CorpusKind::EnglishLit.paper_scale(), 1211);
        assert_eq!(CorpusKind::DbPapers.paper_scale(), 627);
    }
}
