//! The OCR channel: clean text line → stochastic finite automaton.
//!
//! Mirrors the structure OCRopus emits (§2.2 of the paper): a
//! chain-with-bubbles DAG, one position per glyph, "a weighted arc for
//! every ASCII character" per position, and branching where segmentation
//! is uncertain — a space that may have been missed, or a glyph pair that
//! may have been read as one merged glyph.
//!
//! ## Unique path property, by construction
//!
//! Any two distinct labelled paths first diverge either (a) on the same
//! edge with different emissions — distinct single characters — or (b) on
//! different out-edges of the same node. The channel partitions the
//! alphabet between sibling branches (the "space" branch emits only
//! non-alphanumerics, the "skip" branch only alphanumerics; a merged-glyph
//! branch emits exactly the merged character, which is excluded from its
//! sibling), so case (b) also forces different characters. Either way the
//! emitted strings differ, so no string has two labelled paths. The tests
//! verify this against the exact checker in `staccato-sfa`.

use crate::confusion::{confusables, merge_of, ConfusionModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use staccato_sfa::{Emission, NodeId, Sfa, SfaBuilder};

/// Lowest printable ASCII byte.
const LO: u8 = 0x20;
/// Highest printable ASCII byte.
const HI: u8 = 0x7E;

/// Channel configuration. Defaults reproduce the paper's data shape
/// (full-alphabet arcs, occasional segmentation branches).
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Master seed; every line additionally mixes in its own id, so SFAs
    /// are reproducible independent of generation order.
    pub seed: u64,
    /// Glyph confusion model and error rates.
    pub confusion: ConfusionModel,
    /// Probability that a space position grows a missed-space branch.
    pub space_branch_rate: f64,
    /// Conditional weight of the "space was missed" branch.
    pub space_skip_weight: f64,
    /// Probability that a mergeable glyph pair grows a merged branch.
    pub merge_branch_rate: f64,
    /// Conditional weight of the merged-glyph branch.
    pub merge_weight: f64,
    /// Probability mass spread as a noise floor across the rest of the
    /// alphabet at each position.
    pub noise_floor: f64,
    /// Emit the full printable-ASCII alphabet per position (the paper's
    /// "weighted arc for every ASCII character", making one line ≈ 600 kB).
    /// `false` keeps only the plausible candidates — handy for fast tests.
    pub full_alphabet: bool,
    /// Fraction of lines that are badly degraded (smudges, skew). Real
    /// scan errors cluster by line, which is what keeps k-MAP from
    /// recovering multi-error lines while Staccato's per-chunk top-k can.
    pub bad_line_rate: f64,
    /// Error-rate multiplier on bad lines.
    pub bad_line_factor: f64,
    /// Error-rate multiplier on good lines.
    pub good_line_factor: f64,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            seed: 0xC0FFEE,
            confusion: ConfusionModel::default(),
            space_branch_rate: 0.25,
            space_skip_weight: 0.35,
            merge_branch_rate: 0.35,
            merge_weight: 0.30,
            noise_floor: 0.10,
            full_alphabet: true,
            bad_line_rate: 0.30,
            bad_line_factor: 3.2,
            good_line_factor: 0.40,
        }
    }
}

impl ChannelConfig {
    /// A lightweight configuration for unit tests: few emissions per edge,
    /// same structure.
    pub fn compact(seed: u64) -> Self {
        ChannelConfig {
            seed,
            full_alphabet: false,
            ..Default::default()
        }
    }
}

/// The OCR channel.
#[derive(Debug, Clone, Default)]
pub struct Channel {
    /// Configuration.
    pub config: ChannelConfig,
}

/// Restriction on which bytes an emission distribution may use — the
/// alphabet partition that guarantees unique paths at branch nodes.
#[derive(Clone, Copy, PartialEq)]
enum Support {
    /// Any printable byte.
    Full,
    /// Only non-alphanumeric printable bytes (space branch).
    NonAlnum,
    /// Only alphanumeric bytes (skip branch).
    Alnum,
    /// Any printable byte except this one (sibling of a merged branch).
    Excluding(u8),
}

impl Support {
    fn allows(self, b: u8) -> bool {
        let printable = (LO..=HI).contains(&b);
        printable
            && match self {
                Support::Full => true,
                Support::NonAlnum => !b.is_ascii_alphanumeric(),
                Support::Alnum => b.is_ascii_alphanumeric(),
                Support::Excluding(x) => b != x,
            }
    }
}

impl Channel {
    /// Create a channel with the given configuration.
    pub fn new(config: ChannelConfig) -> Channel {
        Channel { config }
    }

    /// Convert one clean text line into its OCR SFA. `line_id` salts the
    /// RNG so each line gets an independent, reproducible error pattern.
    /// Non-ASCII characters are replaced with `#`; empty lines become a
    /// single-space SFA.
    pub fn line_to_sfa(&self, line: &str, line_id: u64) -> Sfa {
        let mut bytes: Vec<u8> = line
            .bytes()
            .map(|b| if (LO..=HI).contains(&b) { b } else { b'#' })
            .collect();
        if bytes.is_empty() {
            bytes.push(b' ');
        }
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ line_id.wrapping_mul(0x9E3779B97F4A7C15));
        // Per-line degradation: errors cluster on bad scans.
        let quality = if rng.random_bool(self.config.bad_line_rate) {
            self.config.bad_line_factor
        } else {
            self.config.good_line_factor
        };

        let mut b = SfaBuilder::new();
        let start = b.add_node();
        let mut cur = start;
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();

            // Missed-space branch: " x" may have been read as "x".
            if c == b' '
                && next.is_some_and(|n| n.is_ascii_alphanumeric())
                && i + 1 < bytes.len()
                && rng.random_bool(self.config.space_branch_rate)
            {
                let n = next.expect("checked");
                let v = b.add_node();
                let w = b.add_node();
                let sw = self.config.space_skip_weight;
                // Branch A: the space was seen (non-alphanumeric support).
                b.add_edge(
                    cur,
                    w,
                    self.distribution(c, 1.0 - sw, Support::NonAlnum, quality, &mut rng),
                );
                b.add_edge(
                    w,
                    v,
                    self.distribution(n, 1.0, Support::Full, quality, &mut rng),
                );
                // Branch B: the space was missed (alphanumeric support).
                b.add_edge(
                    cur,
                    v,
                    self.distribution(n, sw, Support::Alnum, quality, &mut rng),
                );
                cur = v;
                i += 2;
                continue;
            }

            // Merged-glyph branch: "rn" may have been read as "m".
            if let (Some(n), true) = (next, i + 1 < bytes.len()) {
                if let Some(merged) = merge_of(c, n) {
                    if rng.random_bool(self.config.merge_branch_rate) {
                        let v = b.add_node();
                        let w = b.add_node();
                        let mw = self.config.merge_weight;
                        // Branch A: two glyphs, first-char support excludes
                        // the merged character.
                        b.add_edge(
                            cur,
                            w,
                            self.distribution(
                                c,
                                1.0 - mw,
                                Support::Excluding(merged),
                                quality,
                                &mut rng,
                            ),
                        );
                        b.add_edge(
                            w,
                            v,
                            self.distribution(n, 1.0, Support::Full, quality, &mut rng),
                        );
                        // Branch B: the merged glyph, alone on its edge.
                        b.add_edge(
                            cur,
                            v,
                            vec![Emission::new((merged as char).to_string(), mw)],
                        );
                        cur = v;
                        i += 2;
                        continue;
                    }
                }
            }

            // Plain chain position.
            let v = b.add_node();
            b.add_edge(
                cur,
                v,
                self.distribution(c, 1.0, Support::Full, quality, &mut rng),
            );
            cur = v;
            i += 1;
        }
        b.build(start, cur)
            .expect("channel output is structurally valid by construction")
    }

    /// Build the emission distribution for true character `c`, normalized
    /// to `weight`, restricted to `support`. `quality` scales the error
    /// rate (per-line degradation).
    fn distribution(
        &self,
        c: u8,
        weight: f64,
        support: Support,
        quality: f64,
        rng: &mut StdRng,
    ) -> Vec<Emission> {
        let conf = &self.config.confusion;
        let mut entries: Vec<(u8, f64)> = Vec::new();
        let mut used = [false; 128];
        let push = |entries: &mut Vec<(u8, f64)>, used: &mut [bool; 128], b: u8, p: f64| {
            if support.allows(b) && !used[b as usize] && p > 0.0 {
                used[b as usize] = true;
                entries.push((b, p));
            }
        };

        let truec = if support.allows(c) { c } else { b'#' };
        let err_rate = (conf.error_rate(c) * quality).clamp(0.0, 0.5);
        let erred = rng.random_bool(err_rate);
        if erred {
            // The MAP choice is wrong; several strong lookalikes also rank
            // above the true character, which survives with low but real
            // probability. The depth of the true character below the top
            // is what separates k-MAP (must fix every error in one global
            // top-k list) from Staccato (fixes each error inside its own
            // chunk) — the recall mechanism of §3.1.
            let mut wrong = conf.sample_error(c, rng);
            if !support.allows(wrong) || wrong == truec {
                wrong = if truec != b'#' { b'#' } else { b'@' };
            }
            push(&mut entries, &mut used, wrong, 0.26);
            // Up to 8 alternates above the truth: confusables, the case
            // flip, and alphabet neighbours.
            let mut alts: Vec<u8> = confusables(c).to_vec();
            if c.is_ascii_alphabetic() {
                alts.push(c ^ 0x20); // case flip
            }
            let base = if c.is_ascii_uppercase() { b'A' } else { b'a' };
            for delta in 1..6i16 {
                let shifted = (c as i16 - base as i16 + delta).rem_euclid(26) as u8 + base;
                alts.push(shifted);
            }
            alts.retain(|&b| b != truec && b != wrong);
            alts.truncate(8);
            for b in alts {
                push(&mut entries, &mut used, b, 0.055);
            }
            push(&mut entries, &mut used, truec, 0.04);
        } else {
            push(&mut entries, &mut used, truec, 0.82);
            // Confusables share a small slice (the "cheap flips" that pad
            // the global top-k list without changing query answers).
            let cands: Vec<u8> = confusables(c)
                .iter()
                .copied()
                .filter(|&b| support.allows(b) && !used[b as usize])
                .collect();
            if !cands.is_empty() {
                let share = 0.06 / cands.len() as f64;
                for b in cands {
                    push(&mut entries, &mut used, b, share);
                }
            }
        }
        // Noise floor across the rest of the (restricted) alphabet.
        if self.config.full_alphabet {
            let rest: Vec<u8> = (LO..=HI)
                .filter(|&b| support.allows(b) && !used[b as usize])
                .collect();
            if !rest.is_empty() {
                let share = self.config.noise_floor / rest.len() as f64;
                for b in rest {
                    push(&mut entries, &mut used, b, share);
                }
            }
        } else {
            // Compact mode: two extra random candidates stand in for the
            // floor so branching code paths still see >2 emissions.
            for _ in 0..2 {
                let b = rng.random_range(LO..=HI);
                push(&mut entries, &mut used, b, self.config.noise_floor / 2.0);
            }
        }

        // Normalize to `weight`.
        let total: f64 = entries.iter().map(|&(_, p)| p).sum();
        debug_assert!(total > 0.0, "empty emission distribution");
        entries
            .into_iter()
            .map(|(b, p)| Emission::new((b as char).to_string(), p / total * weight))
            .collect()
    }

    /// Convenience: SFAs for a whole document (one per line), salted by
    /// line number on top of `doc_id`.
    pub fn document_to_sfas(&self, lines: &[String], doc_id: u64) -> Vec<Sfa> {
        lines
            .iter()
            .enumerate()
            .map(|(i, l)| self.line_to_sfa(l, doc_id.wrapping_mul(1_000_003) + i as u64))
            .collect()
    }
}

/// Count the live branch nodes of an SFA (nodes with out-degree > 1) —
/// used by tests and dataset statistics.
pub fn branch_count(sfa: &Sfa) -> usize {
    sfa.nodes().filter(|&n| sfa.out_edges(n).len() > 1).count()
}

#[allow(dead_code)]
fn _node_id_type_check(n: NodeId) -> u32 {
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use staccato_sfa::{
        check_stochastic, check_structure, check_unique_paths, map_string, total_mass,
    };

    fn compact_channel(seed: u64) -> Channel {
        Channel::new(ChannelConfig::compact(seed))
    }

    #[test]
    fn sfa_is_structurally_valid_and_stochastic() {
        let ch = compact_channel(1);
        for (i, line) in ["President of the United States", "U.S.C. 2345", "a", ""]
            .iter()
            .enumerate()
        {
            let sfa = ch.line_to_sfa(line, i as u64);
            check_structure(&sfa).unwrap();
            check_stochastic(&sfa, 1e-9).unwrap();
            assert!((total_mass(&sfa) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unique_path_property_holds() {
        // Exercise many seeds so both gadget kinds appear; the exact checker
        // from staccato-sfa must pass every time.
        for seed in 0..30 {
            let ch = compact_channel(seed);
            let sfa = ch.line_to_sfa("modern corn kernels clog the mill", seed);
            check_unique_paths(&sfa).unwrap();
        }
    }

    #[test]
    fn full_alphabet_emits_entire_ascii_range() {
        let ch = Channel::new(ChannelConfig::default());
        let sfa = ch.line_to_sfa("ab", 0);
        // Each chain edge carries every printable character.
        let (_, e) = sfa.edges().next().unwrap();
        assert_eq!(e.emissions.len(), (HI - LO + 1) as usize);
    }

    #[test]
    fn true_string_always_survives_with_positive_probability() {
        // The defining property of probabilistic OCR: the truth stays in
        // the model even when the MAP is wrong (Figure 1's 'Ford' at 0.12).
        let ch = Channel::new(ChannelConfig::default());
        let line = "Ford Claims 2010";
        for id in 0..20 {
            let sfa = ch.line_to_sfa(line, id);
            let p_truth = staccato_sfa::string_probability(&sfa, line);
            assert!(p_truth > 0.0, "line id {id}: truth lost");
            let (map, p_map) = map_string(&sfa).unwrap();
            assert!(
                p_map >= p_truth - 1e-12,
                "MAP cannot be less likely than the truth"
            );
            let _ = map;
        }
    }

    #[test]
    fn map_error_rate_is_in_the_calibrated_band() {
        // Over many lines, the MAP string should differ from the truth for
        // a substantial minority of lines — the recall failure of §1.
        let ch = compact_channel(42);
        let line = "the President signed the act into law";
        let mut wrong = 0;
        let n = 200;
        for id in 0..n {
            let sfa = ch.line_to_sfa(line, id);
            if map_string(&sfa).unwrap().0 != line {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / n as f64;
        assert!(rate > 0.2 && rate < 0.98, "MAP-wrong rate {rate}");
    }

    #[test]
    fn reproducible_by_seed_and_line_id() {
        let ch = Channel::new(ChannelConfig::compact(7));
        let a = ch.line_to_sfa("identical", 5);
        let b = ch.line_to_sfa("identical", 5);
        assert_eq!(
            staccato_sfa::codec::encode(&a),
            staccato_sfa::codec::encode(&b)
        );
        let c = ch.line_to_sfa("identical", 6);
        assert_ne!(
            staccato_sfa::codec::encode(&a),
            staccato_sfa::codec::encode(&c)
        );
    }

    #[test]
    fn branching_appears_at_spaces_and_merges() {
        let ch = compact_channel(3);
        let mut branched = 0;
        for id in 0..50 {
            let sfa = ch.line_to_sfa("burn the corn in a barn", id);
            branched += branch_count(&sfa);
        }
        assert!(branched > 0, "no branching in 50 lines");
    }

    #[test]
    fn empty_line_becomes_single_space_sfa() {
        let ch = compact_channel(1);
        let sfa = ch.line_to_sfa("", 0);
        check_structure(&sfa).unwrap();
        assert!(sfa.edge_count() >= 1);
    }

    #[test]
    fn non_ascii_is_sanitized() {
        let ch = compact_channel(1);
        let sfa = ch.line_to_sfa("héllo", 0);
        check_structure(&sfa).unwrap();
        // é (2 bytes in UTF-8) becomes two '#' positions; the SFA still
        // validates and the MAP contains '#'.
        let (map, _) = map_string(&sfa).unwrap();
        assert!(map.len() >= 5);
    }

    #[test]
    fn document_to_sfas_salts_by_line() {
        let ch = compact_channel(9);
        let lines = vec!["same line".to_string(), "same line".to_string()];
        let sfas = ch.document_to_sfas(&lines, 1);
        assert_eq!(sfas.len(), 2);
        assert_ne!(
            staccato_sfa::codec::encode(&sfas[0]),
            staccato_sfa::codec::encode(&sfas[1]),
            "different lines must get independent error patterns"
        );
    }
}
