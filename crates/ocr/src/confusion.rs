//! The glyph-confusion model.
//!
//! OCR errors are not uniform: visually similar glyphs are confused far
//! more often than random ones, digits are harder than letters (serifs,
//! small counters), and some *pairs* of glyphs merge into a single one
//! (`rn` → `m`). The tables here encode the classic confusion sets from
//! the OCR literature; the channel samples from them.

use rand::rngs::StdRng;
use rand::RngExt;

/// Per-character-class error rates. Calibrated so MAP recall lands in the
/// paper's observed bands: keyword queries (letters only) around 0.7–0.9,
/// digit-heavy regex queries as low as ~0.3 (§1, §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRates {
    /// Probability that the MAP choice for a letter is wrong.
    pub letter: f64,
    /// Probability that the MAP choice for a digit is wrong.
    pub digit: f64,
    /// Probability that the MAP choice for punctuation/space is wrong.
    pub other: f64,
}

impl Default for ErrorRates {
    fn default() -> Self {
        // (1-0.022)^9 ≈ 0.82 for a 9-letter keyword; (1-0.09)^4 ≈ 0.69 per
        // 4-digit group — composed with surrounding text this yields the
        // paper's keyword ≈ 0.8 / regex ≈ 0.3–0.5 MAP recall bands.
        ErrorRates {
            letter: 0.022,
            digit: 0.09,
            other: 0.04,
        }
    }
}

/// The confusion model: confusable sets plus mergeable glyph pairs.
#[derive(Debug, Clone, Default)]
pub struct ConfusionModel {
    /// Error rates by character class.
    pub rates: ErrorRates,
}

/// Classic visually-confusable alternatives for a glyph. The first entries
/// are the strongest confusions.
pub fn confusables(c: u8) -> &'static [u8] {
    match c {
        b'o' => b"0ec",
        b'O' => b"0QD",
        b'0' => b"oOQ",
        b'l' => b"1Ii",
        b'1' => b"lI|",
        b'I' => b"l1|",
        b'i' => b"lj!",
        b'e' => b"co",
        b'c' => b"eo",
        b'a' => b"os",
        b's' => b"S5",
        b'S' => b"s5",
        b'5' => b"S6",
        b'B' => b"8R",
        b'8' => b"B3",
        b'3' => b"8B",
        b'2' => b"Zz",
        b'Z' => b"2z",
        b'6' => b"b5",
        b'b' => b"6h",
        b'9' => b"gq",
        b'g' => b"9q",
        b'q' => b"g9",
        b'4' => b"A9",
        b'7' => b"T1",
        b'u' => b"vn",
        b'v' => b"uy",
        b'n' => b"hu",
        b'h' => b"bn",
        b'f' => b"t{",
        b't' => b"f+",
        b'D' => b"O0",
        b'G' => b"C6",
        b'C' => b"GO",
        b'P' => b"FR",
        b'F' => b"PE",
        b'T' => b"7Y",
        b'E' => b"FB",
        b'R' => b"BP",
        b'.' => b",'",
        b',' => b".;",
        b';' => b",:",
        b':' => b";.",
        b'-' => b"_~",
        b' ' => b"_.",
        b'\'' => b"`,",
        _ => b"",
    }
}

/// Glyph pairs that OCR merges into a single glyph (and what they merge
/// into). Returns `Some(merged)` if `(a, b)` is a mergeable pair.
pub fn merge_of(a: u8, b: u8) -> Option<u8> {
    match (a, b) {
        (b'r', b'n') => Some(b'm'),
        (b'c', b'l') => Some(b'd'),
        (b'v', b'v') => Some(b'w'),
        (b'n', b'i') => Some(b'm'),
        (b'i', b'n') => Some(b'm'),
        (b'l', b'i') => Some(b'h'),
        (b'I', b'N') => Some(b'M'),
        _ => None,
    }
}

impl ConfusionModel {
    /// The error rate appropriate for `c`'s character class.
    pub fn error_rate(&self, c: u8) -> f64 {
        if c.is_ascii_alphabetic() {
            self.rates.letter
        } else if c.is_ascii_digit() {
            self.rates.digit
        } else {
            self.rates.other
        }
    }

    /// Sample an erroneous MAP choice for `c`: a confusable if one exists,
    /// otherwise a nearby random letter.
    pub fn sample_error(&self, c: u8, rng: &mut StdRng) -> u8 {
        let cands = confusables(c);
        if !cands.is_empty() {
            cands[rng.random_range(0..cands.len())]
        } else if c.is_ascii_lowercase() {
            // Drift to an adjacent letter of the alphabet.
            let delta: i16 = if rng.random_bool(0.5) { 1 } else { -1 };

            (c as i16 - b'a' as i16 + delta).rem_euclid(26) as u8 + b'a'
        } else {
            b'#'
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn digits_are_harder_than_letters() {
        let m = ConfusionModel::default();
        assert!(m.error_rate(b'5') > m.error_rate(b'a'));
        assert!(m.error_rate(b'.') > m.error_rate(b'a'));
    }

    #[test]
    fn classic_confusions_present() {
        assert!(confusables(b'o').contains(&b'0'));
        assert!(confusables(b'l').contains(&b'1'));
        assert!(confusables(b'0').contains(&b'o'));
        assert!(confusables(b'S').contains(&b'5'));
    }

    #[test]
    fn merge_pairs_match_ocr_lore() {
        assert_eq!(merge_of(b'r', b'n'), Some(b'm'));
        assert_eq!(merge_of(b'c', b'l'), Some(b'd'));
        assert_eq!(merge_of(b'a', b'b'), None);
    }

    #[test]
    fn sample_error_never_returns_input_confusable_case() {
        let m = ConfusionModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let e = m.sample_error(b'o', &mut rng);
            assert_ne!(e, b'o');
            assert!(confusables(b'o').contains(&e));
        }
    }

    #[test]
    fn sample_error_handles_unconfusable_chars() {
        let m = ConfusionModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let e = m.sample_error(b'z', &mut rng);
        assert!(e.is_ascii_lowercase());
        assert_ne!(e, b'z');
        assert_eq!(m.sample_error(b'@', &mut rng), b'#');
    }
}
