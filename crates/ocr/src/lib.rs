//! # staccato-ocr
//!
//! A stochastic OCR *channel simulator*, standing in for OCRopus plus the
//! paper's scanned datasets (Hathi Trust Congress acts, JSTOR literature,
//! self-scanned DB papers), none of which ship with the paper.
//!
//! What the Staccato experiments actually exercise is the **shape** of the
//! OCR output, not the pixels: a per-line stochastic finite automaton that
//! is a chain-with-bubbles DAG, carries a weighted arc for (almost) every
//! printable ASCII character per position, satisfies the unique path
//! property, and whose MAP string is wrong at a controlled per-character
//! rate while the true string survives with lower probability. This crate
//! reproduces exactly those properties with a seeded RNG:
//!
//! * [`confusion`] — the glyph-confusion model: which characters OCR
//!   mistakes for which (`o`↔`0`, `l`↔`1`↔`I`, `rn`↔`m`, …), with separate
//!   error rates for letters, digits, and punctuation;
//! * [`channel`] — clean line → SFA, with full-alphabet emission
//!   distributions and branching gadgets for segmentation uncertainty
//!   (missed spaces, merged glyph pairs), constructed so the unique path
//!   property provably holds (branch supports are disjoint on first
//!   characters);
//! * [`corpus`] — deterministic generators for the three evaluation
//!   datasets (CA/LT/DB) with the paper's query terms embedded at known
//!   rates, plus the Google-Books-style scale-up corpus of §5.4.

pub mod channel;
pub mod confusion;
pub mod corpus;

pub use channel::{Channel, ChannelConfig};
pub use confusion::ConfusionModel;
pub use corpus::{generate, CorpusKind, Dataset, Document};
