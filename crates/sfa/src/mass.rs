//! Sum-product computations: how much probability mass an SFA retains.
//!
//! `Pr_S[Emit(α)]` — the total mass of the strings an approximation keeps —
//! is the paper's quality objective (§3.2: retaining more mass minimizes
//! KL divergence). For an unpruned SFA the total is 1; k-MAP and Staccato
//! deliberately retain less.
//!
//! [`forward_mass`] and [`backward_mass`] also enable the O(1) incremental
//! candidate scoring used by the greedy algorithm ("a faster incremental
//! variant is actually used in Staccato", §3.1): the mass flowing through a
//! chunk with entry `l` and exit `g` factors as
//! `forward[l] · mass(chunk) · backward[g]`.

use crate::model::Sfa;

/// Forward mass per node slot: `forward[v]` is the total probability of all
/// labelled paths from the start node to `v`. Dead slots hold 0; the start
/// node holds 1.
pub fn forward_mass(sfa: &Sfa) -> Vec<f64> {
    let mut mass = vec![0.0f64; sfa.num_node_slots() as usize];
    mass[sfa.start() as usize] = 1.0;
    for v in sfa.topo_order() {
        let mv = mass[v as usize];
        if mv == 0.0 {
            continue;
        }
        for &eid in sfa.out_edges(v) {
            let edge = sfa.edge(eid).expect("live adjacency");
            mass[edge.to as usize] += mv * edge.mass();
        }
    }
    mass
}

/// Backward mass per node slot: `backward[v]` is the total probability of
/// all labelled paths from `v` to the final node. The final node holds 1.
pub fn backward_mass(sfa: &Sfa) -> Vec<f64> {
    let mut mass = vec![0.0f64; sfa.num_node_slots() as usize];
    mass[sfa.finish() as usize] = 1.0;
    let order = sfa.topo_order();
    for &v in order.iter().rev() {
        if v == sfa.finish() {
            continue;
        }
        let mut mv = 0.0;
        for &eid in sfa.out_edges(v) {
            let edge = sfa.edge(eid).expect("live adjacency");
            mv += edge.mass() * mass[edge.to as usize];
        }
        mass[v as usize] = mv;
    }
    mass
}

/// Total retained probability mass: `Pr_S[Emit(S)]`, the sum over all
/// emitted strings. 1.0 for a proper (unpruned) SFA.
pub fn total_mass(sfa: &Sfa) -> f64 {
    forward_mass(sfa)[sfa.finish() as usize]
}

/// Probability that the SFA emits exactly `target` (summed over labelled
/// paths; under the unique path property at most one contributes).
///
/// Dynamic program over `(node, consumed prefix length)` in topological
/// order — linear in emissions times the target length, so usable even on
/// full-alphabet OCR SFAs where enumeration is hopeless.
pub fn string_probability(sfa: &Sfa, target: &str) -> f64 {
    let slots = sfa.num_node_slots() as usize;
    let tlen = target.len();
    // dp[v] maps consumed-length -> probability. Lines are short, so a
    // dense per-node vector of length tlen+1 is the simplest fast layout.
    let mut dp: Vec<Vec<f64>> = vec![Vec::new(); slots];
    dp[sfa.start() as usize] = vec![0.0; tlen + 1];
    dp[sfa.start() as usize][0] = 1.0;
    for v in sfa.topo_order() {
        if dp[v as usize].is_empty() {
            continue;
        }
        let src = std::mem::take(&mut dp[v as usize]);
        for &eid in sfa.out_edges(v) {
            let edge = sfa.edge(eid).expect("live adjacency");
            for em in &edge.emissions {
                if em.prob <= 0.0 {
                    continue;
                }
                let llen = em.label.len();
                for off in 0..=tlen.saturating_sub(llen) {
                    let p = src[off];
                    if p > 0.0 && target[off..].starts_with(em.label.as_str()) {
                        let dst = &mut dp[edge.to as usize];
                        if dst.is_empty() {
                            *dst = vec![0.0; tlen + 1];
                        }
                        dst[off + llen] += p * em.prob;
                    }
                }
            }
        }
        if v == sfa.finish() {
            dp[v as usize] = src;
        }
    }
    dp[sfa.finish() as usize].get(tlen).copied().unwrap_or(0.0)
}

/// KL divergence between an approximation and the original model
/// (Appendix C of the paper).
///
/// When an approximation retains a subset `X` of the original strings and
/// renormalizes (the conditional distribution `µ|X`), the divergence is
/// `KL(µ|X ‖ µ) = −log Z` where `Z = Pr_µ[X]` is the retained mass —
/// and the conditional is the *optimal* choice among all distributions on
/// `X` (the log-sum inequality argument of Appendix C). So "retain more
/// mass" and "minimize KL divergence" are the same objective, which is
/// the formal basis for Proposition 3.1.
///
/// Returns `+∞` when nothing is retained.
pub fn kl_divergence(approximation: &Sfa) -> f64 {
    let z = total_mass(approximation);
    if z <= 0.0 {
        f64::INFINITY
    } else {
        // Guard against z marginally above 1 from float accumulation.
        (-z.min(1.0).ln()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Emission, Sfa, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn unpruned_sfa_has_unit_mass() {
        assert!((total_mass(&figure1()) - 1.0).abs() < 1e-12);
        assert!((total_mass(&Sfa::from_string("hello")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_mass_matches_enumeration() {
        let mut sfa = figure1();
        // Prune one emission to make the mass interesting.
        sfa.edge_mut(5).unwrap().emissions.pop(); // drop '3' (0.1)
        let enumerated: f64 = sfa.enumerate_strings(10_000).iter().map(|(_, p)| p).sum();
        assert!((total_mass(&sfa) - enumerated).abs() < 1e-12);
    }

    #[test]
    fn forward_start_is_one_backward_finish_is_one() {
        let sfa = figure1();
        let f = forward_mass(&sfa);
        let b = backward_mass(&sfa);
        assert_eq!(f[sfa.start() as usize], 1.0);
        assert_eq!(b[sfa.finish() as usize], 1.0);
        // Total mass computed from either direction agrees.
        assert!((f[sfa.finish() as usize] - b[sfa.start() as usize]).abs() < 1e-12);
    }

    #[test]
    fn mass_through_node_factorizes() {
        // For any node v, Σ_paths-through-v = forward[v] * backward[v];
        // for node 3 in Figure 1 the paths through it are exactly those
        // taking the ' ' branch.
        let sfa = figure1();
        let f = forward_mass(&sfa);
        let b = backward_mass(&sfa);
        let through3 = f[3] * b[3];
        let via_space: f64 = sfa
            .enumerate_strings(1000)
            .iter()
            .filter(|(s, _)| s.contains(' '))
            .map(|(_, p)| p)
            .sum();
        assert!((through3 - via_space).abs() < 1e-12);
    }

    #[test]
    fn string_probability_matches_enumeration() {
        let sfa = figure1();
        for (s, p) in sfa.enumerate_strings(1000) {
            assert!(
                (string_probability(&sfa, &s) - p).abs() < 1e-12,
                "string {s:?}: dp={} enum={}",
                string_probability(&sfa, &s),
                p
            );
        }
        assert_eq!(string_probability(&sfa, "nope"), 0.0);
        assert_eq!(string_probability(&sfa, ""), 0.0);
        assert_eq!(string_probability(&sfa, "F0 rdX"), 0.0);
    }

    #[test]
    fn string_probability_handles_multichar_labels() {
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let m = b.add_node();
        let f = b.add_node();
        b.add_edge(
            s,
            m,
            vec![Emission::new("ab", 0.5), Emission::new("a", 0.5)],
        );
        b.add_edge(
            m,
            f,
            vec![Emission::new("c", 0.6), Emission::new("bc", 0.4)],
        );
        let sfa = b.build(s, f).unwrap();
        // "abc" is emitted by two labelled paths: ab+c (0.3) and a+bc (0.2).
        assert!((string_probability(&sfa, "abc") - 0.5).abs() < 1e-12);
        assert!((string_probability(&sfa, "ac") - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pruned_mass_decreases() {
        let mut sfa = figure1();
        let before = total_mass(&sfa);
        sfa.edge_mut(0).unwrap().emissions.pop(); // drop 'T' (0.2)
        let after = total_mass(&sfa);
        assert!(after < before);
        assert!((after - 0.8).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_is_neg_log_retained_mass() {
        let mut sfa = figure1();
        assert_eq!(
            kl_divergence(&sfa),
            0.0,
            "unpruned model has zero divergence"
        );
        sfa.edge_mut(0).unwrap().emissions.pop(); // retain mass 0.8
        assert!((kl_divergence(&sfa) - (-(0.8f64).ln())).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_monotone_in_retained_mass() {
        // Appendix C's point: retaining more mass means a closer
        // approximation.
        let mut heavy = figure1();
        heavy.edge_mut(5).unwrap().emissions.pop(); // drop '3' (0.1): Z = 0.9
        let mut light = figure1();
        light.edge_mut(0).unwrap().emissions.pop(); // drop 'T' (0.2): Z = 0.8
        assert!(kl_divergence(&heavy) < kl_divergence(&light));
    }

    #[test]
    fn kl_divergence_of_empty_model_is_infinite() {
        let mut sfa = figure1();
        sfa.edge_mut(0).unwrap().emissions.clear();
        assert_eq!(kl_divergence(&sfa), f64::INFINITY);
    }
}
