//! # staccato-sfa
//!
//! The stochastic finite automaton (SFA) data model of Kumar & Ré,
//! *Probabilistic Management of OCR Data using an RDBMS* (VLDB 2011),
//! together with the inference primitives every other Staccato subsystem is
//! built on.
//!
//! An SFA is a labelled DAG `S = (V, E, s, f, δ)` with a distinguished start
//! node `s` and final node `f`. The transition function
//! `δ : E × Σ⁺ → [0, 1]` assigns probabilities to *emissions* on each edge;
//! in an unpruned SFA the probabilities on the out-edges of each non-final
//! node sum to one. Each labelled source-to-sink path emits the
//! concatenation of its labels with probability equal to the product of its
//! emission probabilities, so the SFA is a discrete distribution over
//! strings — exactly the object OCRopus produces for one scanned line.
//!
//! This crate provides:
//!
//! * [`Sfa`] — the generalized SFA (edges may emit multi-character strings,
//!   as required by the paper's `Collapse` operation), with cheap edge-level
//!   mutation so the approximation algorithms in `staccato-core` can rewrite
//!   graphs in place.
//! * [`viterbi`] — the MAP string (the most likely emission).
//! * [`kbest`] — the k highest-probability labelled paths (k-MAP).
//! * [`mass`] — sum-product total retained probability mass and forward node
//!   masses.
//! * [`codec`] — the compact binary blob format used when SFAs are stored as
//!   large objects inside the RDBMS.
//! * [`validate`] — structural and stochastic invariant checks, including the
//!   paper's *unique path property*.

pub mod codec;
pub mod error;
pub mod kbest;
pub mod mass;
pub mod model;
pub mod validate;
pub mod viterbi;

pub use codec::{ArenaEdge, ArenaEmission, DecodeArena};
pub use error::SfaError;
pub use kbest::{k_best_paths, KBestPath};
pub use mass::{backward_mass, forward_mass, kl_divergence, string_probability, total_mass};
pub use model::{Edge, EdgeId, Emission, NodeId, Sfa, SfaBuilder};
pub use validate::{check_stochastic, check_structure, check_unique_paths};
pub use viterbi::{map_path, map_string};
