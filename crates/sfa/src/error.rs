//! Error types for SFA construction, validation, and (de)serialization.

use std::fmt;

/// Errors raised by SFA construction, validation, and codec routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SfaError {
    /// A node id referenced a node that does not exist (or was removed).
    InvalidNode(u32),
    /// An edge id referenced an edge that does not exist (or was removed).
    InvalidEdge(u32),
    /// The graph contains a directed cycle; SFAs must be DAGs.
    CyclicGraph,
    /// A node other than the final node has no outgoing edges, or a node
    /// other than the start node has no incoming edges (it can emit nothing).
    Disconnected { node: u32 },
    /// An emission probability is outside `[0, 1]` or not finite.
    BadProbability { edge: u32, prob: f64 },
    /// An emission label is empty; δ is defined on `Σ⁺`.
    EmptyLabel { edge: u32 },
    /// The outgoing probability mass of a node deviates from 1 by more than
    /// the permitted tolerance (only reported by the *stochastic* check,
    /// which pruned SFAs are expected to fail).
    NotStochastic { node: u32, sum: f64 },
    /// Two distinct labelled paths emit the same string, violating the
    /// unique path property.
    AmbiguousString(String),
    /// The serialized blob did not start with the expected magic bytes.
    BadMagic,
    /// The serialized blob ended before the declared content.
    Truncated,
    /// A serialized label was not valid UTF-8.
    BadLabel,
    /// The blob declares more nodes/edges/emissions than its length could
    /// possibly hold — a corruption guard so decoding never over-allocates.
    CorruptCount { what: &'static str, count: u64 },
}

impl fmt::Display for SfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfaError::InvalidNode(n) => write!(f, "invalid node id {n}"),
            SfaError::InvalidEdge(e) => write!(f, "invalid edge id {e}"),
            SfaError::CyclicGraph => write!(f, "SFA graph contains a cycle"),
            SfaError::Disconnected { node } => {
                write!(f, "node {node} is not on any start-to-final path")
            }
            SfaError::BadProbability { edge, prob } => {
                write!(f, "edge {edge} has out-of-range probability {prob}")
            }
            SfaError::EmptyLabel { edge } => write!(f, "edge {edge} has an empty emission label"),
            SfaError::NotStochastic { node, sum } => {
                write!(f, "outgoing mass of node {node} is {sum}, expected 1")
            }
            SfaError::AmbiguousString(s) => {
                write!(f, "string {s:?} is emitted by more than one labelled path")
            }
            SfaError::BadMagic => write!(f, "blob does not look like a serialized SFA"),
            SfaError::Truncated => write!(f, "serialized SFA is truncated"),
            SfaError::BadLabel => write!(f, "serialized emission label is not valid UTF-8"),
            SfaError::CorruptCount { what, count } => {
                write!(f, "implausible {what} count {count} in serialized SFA")
            }
        }
    }
}

impl std::error::Error for SfaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let msgs = [
            SfaError::InvalidNode(3).to_string(),
            SfaError::CyclicGraph.to_string(),
            SfaError::NotStochastic { node: 1, sum: 0.5 }.to_string(),
            SfaError::Truncated.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SfaError::BadMagic);
    }
}
