//! Binary blob codec for SFAs.
//!
//! In the paper, FullSFA stores "the entire SFA as a BLOB inside the RDBMS"
//! and Staccato stores its chunk graph the same way (Table 5's `SFABlob` /
//! `GraphBlob` columns). This module defines that byte format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"SFA1"
//! u32    node count          u32 start    u32 finish
//! u32    edge count
//! per edge:
//!   u32 from   u32 to   u32 emission count
//!   per emission: u16 label byte length, label bytes (UTF-8), f64 prob
//! ```
//!
//! The SFA is compacted before encoding (tombstones never hit disk).
//! Decoding is hardened against corrupt blobs: every count is checked
//! against the remaining length before allocating, so a hostile or
//! truncated blob produces a typed error instead of an OOM or panic.

use crate::error::SfaError;
use crate::model::{Emission, Sfa};

const MAGIC: &[u8; 4] = b"SFA1";

/// Serialize an SFA into a fresh byte buffer.
pub fn encode(sfa: &Sfa) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_size(sfa));
    encode_into(sfa, &mut buf);
    buf
}

/// Serialize an SFA, appending to `buf`.
pub fn encode_into(sfa: &Sfa, buf: &mut Vec<u8>) {
    let c = sfa.compact();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(c.node_count() as u32).to_le_bytes());
    buf.extend_from_slice(&c.start().to_le_bytes());
    buf.extend_from_slice(&c.finish().to_le_bytes());
    buf.extend_from_slice(&(c.edge_count() as u32).to_le_bytes());
    for (_, e) in c.edges() {
        buf.extend_from_slice(&e.from.to_le_bytes());
        buf.extend_from_slice(&e.to.to_le_bytes());
        buf.extend_from_slice(&(e.emissions.len() as u32).to_le_bytes());
        for em in &e.emissions {
            let bytes = em.label.as_bytes();
            debug_assert!(bytes.len() <= u16::MAX as usize, "label too long to encode");
            buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            buf.extend_from_slice(bytes);
            buf.extend_from_slice(&em.prob.to_le_bytes());
        }
    }
}

/// Exact size in bytes [`encode`] will produce. This is the storage cost
/// that Table 1 and the dataset statistics (Table 2) account for.
pub fn encoded_size(sfa: &Sfa) -> usize {
    let mut size = 4 + 4 + 4 + 4 + 4; // magic + node count + start + finish + edge count
    for (_, e) in sfa.edges() {
        size += 4 + 4 + 4;
        for em in &e.emissions {
            size += 2 + em.label.len() + 8;
        }
    }
    size
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SfaError> {
        if self.buf.len() - self.pos < n {
            return Err(SfaError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SfaError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("len checked"),
        ))
    }

    /// One whole emission record — `u16` label length, label bytes, and
    /// the `f64` probability — under two bounds checks total. Decoding
    /// pays this per emission, so the fused read matters; both [`decode`]
    /// and [`decode_into_arena`] must use it so corrupt blobs keep
    /// producing identical errors.
    fn emission(&mut self) -> Result<(&'a [u8], f64), SfaError> {
        let rem = &self.buf[self.pos..];
        if rem.len() < 2 {
            return Err(SfaError::Truncated);
        }
        let len = u16::from_le_bytes([rem[0], rem[1]]) as usize;
        if rem.len() < 2 + len + 8 {
            return Err(SfaError::Truncated);
        }
        let label = &rem[2..2 + len];
        let prob = f64::from_le_bytes(rem[2 + len..2 + len + 8].try_into().expect("len checked"));
        self.pos += 2 + len + 8;
        Ok((label, prob))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Deserialize an SFA previously produced by [`encode`]. Structural
/// invariants are re-validated, so a decoded blob is as trustworthy as a
/// freshly built SFA.
pub fn decode(buf: &[u8]) -> Result<Sfa, SfaError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SfaError::BadMagic);
    }
    let nodes = r.u32()?;
    // Each live node needs at least one incident edge entry; a count far
    // beyond the blob size is corruption.
    if nodes as usize > buf.len() {
        return Err(SfaError::CorruptCount {
            what: "node",
            count: nodes as u64,
        });
    }
    let start = r.u32()?;
    let finish = r.u32()?;
    let edge_count = r.u32()?;
    if edge_count as u64 * 12 > r.remaining() as u64 {
        return Err(SfaError::CorruptCount {
            what: "edge",
            count: edge_count as u64,
        });
    }
    let mut b = crate::model::SfaBuilder::new();
    for _ in 0..nodes {
        b.add_node();
    }
    if start >= nodes || finish >= nodes {
        return Err(SfaError::InvalidNode(start.max(finish)));
    }
    for edge_idx in 0..edge_count {
        let from = r.u32()?;
        let to = r.u32()?;
        if from >= nodes || to >= nodes {
            return Err(SfaError::InvalidNode(from.max(to)));
        }
        let n_em = r.u32()?;
        if n_em as u64 * 10 > r.remaining() as u64 {
            return Err(SfaError::CorruptCount {
                what: "emission",
                count: n_em as u64,
            });
        }
        let mut emissions = Vec::with_capacity(n_em as usize);
        for _ in 0..n_em {
            let (label_bytes, prob) = r.emission()?;
            let label = std::str::from_utf8(label_bytes)
                .map_err(|_| SfaError::BadLabel)?
                .to_string();
            if label.is_empty() {
                return Err(SfaError::EmptyLabel { edge: edge_idx });
            }
            if !prob.is_finite() || !(0.0..=1.0 + 1e-9).contains(&prob) {
                return Err(SfaError::BadProbability {
                    edge: edge_idx,
                    prob,
                });
            }
            emissions.push(Emission { label, prob });
        }
        // Route through the checked Sfa::add_edge rather than the panicking
        // builder helper: blobs are untrusted input.
        if emissions.is_empty() {
            return Err(SfaError::CorruptCount {
                what: "emission",
                count: 0,
            });
        }
        b.try_add_edge(from, to, emissions)?;
    }
    b.build(start, finish)
}

impl crate::model::SfaBuilder {
    /// Checked edge insertion for untrusted inputs (used by the codec).
    pub fn try_add_edge(
        &mut self,
        from: u32,
        to: u32,
        emissions: Vec<Emission>,
    ) -> Result<u32, SfaError> {
        self.inner_mut().add_edge(from, to, emissions)
    }
}

/// One emission decoded into a [`DecodeArena`]: a byte range into the
/// source blob (the label is *not* copied) plus its probability.
#[derive(Debug, Clone, Copy)]
pub struct ArenaEmission {
    /// Start offset of the label bytes in the decoded blob.
    pub label_start: u32,
    /// End offset (exclusive) of the label bytes in the decoded blob.
    pub label_end: u32,
    /// Emission probability.
    pub prob: f64,
}

impl ArenaEmission {
    /// Byte range of the label within the blob this arena was decoded from.
    #[inline]
    pub fn label_range(&self) -> std::ops::Range<usize> {
        self.label_start as usize..self.label_end as usize
    }
}

/// One edge decoded into a [`DecodeArena`]: endpoints plus the index range
/// of its emissions in [`DecodeArena::emissions`].
#[derive(Debug, Clone, Copy)]
pub struct ArenaEdge {
    /// Source node.
    pub from: u32,
    /// Target node.
    pub to: u32,
    /// First emission index (into [`DecodeArena::emissions`]).
    pub em_start: u32,
    /// One past the last emission index.
    pub em_end: u32,
}

/// Reusable, allocation-free decode target for SFA blobs.
///
/// [`decode`] builds a fresh [`Sfa`] per blob: a `Vec` of nodes, a `Vec`
/// per adjacency list, and one `String` per emission label. On a filescan
/// that is the dominant allocation cost — millions of tiny `Vec`s and
/// `String`s that live for exactly one row. `DecodeArena` decodes the same
/// format into flat buffers that are cleared (not freed) between rows:
///
/// * emission labels stay **borrowed** — stored as byte ranges into the
///   source blob (the codec validated them as UTF-8);
/// * adjacency is CSR (one offsets array + one flat edge-index array)
///   instead of per-node `Vec`s;
/// * the topological order is computed into a reusable buffer with the
///   exact tie-breaking of [`Sfa::try_topo_order`] (zero in-degree nodes
///   ascending, then FIFO following edge-index order), so evaluation over
///   the arena visits nodes in the same order as over a decoded [`Sfa`].
///
/// Every validation [`decode`] performs is replicated — header and count
/// checks, UTF-8 and probability checks, and the structural invariants of
/// `SfaBuilder::build` (acyclicity, distinct start/finish with no
/// in-/out-edges respectively, full start→finish reachability) — with the
/// same [`SfaError`] values, so the arena path accepts exactly the blobs
/// the allocating path accepts. After an error the arena contents are
/// unspecified; the next decode resets it.
#[derive(Debug, Default)]
pub struct DecodeArena {
    nodes: u32,
    start: u32,
    finish: u32,
    edges: Vec<ArenaEdge>,
    emissions: Vec<ArenaEmission>,
    /// CSR offsets: out-edges of node `v` are
    /// `out_edges[out_off[v] as usize..out_off[v + 1] as usize]`.
    out_off: Vec<u32>,
    out_edges: Vec<u32>,
    /// Target node per CSR slot (`edges[out_edges[i]].to` precomputed), so
    /// the topo/reachability passes touch one flat array instead of
    /// chasing edge indices.
    out_to: Vec<u32>,
    topo: Vec<u32>,
    // Scratch reused across decodes.
    indeg: Vec<u32>,
    head: Vec<u32>,
    fwd: Vec<bool>,
    bwd: Vec<bool>,
}

impl DecodeArena {
    /// An empty arena. Buffers grow to fit the largest blob decoded and
    /// are retained between rows.
    pub fn new() -> DecodeArena {
        DecodeArena::default()
    }

    /// Node count of the last decoded blob.
    #[inline]
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Start node of the last decoded blob.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Finish node of the last decoded blob.
    #[inline]
    pub fn finish(&self) -> u32 {
        self.finish
    }

    /// All decoded edges, in blob order (which is also [`Sfa`] edge-id
    /// order for blobs produced by [`encode`]).
    #[inline]
    pub fn edges(&self) -> &[ArenaEdge] {
        &self.edges
    }

    /// All decoded emissions; index with an edge's `em_start..em_end`.
    #[inline]
    pub fn emissions(&self) -> &[ArenaEmission] {
        &self.emissions
    }

    /// Out-edge indexes of node `v`, ascending (same order as
    /// [`Sfa::out_edges`] on the decoded graph).
    #[inline]
    pub fn out_edges(&self, v: u32) -> &[u32] {
        let lo = self.out_off[v as usize] as usize;
        let hi = self.out_off[v as usize + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// Topological order of the decoded graph, identical to
    /// [`Sfa::try_topo_order`] on the equivalent decoded [`Sfa`].
    #[inline]
    pub fn topo(&self) -> &[u32] {
        &self.topo
    }
}

/// Deserialize an SFA blob into a reusable [`DecodeArena`], performing the
/// same validation as [`decode`] without per-row allocation. See
/// [`DecodeArena`] for the equivalence guarantees.
pub fn decode_into_arena(buf: &[u8], arena: &mut DecodeArena) -> Result<(), SfaError> {
    arena.edges.clear();
    arena.emissions.clear();
    arena.out_off.clear();
    arena.out_edges.clear();
    arena.topo.clear();
    arena.nodes = 0;

    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SfaError::BadMagic);
    }
    let nodes = r.u32()?;
    if nodes as usize > buf.len() {
        return Err(SfaError::CorruptCount {
            what: "node",
            count: nodes as u64,
        });
    }
    let start = r.u32()?;
    let finish = r.u32()?;
    let edge_count = r.u32()?;
    if edge_count as u64 * 12 > r.remaining() as u64 {
        return Err(SfaError::CorruptCount {
            what: "edge",
            count: edge_count as u64,
        });
    }
    if start >= nodes || finish >= nodes {
        return Err(SfaError::InvalidNode(start.max(finish)));
    }
    arena.nodes = nodes;
    arena.start = start;
    arena.finish = finish;

    for edge_idx in 0..edge_count {
        let from = r.u32()?;
        let to = r.u32()?;
        if from >= nodes || to >= nodes {
            return Err(SfaError::InvalidNode(from.max(to)));
        }
        let n_em = r.u32()?;
        if n_em as u64 * 10 > r.remaining() as u64 {
            return Err(SfaError::CorruptCount {
                what: "emission",
                count: n_em as u64,
            });
        }
        let em_start = arena.emissions.len() as u32;
        for _ in 0..n_em {
            let label_start = r.pos + 2;
            let (label_bytes, prob) = r.emission()?;
            // ASCII (the overwhelmingly common case for OCR text) is
            // valid UTF-8 by construction; labels are a few bytes, so a
            // branchless OR-fold beats the library `is_ascii` call and
            // only genuinely multi-byte labels pay the full validator.
            // Accepts exactly the labels `decode` accepts.
            let ascii = label_bytes.iter().fold(0u8, |acc, &b| acc | b) < 0x80;
            if !ascii && std::str::from_utf8(label_bytes).is_err() {
                return Err(SfaError::BadLabel);
            }
            if label_bytes.is_empty() {
                return Err(SfaError::EmptyLabel { edge: edge_idx });
            }
            if !prob.is_finite() || !(0.0..=1.0 + 1e-9).contains(&prob) {
                return Err(SfaError::BadProbability {
                    edge: edge_idx,
                    prob,
                });
            }
            arena.emissions.push(ArenaEmission {
                label_start: label_start as u32,
                label_end: (label_start + label_bytes.len()) as u32,
                prob,
            });
        }
        if n_em == 0 {
            return Err(SfaError::CorruptCount {
                what: "emission",
                count: 0,
            });
        }
        // `Sfa::add_edge` stably sorts emissions by decreasing probability;
        // replicate it so evaluation visits emissions in the same order.
        // Blobs written by `encode` are already in that order (the `Sfa`
        // sorted at construction), so check before paying the sort — the
        // probabilities were validated finite above, making `>=` a
        // faithful stand-in for the sort's comparator.
        let run = &mut arena.emissions[em_start as usize..];
        if !run.windows(2).all(|w| w[0].prob >= w[1].prob) {
            run.sort_by(|a, b| {
                b.prob
                    .partial_cmp(&a.prob)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        arena.edges.push(ArenaEdge {
            from,
            to,
            em_start,
            em_end: arena.emissions.len() as u32,
        });
    }

    validate_arena_structure(arena)
}

/// The structural checks of `SfaBuilder::build` (`check_structure`) over
/// the arena representation, producing identical errors: topological order
/// with `CyclicGraph` on a cycle, distinct start/finish, no in-edges into
/// start / out-edges out of finish, and full forward/backward reachability.
fn validate_arena_structure(arena: &mut DecodeArena) -> Result<(), SfaError> {
    let n = arena.nodes as usize;

    // CSR out-adjacency by counting sort over edges in index order: each
    // node's slice ends up ascending, matching `Sfa::out_edges` (adjacency
    // is pushed in edge-insertion order, which is blob order here).
    arena.out_off.clear();
    arena.out_off.resize(n + 1, 0);
    arena.indeg.clear();
    arena.indeg.resize(n, 0);
    for e in &arena.edges {
        arena.out_off[e.from as usize + 1] += 1;
        arena.indeg[e.to as usize] += 1;
    }
    for v in 0..n {
        arena.out_off[v + 1] += arena.out_off[v];
    }
    arena.out_edges.clear();
    arena.out_edges.resize(arena.edges.len(), 0);
    arena.out_to.clear();
    arena.out_to.resize(arena.edges.len(), 0);
    arena.head.clear();
    arena.head.extend_from_slice(&arena.out_off[..n]);
    for (idx, e) in arena.edges.iter().enumerate() {
        let slot = arena.head[e.from as usize] as usize;
        arena.out_edges[slot] = idx as u32;
        arena.out_to[slot] = e.to;
        arena.head[e.from as usize] += 1;
    }

    // "No edges into start" (checked after the cycle test below) is
    // exactly `indeg[start] == 0`; capture it before Kahn's consumes the
    // in-degree counts.
    let edges_into_start = arena.indeg[arena.start as usize] != 0;

    // Kahn's algorithm with `try_topo_order`'s exact tie-breaking: the
    // initial zero in-degree set ascending (0..n scan), then FIFO,
    // successors appended in out-edge index order.
    arena.topo.clear();
    for v in 0..n {
        if arena.indeg[v] == 0 {
            arena.topo.push(v as u32);
        }
    }
    let mut queue_head = 0usize;
    while queue_head < arena.topo.len() {
        let v = arena.topo[queue_head];
        queue_head += 1;
        let lo = arena.out_off[v as usize] as usize;
        let hi = arena.out_off[v as usize + 1] as usize;
        for &to in &arena.out_to[lo..hi] {
            arena.indeg[to as usize] -= 1;
            if arena.indeg[to as usize] == 0 {
                arena.topo.push(to);
            }
        }
    }
    if arena.topo.len() != n {
        return Err(SfaError::CyclicGraph);
    }

    if arena.start == arena.finish {
        return Err(SfaError::Disconnected { node: arena.start });
    }
    if edges_into_start {
        return Err(SfaError::Disconnected { node: arena.start });
    }
    if arena.out_off[arena.finish as usize] != arena.out_off[arena.finish as usize + 1] {
        return Err(SfaError::Disconnected { node: arena.finish });
    }

    // Forward reachability from start, backward from finish, over the topo
    // order — same traversal (and same first-failing node) as
    // `check_structure`. Graphs with at most 64 nodes (every Staccato
    // chunk row in practice) use u64 bitsets; larger ones fall back to the
    // byte-per-node buffers.
    if n <= 64 {
        let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut fwd: u64 = 1u64 << arena.start;
        for i in 0..n {
            let v = arena.topo[i] as usize;
            if fwd >> v & 1 == 0 {
                continue;
            }
            let (lo, hi) = (arena.out_off[v] as usize, arena.out_off[v + 1] as usize);
            for &to in &arena.out_to[lo..hi] {
                fwd |= 1u64 << to;
            }
        }
        let mut bwd: u64 = 1u64 << arena.finish;
        for i in (0..n).rev() {
            let v = arena.topo[i] as usize;
            let (lo, hi) = (arena.out_off[v] as usize, arena.out_off[v + 1] as usize);
            for &to in &arena.out_to[lo..hi] {
                bwd |= (bwd >> to & 1) << v;
            }
        }
        let live = fwd & bwd;
        if live != full {
            for &v in &arena.topo {
                if live >> v & 1 == 0 {
                    return Err(SfaError::Disconnected { node: v });
                }
            }
        }
        return Ok(());
    }
    arena.fwd.clear();
    arena.fwd.resize(n, false);
    arena.fwd[arena.start as usize] = true;
    for i in 0..arena.topo.len() {
        let v = arena.topo[i];
        if !arena.fwd[v as usize] {
            continue;
        }
        let (lo, hi) = (
            arena.out_off[v as usize] as usize,
            arena.out_off[v as usize + 1] as usize,
        );
        for &to in &arena.out_to[lo..hi] {
            arena.fwd[to as usize] = true;
        }
    }
    arena.bwd.clear();
    arena.bwd.resize(n, false);
    arena.bwd[arena.finish as usize] = true;
    for i in (0..arena.topo.len()).rev() {
        let v = arena.topo[i];
        let (lo, hi) = (
            arena.out_off[v as usize] as usize,
            arena.out_off[v as usize + 1] as usize,
        );
        for &to in &arena.out_to[lo..hi] {
            if arena.bwd[to as usize] {
                arena.bwd[v as usize] = true;
            }
        }
    }
    for &v in &arena.topo {
        if !arena.fwd[v as usize] || !arena.bwd[v as usize] {
            return Err(SfaError::Disconnected { node: v });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Emission, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_distribution() {
        let sfa = figure1();
        let blob = encode(&sfa);
        let back = decode(&blob).unwrap();
        let mut a = sfa.enumerate_strings(1000);
        let mut b = back.enumerate_strings(1000);
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a.len(), b.len());
        for ((sa, pa), (sb, pb)) in a.iter().zip(&b) {
            assert_eq!(sa, sb);
            assert!((pa - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn encoded_size_is_exact() {
        let sfa = figure1();
        assert_eq!(encode(&sfa).len(), encoded_size(&sfa));
    }

    #[test]
    fn multichar_labels_roundtrip() {
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(
            s,
            f,
            vec![Emission::new("Ford", 0.6), Emission::new("F0 rd", 0.4)],
        );
        let sfa = b.build(s, f).unwrap();
        let back = decode(&encode(&sfa)).unwrap();
        assert_eq!(back.edge(0).unwrap().emissions[0].label, "Ford");
        assert_eq!(back.edge(0).unwrap().emissions[1].label, "F0 rd");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE????????").unwrap_err(), SfaError::BadMagic);
    }

    #[test]
    fn truncation_at_every_boundary_rejected() {
        let blob = encode(&figure1());
        for cut in 0..blob.len() {
            let err = decode(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SfaError::Truncated
                        | SfaError::BadMagic
                        | SfaError::CorruptCount { .. }
                        | SfaError::Disconnected { .. }
                ),
                "cut at {cut} gave unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_edge_count_rejected_before_allocation() {
        let mut blob = encode(&figure1());
        // Overwrite the edge count (offset 16) with an absurd value.
        blob[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&blob).unwrap_err(),
            SfaError::CorruptCount { what: "edge", .. }
        ));
    }

    #[test]
    fn corrupt_probability_rejected() {
        let mut blob = encode(&figure1());
        let len = blob.len();
        // The last 8 bytes are the final emission's probability.
        blob[len - 8..].copy_from_slice(&42.0f64.to_le_bytes());
        assert!(matches!(
            decode(&blob).unwrap_err(),
            SfaError::BadProbability { .. }
        ));
    }

    #[test]
    fn invalid_utf8_label_rejected() {
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(s, f, vec![Emission::new("ab", 1.0)]);
        let sfa = b.build(s, f).unwrap();
        let mut blob = encode(&sfa);
        // Label bytes for "ab" sit right after the u16 length; stomp them.
        let pos = blob.len() - 8 - 2;
        blob[pos] = 0xFF;
        blob[pos + 1] = 0xFE;
        assert_eq!(decode(&blob).unwrap_err(), SfaError::BadLabel);
    }

    /// Assert the arena decode of `blob` is structurally identical to the
    /// allocating decode: same nodes/start/finish, same edges in the same
    /// order, same emissions (label bytes and probability) in the same
    /// order, same adjacency, same topological order.
    fn assert_arena_matches_decode(blob: &[u8]) {
        let sfa = decode(blob).unwrap();
        let mut arena = DecodeArena::new();
        decode_into_arena(blob, &mut arena).unwrap();
        assert_eq!(arena.node_count() as usize, sfa.node_count());
        assert_eq!(arena.start(), sfa.start());
        assert_eq!(arena.finish(), sfa.finish());
        assert_eq!(arena.edges().len(), sfa.edge_count());
        for (idx, (id, e)) in sfa.edges().enumerate() {
            assert_eq!(id as usize, idx);
            let ae = arena.edges()[idx];
            assert_eq!((ae.from, ae.to), (e.from, e.to));
            let ems = &arena.emissions()[ae.em_start as usize..ae.em_end as usize];
            assert_eq!(ems.len(), e.emissions.len());
            for (am, em) in ems.iter().zip(&e.emissions) {
                assert_eq!(&blob[am.label_range()], em.label.as_bytes());
                assert_eq!(am.prob.to_bits(), em.prob.to_bits());
            }
        }
        for v in 0..arena.node_count() {
            assert_eq!(arena.out_edges(v), sfa.out_edges(v));
        }
        assert_eq!(arena.topo(), &sfa.try_topo_order().unwrap()[..]);
    }

    #[test]
    fn arena_decode_matches_decode_on_valid_blobs() {
        assert_arena_matches_decode(&encode(&figure1()));
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(
            s,
            f,
            vec![Emission::new("Ford", 0.6), Emission::new("F0 rd", 0.4)],
        );
        assert_arena_matches_decode(&encode(&b.build(s, f).unwrap()));
    }

    #[test]
    fn arena_decode_matches_decode_on_corrupt_blobs() {
        let blob = encode(&figure1());
        let mut arena = DecodeArena::new();
        // Truncation at every boundary must produce the same typed error
        // as the allocating decode.
        for cut in 0..blob.len() {
            let expect = decode(&blob[..cut]).unwrap_err();
            let got = decode_into_arena(&blob[..cut], &mut arena).unwrap_err();
            assert_eq!(got, expect, "cut at {cut}");
        }
        // Single-byte stomps: both decoders must agree on Ok vs the same Err.
        for pos in 0..blob.len() {
            let mut bad = blob.clone();
            bad[pos] ^= 0x41;
            match (decode(&bad), decode_into_arena(&bad, &mut arena)) {
                (Ok(_), Ok(())) => assert_arena_matches_decode(&bad),
                (Err(a), Err(b)) => assert_eq!(a, b, "stomp at {pos}"),
                (a, b) => panic!("stomp at {pos}: decode={a:?} arena={b:?}"),
            }
        }
    }

    #[test]
    fn arena_is_reusable_across_rows() {
        let big = encode(&figure1());
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(s, f, vec![Emission::new("x", 1.0)]);
        let small = encode(&b.build(s, f).unwrap());
        let mut arena = DecodeArena::new();
        for blob in [&big, &small, &big, &small] {
            decode_into_arena(blob, &mut arena).unwrap();
            let sfa = decode(blob).unwrap();
            assert_eq!(arena.node_count() as usize, sfa.node_count());
            assert_eq!(arena.edges().len(), sfa.edge_count());
            assert_eq!(arena.topo(), &sfa.try_topo_order().unwrap()[..]);
        }
        // An error mid-stream leaves the arena usable for the next row.
        assert!(decode_into_arena(&big[..big.len() - 3], &mut arena).is_err());
        decode_into_arena(&small, &mut arena).unwrap();
        assert_eq!(arena.node_count(), 2);
    }

    #[test]
    fn tombstoned_graph_encodes_compacted() {
        let mut sfa = figure1();
        let incident: Vec<_> = sfa
            .edges()
            .filter(|(_, e)| e.from == 3 || e.to == 3)
            .map(|(id, _)| id)
            .collect();
        for id in incident {
            sfa.remove_edge(id).unwrap();
        }
        sfa.remove_node(3).unwrap();
        let back = decode(&encode(&sfa)).unwrap();
        assert_eq!(back.node_count(), 5);
        assert_eq!(back.num_node_slots(), 5);
    }
}
