//! Binary blob codec for SFAs.
//!
//! In the paper, FullSFA stores "the entire SFA as a BLOB inside the RDBMS"
//! and Staccato stores its chunk graph the same way (Table 5's `SFABlob` /
//! `GraphBlob` columns). This module defines that byte format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"SFA1"
//! u32    node count          u32 start    u32 finish
//! u32    edge count
//! per edge:
//!   u32 from   u32 to   u32 emission count
//!   per emission: u16 label byte length, label bytes (UTF-8), f64 prob
//! ```
//!
//! The SFA is compacted before encoding (tombstones never hit disk).
//! Decoding is hardened against corrupt blobs: every count is checked
//! against the remaining length before allocating, so a hostile or
//! truncated blob produces a typed error instead of an OOM or panic.

use crate::error::SfaError;
use crate::model::{Emission, Sfa};

const MAGIC: &[u8; 4] = b"SFA1";

/// Serialize an SFA into a fresh byte buffer.
pub fn encode(sfa: &Sfa) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_size(sfa));
    encode_into(sfa, &mut buf);
    buf
}

/// Serialize an SFA, appending to `buf`.
pub fn encode_into(sfa: &Sfa, buf: &mut Vec<u8>) {
    let c = sfa.compact();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(c.node_count() as u32).to_le_bytes());
    buf.extend_from_slice(&c.start().to_le_bytes());
    buf.extend_from_slice(&c.finish().to_le_bytes());
    buf.extend_from_slice(&(c.edge_count() as u32).to_le_bytes());
    for (_, e) in c.edges() {
        buf.extend_from_slice(&e.from.to_le_bytes());
        buf.extend_from_slice(&e.to.to_le_bytes());
        buf.extend_from_slice(&(e.emissions.len() as u32).to_le_bytes());
        for em in &e.emissions {
            let bytes = em.label.as_bytes();
            debug_assert!(bytes.len() <= u16::MAX as usize, "label too long to encode");
            buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
            buf.extend_from_slice(bytes);
            buf.extend_from_slice(&em.prob.to_le_bytes());
        }
    }
}

/// Exact size in bytes [`encode`] will produce. This is the storage cost
/// that Table 1 and the dataset statistics (Table 2) account for.
pub fn encoded_size(sfa: &Sfa) -> usize {
    let mut size = 4 + 4 + 4 + 4 + 4; // magic + node count + start + finish + edge count
    for (_, e) in sfa.edges() {
        size += 4 + 4 + 4;
        for em in &e.emissions {
            size += 2 + em.label.len() + 8;
        }
    }
    size
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SfaError> {
        if self.buf.len() - self.pos < n {
            return Err(SfaError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, SfaError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("len checked"),
        ))
    }

    fn u32(&mut self) -> Result<u32, SfaError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("len checked"),
        ))
    }

    fn f64(&mut self) -> Result<f64, SfaError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("len checked"),
        ))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Deserialize an SFA previously produced by [`encode`]. Structural
/// invariants are re-validated, so a decoded blob is as trustworthy as a
/// freshly built SFA.
pub fn decode(buf: &[u8]) -> Result<Sfa, SfaError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SfaError::BadMagic);
    }
    let nodes = r.u32()?;
    // Each live node needs at least one incident edge entry; a count far
    // beyond the blob size is corruption.
    if nodes as usize > buf.len() {
        return Err(SfaError::CorruptCount {
            what: "node",
            count: nodes as u64,
        });
    }
    let start = r.u32()?;
    let finish = r.u32()?;
    let edge_count = r.u32()?;
    if edge_count as u64 * 12 > r.remaining() as u64 {
        return Err(SfaError::CorruptCount {
            what: "edge",
            count: edge_count as u64,
        });
    }
    let mut b = crate::model::SfaBuilder::new();
    for _ in 0..nodes {
        b.add_node();
    }
    if start >= nodes || finish >= nodes {
        return Err(SfaError::InvalidNode(start.max(finish)));
    }
    for edge_idx in 0..edge_count {
        let from = r.u32()?;
        let to = r.u32()?;
        if from >= nodes || to >= nodes {
            return Err(SfaError::InvalidNode(from.max(to)));
        }
        let n_em = r.u32()?;
        if n_em as u64 * 10 > r.remaining() as u64 {
            return Err(SfaError::CorruptCount {
                what: "emission",
                count: n_em as u64,
            });
        }
        let mut emissions = Vec::with_capacity(n_em as usize);
        for _ in 0..n_em {
            let len = r.u16()? as usize;
            let label_bytes = r.take(len)?;
            let label = std::str::from_utf8(label_bytes)
                .map_err(|_| SfaError::BadLabel)?
                .to_string();
            let prob = r.f64()?;
            if label.is_empty() {
                return Err(SfaError::EmptyLabel { edge: edge_idx });
            }
            if !prob.is_finite() || !(0.0..=1.0 + 1e-9).contains(&prob) {
                return Err(SfaError::BadProbability {
                    edge: edge_idx,
                    prob,
                });
            }
            emissions.push(Emission { label, prob });
        }
        // Route through the checked Sfa::add_edge rather than the panicking
        // builder helper: blobs are untrusted input.
        if emissions.is_empty() {
            return Err(SfaError::CorruptCount {
                what: "emission",
                count: 0,
            });
        }
        b.try_add_edge(from, to, emissions)?;
    }
    b.build(start, finish)
}

impl crate::model::SfaBuilder {
    /// Checked edge insertion for untrusted inputs (used by the codec).
    pub fn try_add_edge(
        &mut self,
        from: u32,
        to: u32,
        emissions: Vec<Emission>,
    ) -> Result<u32, SfaError> {
        self.inner_mut().add_edge(from, to, emissions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Emission, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_distribution() {
        let sfa = figure1();
        let blob = encode(&sfa);
        let back = decode(&blob).unwrap();
        let mut a = sfa.enumerate_strings(1000);
        let mut b = back.enumerate_strings(1000);
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a.len(), b.len());
        for ((sa, pa), (sb, pb)) in a.iter().zip(&b) {
            assert_eq!(sa, sb);
            assert!((pa - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn encoded_size_is_exact() {
        let sfa = figure1();
        assert_eq!(encode(&sfa).len(), encoded_size(&sfa));
    }

    #[test]
    fn multichar_labels_roundtrip() {
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(
            s,
            f,
            vec![Emission::new("Ford", 0.6), Emission::new("F0 rd", 0.4)],
        );
        let sfa = b.build(s, f).unwrap();
        let back = decode(&encode(&sfa)).unwrap();
        assert_eq!(back.edge(0).unwrap().emissions[0].label, "Ford");
        assert_eq!(back.edge(0).unwrap().emissions[1].label, "F0 rd");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE????????").unwrap_err(), SfaError::BadMagic);
    }

    #[test]
    fn truncation_at_every_boundary_rejected() {
        let blob = encode(&figure1());
        for cut in 0..blob.len() {
            let err = decode(&blob[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SfaError::Truncated
                        | SfaError::BadMagic
                        | SfaError::CorruptCount { .. }
                        | SfaError::Disconnected { .. }
                ),
                "cut at {cut} gave unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_edge_count_rejected_before_allocation() {
        let mut blob = encode(&figure1());
        // Overwrite the edge count (offset 16) with an absurd value.
        blob[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&blob).unwrap_err(),
            SfaError::CorruptCount { what: "edge", .. }
        ));
    }

    #[test]
    fn corrupt_probability_rejected() {
        let mut blob = encode(&figure1());
        let len = blob.len();
        // The last 8 bytes are the final emission's probability.
        blob[len - 8..].copy_from_slice(&42.0f64.to_le_bytes());
        assert!(matches!(
            decode(&blob).unwrap_err(),
            SfaError::BadProbability { .. }
        ));
    }

    #[test]
    fn invalid_utf8_label_rejected() {
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(s, f, vec![Emission::new("ab", 1.0)]);
        let sfa = b.build(s, f).unwrap();
        let mut blob = encode(&sfa);
        // Label bytes for "ab" sit right after the u16 length; stomp them.
        let pos = blob.len() - 8 - 2;
        blob[pos] = 0xFF;
        blob[pos + 1] = 0xFE;
        assert_eq!(decode(&blob).unwrap_err(), SfaError::BadLabel);
    }

    #[test]
    fn tombstoned_graph_encodes_compacted() {
        let mut sfa = figure1();
        let incident: Vec<_> = sfa
            .edges()
            .filter(|(_, e)| e.from == 3 || e.to == 3)
            .map(|(id, _)| id)
            .collect();
        for id in incident {
            sfa.remove_edge(id).unwrap();
        }
        sfa.remove_node(3).unwrap();
        let back = decode(&encode(&sfa)).unwrap();
        assert_eq!(back.node_count(), 5);
        assert_eq!(back.num_node_slots(), 5);
    }
}
