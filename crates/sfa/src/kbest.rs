//! The k highest-probability labelled paths of an SFA (k-MAP, §3).
//!
//! The paper computes top-k strings with "an incremental variant by Yen et
//! al"; on a DAG the equivalent (and simpler) formulation is a dynamic
//! program that carries the k best partial paths per node in topological
//! order — any prefix of a globally top-k path is a top-k path to its
//! intermediate node, because extending a path multiplies its probability
//! by a factor independent of the prefix.
//!
//! Under the unique path property the k best *paths* are the k most likely
//! *strings*, which is what k-MAP stores.

use crate::model::{EdgeId, NodeId, Sfa};

/// One of the k best labelled paths.
#[derive(Debug, Clone, PartialEq)]
pub struct KBestPath {
    /// The emitted string (concatenated labels).
    pub string: String,
    /// Path probability (product of emission probabilities).
    pub prob: f64,
    /// The labelled path itself: `(edge id, emission index)` per hop.
    pub edges: Vec<(EdgeId, u32)>,
}

#[derive(Clone, Copy)]
struct Cand {
    logp: f64,
    /// Predecessor node, slot in that node's candidate list, and the
    /// transition taken. `edge == u32::MAX` marks the start sentinel.
    from: NodeId,
    slot: u32,
    edge: EdgeId,
    emission: u32,
}

/// Compute the `k` most likely labelled paths, most likely first.
/// Returns fewer than `k` if the SFA has fewer positive-probability paths.
/// Ties are broken deterministically by discovery order (the paper breaks
/// ties arbitrarily).
pub fn k_best_paths(sfa: &Sfa, k: usize) -> Vec<KBestPath> {
    if k == 0 {
        return Vec::new();
    }
    let slots = sfa.num_node_slots() as usize;
    let mut cands: Vec<Vec<Cand>> = vec![Vec::new(); slots];
    cands[sfa.start() as usize].push(Cand {
        logp: 0.0,
        from: sfa.start(),
        slot: 0,
        edge: u32::MAX,
        emission: 0,
    });

    let order = sfa.topo_order();
    let mut scratch: Vec<Cand> = Vec::new();
    for &v in &order {
        if v == sfa.start() {
            continue;
        }
        scratch.clear();
        for &eid in sfa.in_edges(v) {
            let edge = sfa.edge(eid).expect("live adjacency");
            let from_cands = &cands[edge.from as usize];
            for (i, em) in edge.emissions.iter().enumerate() {
                if em.prob <= 0.0 {
                    continue;
                }
                let lp = em.prob.ln();
                for (slot, c) in from_cands.iter().enumerate() {
                    scratch.push(Cand {
                        logp: c.logp + lp,
                        from: edge.from,
                        slot: slot as u32,
                        edge: eid,
                        emission: i as u32,
                    });
                }
            }
        }
        // Stable sort keeps discovery order among ties → deterministic.
        scratch.sort_by(|a, b| {
            b.logp
                .partial_cmp(&a.logp)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        scratch.truncate(k);
        cands[v as usize] = scratch.clone();
    }

    let fin = &cands[sfa.finish() as usize];
    let mut out = Vec::with_capacity(fin.len());
    for c in fin {
        // Walk backpointers.
        let mut edges_rev: Vec<(EdgeId, u32)> = Vec::new();
        let mut cur = *c;
        while cur.edge != u32::MAX {
            edges_rev.push((cur.edge, cur.emission));
            cur = cands[cur.from as usize][cur.slot as usize];
        }
        edges_rev.reverse();
        let mut string = String::new();
        for &(eid, i) in &edges_rev {
            string.push_str(&sfa.edge(eid).expect("live edge").emissions[i as usize].label);
        }
        out.push(KBestPath {
            string,
            prob: c.logp.exp(),
            edges: edges_rev,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Emission, Sfa, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    /// The Figure 2 SFA: a 4-hop chain with 3 emissions per edge, used to
    /// illustrate k-MAP vs Staccato.
    fn figure2() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![
                Emission::new("a", 0.6),
                Emission::new("p", 0.2),
                Emission::new("w", 0.1),
            ],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![
                Emission::new("b", 0.5),
                Emission::new("q", 0.3),
                Emission::new("x", 0.2),
            ],
        );
        b.add_edge(
            n[2],
            n[3],
            vec![
                Emission::new("c", 0.4),
                Emission::new("r", 0.3),
                Emission::new("y", 0.1),
            ],
        );
        b.add_edge(
            n[3],
            n[4],
            vec![
                Emission::new("d", 0.7),
                Emission::new("s", 0.2),
                Emission::new("z", 0.1),
            ],
        );
        b.build(n[0], n[4]).unwrap()
    }

    #[test]
    fn figure2_top3_matches_paper() {
        // Paper Figure 2: k-MAP with k=3 keeps abcd (0.0840), abrd (0.0630),
        // aqcd (0.0504).
        let top = k_best_paths(&figure2(), 3);
        let got: Vec<(&str, f64)> = top.iter().map(|p| (p.string.as_str(), p.prob)).collect();
        assert_eq!(got[0].0, "abcd");
        assert!((got[0].1 - 0.0840).abs() < 1e-9);
        assert_eq!(got[1].0, "abrd");
        assert!((got[1].1 - 0.0630).abs() < 1e-9);
        assert_eq!(got[2].0, "aqcd");
        assert!((got[2].1 - 0.0504).abs() < 1e-9);
    }

    #[test]
    fn k1_equals_viterbi() {
        let sfa = figure1();
        let top = k_best_paths(&sfa, 1);
        let map = crate::viterbi::map_path(&sfa).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].string, map.string);
        assert!((top[0].prob - map.prob).abs() < 1e-12);
    }

    #[test]
    fn kbest_matches_exhaustive_enumeration() {
        let sfa = figure1();
        let mut all = sfa.enumerate_strings(1000);
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top = k_best_paths(&sfa, 5);
        for (i, p) in top.iter().enumerate() {
            assert!(
                (p.prob - all[i].1).abs() < 1e-9,
                "rank {i}: {} vs {}",
                p.prob,
                all[i].1
            );
        }
    }

    #[test]
    fn kbest_is_sorted_and_distinct() {
        let top = k_best_paths(&figure1(), 100);
        for w in top.windows(2) {
            assert!(w[0].prob >= w[1].prob - 1e-12);
        }
        let mut paths: Vec<_> = top.iter().map(|p| p.edges.clone()).collect();
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), top.len(), "paths must be pairwise distinct");
    }

    #[test]
    fn k_larger_than_path_count_returns_all() {
        // Figure 1 has 2*2*(1*2 + 1)*2 = 24 source-to-sink labelled paths.
        let top = k_best_paths(&figure1(), 1000);
        assert_eq!(top.len(), 24);
        let total: f64 = top.iter().map(|p| p.prob).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "all paths account for all mass, got {total}"
        );
    }

    #[test]
    fn k0_returns_empty() {
        assert!(k_best_paths(&figure1(), 0).is_empty());
    }

    #[test]
    fn strings_unique_under_unique_path_property() {
        let top = k_best_paths(&figure1(), 1000);
        let mut strings: Vec<_> = top.iter().map(|p| p.string.clone()).collect();
        strings.sort();
        strings.dedup();
        assert_eq!(strings.len(), 24);
    }
}
