//! The generalized stochastic finite automaton.
//!
//! The model follows §2.2 and §3.1 of the paper: a DAG with one start and
//! one final node whose edges carry *emission lists* — pairs of a non-empty
//! label in `Σ⁺` and a probability. OCRopus-style SFAs emit single
//! characters on every edge; the generalized form (labels of length > 1)
//! arises when Staccato's `Collapse` replaces a sub-SFA with one edge.
//!
//! The structure supports cheap in-place edge/node removal (tombstones) so
//! the greedy approximation in `staccato-core` can apply hundreds of merges
//! without reallocating the graph, and a [`Sfa::compact`] operation that
//! renumbers everything densely for storage.

use crate::error::SfaError;

/// Index of a node within an [`Sfa`]. Dense, `u32` to keep hot structures
/// small (see the type-size guidance in the Rust perf book).
pub type NodeId = u32;

/// Index of an edge within an [`Sfa`].
pub type EdgeId = u32;

/// One entry of the transition function δ: a label in `Σ⁺` with its
/// conditional probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// The emitted string; never empty.
    pub label: String,
    /// Conditional probability of taking this edge *and* emitting `label`,
    /// given the source node. In `[0, 1]`.
    pub prob: f64,
}

impl Emission {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, prob: f64) -> Self {
        Emission {
            label: label.into(),
            prob,
        }
    }
}

/// A directed edge with its emission list, kept sorted by decreasing
/// probability (ties keep insertion order).
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Emissions, sorted by decreasing probability.
    pub emissions: Vec<Emission>,
}

impl Edge {
    /// Total probability mass carried by this edge (sum over emissions).
    pub fn mass(&self) -> f64 {
        self.emissions.iter().map(|e| e.prob).sum()
    }
}

fn sort_emissions(emissions: &mut [Emission]) {
    emissions.sort_by(|a, b| {
        b.prob
            .partial_cmp(&a.prob)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// A generalized stochastic finite automaton.
///
/// Invariants maintained by the construction API ([`SfaBuilder`]) and
/// checked by [`crate::validate`]:
///
/// * the graph is a DAG;
/// * `start` has no in-edges, `finish` has no out-edges;
/// * every live node lies on some `start → finish` path;
/// * every emission has a non-empty label and a probability in `[0, 1]`.
///
/// Mutation methods ([`Sfa::remove_edge`], [`Sfa::add_edge`], …) are
/// tombstone-based and do **not** re-validate; they exist for the
/// approximation algorithms, which restore the invariants before handing
/// graphs back out. [`Sfa::compact`] drops tombstones and renumbers.
#[derive(Debug, Clone)]
pub struct Sfa {
    start: NodeId,
    finish: NodeId,
    node_alive: Vec<bool>,
    edges: Vec<Option<Edge>>,
    out: Vec<Vec<EdgeId>>,
    inn: Vec<Vec<EdgeId>>,
    live_edges: usize,
}

impl Sfa {
    /// The distinguished start node `s`.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The distinguished final node `f`.
    pub fn finish(&self) -> NodeId {
        self.finish
    }

    /// Number of node slots ever allocated (including tombstoned ones).
    /// Valid `NodeId`s are `0..num_node_slots()`.
    pub fn num_node_slots(&self) -> u32 {
        self.node_alive.len() as u32
    }

    /// Number of edge slots ever allocated (including tombstoned ones).
    pub fn num_edge_slots(&self) -> u32 {
        self.edges.len() as u32
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.node_alive.iter().filter(|&&a| a).count()
    }

    /// Number of live edges. This is the `|E|` that Algorithm 2's stopping
    /// condition (`|E| ≤ m`) refers to.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Whether `n` is a live node.
    pub fn is_node_alive(&self, n: NodeId) -> bool {
        self.node_alive.get(n as usize).copied().unwrap_or(false)
    }

    /// The edge stored at `id`, if live.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id as usize).and_then(|e| e.as_ref())
    }

    /// Mutable access to a live edge.
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut Edge> {
        self.edges.get_mut(id as usize).and_then(|e| e.as_mut())
    }

    /// Iterate over `(id, edge)` for all live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i as EdgeId, e)))
    }

    /// Ids of live out-edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out[n as usize]
    }

    /// Ids of live in-edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.inn[n as usize]
    }

    /// Live nodes in an arbitrary order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_alive
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i as NodeId))
    }

    /// Total number of emissions across live edges. Dominates both the
    /// serialized size and query-evaluation cost (Table 1's `l·|Σ|` term).
    pub fn total_emissions(&self) -> usize {
        self.edges().map(|(_, e)| e.emissions.len()).sum()
    }

    /// Live nodes in a topological order (start first, finish last).
    ///
    /// # Panics
    ///
    /// Panics if the live subgraph contains a cycle, which indicates a bug
    /// in a caller that mutated the graph; validated SFAs are acyclic.
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.try_topo_order()
            .expect("SFA invariant violated: graph has a cycle")
    }

    /// Fallible variant of [`Sfa::topo_order`].
    pub fn try_topo_order(&self) -> Result<Vec<NodeId>, SfaError> {
        let n = self.node_alive.len();
        let mut indeg = vec![0u32; n];
        let mut live = 0usize;
        for (i, &alive) in self.node_alive.iter().enumerate() {
            if alive {
                live += 1;
                indeg[i] = self.inn[i].len() as u32;
            }
        }
        let mut queue: Vec<NodeId> = self
            .node_alive
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a && indeg[i] == 0).then_some(i as NodeId))
            .collect();
        // Deterministic order regardless of insertion history.
        queue.sort_unstable();
        let mut order = Vec::with_capacity(live);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &eid in &self.out[v as usize] {
                let to = self.edges[eid as usize]
                    .as_ref()
                    .expect("live adjacency")
                    .to;
                indeg[to as usize] -= 1;
                if indeg[to as usize] == 0 {
                    queue.push(to);
                }
            }
        }
        if order.len() != live {
            return Err(SfaError::CyclicGraph);
        }
        Ok(order)
    }

    /// Add a fresh node (initially disconnected). Used by graph-rewriting
    /// algorithms; remember to connect it before validating.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_alive.len() as NodeId;
        self.node_alive.push(true);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        id
    }

    /// Add an edge between two live nodes. Emissions are sorted by
    /// decreasing probability. The caller must keep the graph acyclic
    /// (i.e. `from` must topologically precede `to`).
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        mut emissions: Vec<Emission>,
    ) -> Result<EdgeId, SfaError> {
        if !self.is_node_alive(from) {
            return Err(SfaError::InvalidNode(from));
        }
        if !self.is_node_alive(to) {
            return Err(SfaError::InvalidNode(to));
        }
        sort_emissions(&mut emissions);
        let id = self.edges.len() as EdgeId;
        for (i, em) in emissions.iter().enumerate() {
            if em.label.is_empty() {
                return Err(SfaError::EmptyLabel { edge: id });
            }
            if !em.prob.is_finite() || em.prob < 0.0 || em.prob > 1.0 + 1e-9 {
                return Err(SfaError::BadProbability {
                    edge: id,
                    prob: emissions[i].prob,
                });
            }
        }
        self.edges.push(Some(Edge {
            from,
            to,
            emissions,
        }));
        self.out[from as usize].push(id);
        self.inn[to as usize].push(id);
        self.live_edges += 1;
        Ok(id)
    }

    /// Remove a live edge. Returns the removed edge.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<Edge, SfaError> {
        let slot = self
            .edges
            .get_mut(id as usize)
            .ok_or(SfaError::InvalidEdge(id))?;
        let edge = slot.take().ok_or(SfaError::InvalidEdge(id))?;
        self.out[edge.from as usize].retain(|&e| e != id);
        self.inn[edge.to as usize].retain(|&e| e != id);
        self.live_edges -= 1;
        Ok(edge)
    }

    /// Tombstone a node. The node must have no live incident edges.
    pub fn remove_node(&mut self, n: NodeId) -> Result<(), SfaError> {
        if !self.is_node_alive(n) {
            return Err(SfaError::InvalidNode(n));
        }
        if !self.out[n as usize].is_empty() || !self.inn[n as usize].is_empty() {
            return Err(SfaError::Disconnected { node: n });
        }
        self.node_alive[n as usize] = false;
        Ok(())
    }

    /// Produce a densely renumbered copy without tombstones. Node ids are
    /// remapped in topological order, so `start` becomes 0.
    pub fn compact(&self) -> Sfa {
        let order = self.topo_order();
        let mut remap = vec![u32::MAX; self.node_alive.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
        }
        let n = order.len();
        let mut out = Sfa {
            start: remap[self.start as usize],
            finish: remap[self.finish as usize],
            node_alive: vec![true; n],
            edges: Vec::with_capacity(self.live_edges),
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            live_edges: 0,
        };
        for (_, e) in self.edges() {
            out.add_edge(
                remap[e.from as usize],
                remap[e.to as usize],
                e.emissions.clone(),
            )
            .expect("compacting a live edge cannot fail");
        }
        out
    }

    /// Build a deterministic chain SFA that emits exactly `text` with
    /// probability 1. Handy for tests and for representing clean ground
    /// truth in the same model.
    pub fn from_string(text: &str) -> Sfa {
        let mut b = SfaBuilder::new();
        let chars: Vec<char> = text.chars().collect();
        let mut prev = b.add_node();
        let start = prev;
        if chars.is_empty() {
            // An SFA must emit something; represent the empty line as a
            // single space emission, mirroring how the OCR channel treats
            // blank lines.
            let end = b.add_node();
            b.add_edge(prev, end, vec![Emission::new(" ", 1.0)]);
            return b.build(start, end).expect("two-node chain is valid");
        }
        let mut end = prev;
        for c in chars {
            end = b.add_node();
            b.add_edge(prev, end, vec![Emission::new(c.to_string(), 1.0)]);
            prev = end;
        }
        b.build(start, end).expect("chain SFA is valid")
    }

    /// Enumerate up to `limit` emitted `(string, probability)` pairs by
    /// depth-first traversal. Exponential in general — intended for tests
    /// and for the direct-indexing blow-up experiment (Fig. 5), never for
    /// query processing.
    pub fn enumerate_strings(&self, limit: usize) -> Vec<(String, f64)> {
        let mut acc = Vec::new();
        let mut buf = String::new();
        self.enumerate_rec(self.start, 1.0, &mut buf, limit, &mut acc);
        acc
    }

    fn enumerate_rec(
        &self,
        node: NodeId,
        prob: f64,
        buf: &mut String,
        limit: usize,
        acc: &mut Vec<(String, f64)>,
    ) {
        if acc.len() >= limit {
            return;
        }
        if node == self.finish {
            acc.push((buf.clone(), prob));
            return;
        }
        for &eid in &self.out[node as usize] {
            let edge = self.edges[eid as usize].as_ref().expect("live adjacency");
            for em in &edge.emissions {
                if acc.len() >= limit {
                    return;
                }
                let len_before = buf.len();
                buf.push_str(&em.label);
                self.enumerate_rec(edge.to, prob * em.prob, buf, limit, acc);
                buf.truncate(len_before);
            }
        }
    }
}

/// Incremental constructor for [`Sfa`] that validates structure on
/// [`SfaBuilder::build`].
#[derive(Debug, Default)]
pub struct SfaBuilder {
    sfa: Option<Sfa>,
}

impl SfaBuilder {
    /// Start building an empty SFA.
    pub fn new() -> Self {
        SfaBuilder {
            sfa: Some(Sfa {
                start: 0,
                finish: 0,
                node_alive: Vec::new(),
                edges: Vec::new(),
                out: Vec::new(),
                inn: Vec::new(),
                live_edges: 0,
            }),
        }
    }

    fn inner(&mut self) -> &mut Sfa {
        self.sfa.as_mut().expect("builder already consumed")
    }

    /// Crate-internal access to the graph under construction (used by the
    /// codec's checked insertion path).
    pub(crate) fn inner_mut(&mut self) -> &mut Sfa {
        self.inner()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        self.inner().add_node()
    }

    /// Add an edge. Emission constraints are checked immediately; graph
    /// structure is checked by [`SfaBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if an emission is malformed (empty label / bad probability) or
    /// an endpoint does not exist — builder misuse is a programming error.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, emissions: Vec<Emission>) -> EdgeId {
        self.inner()
            .add_edge(from, to, emissions)
            .expect("malformed edge passed to SfaBuilder")
    }

    /// Finish building, declaring the start and final nodes, and validate
    /// the structural invariants.
    pub fn build(mut self, start: NodeId, finish: NodeId) -> Result<Sfa, SfaError> {
        let mut sfa = self.sfa.take().expect("builder already consumed");
        if !sfa.is_node_alive(start) {
            return Err(SfaError::InvalidNode(start));
        }
        if !sfa.is_node_alive(finish) {
            return Err(SfaError::InvalidNode(finish));
        }
        sfa.start = start;
        sfa.finish = finish;
        crate::validate::check_structure(&sfa)?;
        Ok(sfa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 SFA from the paper: emits 'F0 rd' (0.21), 'Ford' (0.12),
    /// and friends.
    pub(crate) fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<NodeId> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn figure1_builds_and_counts() {
        let s = figure1();
        assert_eq!(s.node_count(), 6);
        assert_eq!(s.edge_count(), 6);
        assert_eq!(s.total_emissions(), 10);
        assert_eq!(s.start(), 0);
        assert_eq!(s.finish(), 5);
    }

    #[test]
    fn topo_order_starts_at_start_ends_at_finish() {
        let s = figure1();
        let order = s.topo_order();
        assert_eq!(order.first(), Some(&s.start()));
        assert_eq!(order.last(), Some(&s.finish()));
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn emissions_sorted_descending() {
        let mut b = SfaBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_edge(a, z, vec![Emission::new("x", 0.1), Emission::new("y", 0.9)]);
        let s = b.build(a, z).unwrap();
        let e = s.edge(0).unwrap();
        assert_eq!(e.emissions[0].label, "y");
        assert_eq!(e.emissions[1].label, "x");
    }

    #[test]
    fn from_string_emits_exactly_that_string() {
        let s = Sfa::from_string("Ford");
        let strings = s.enumerate_strings(10);
        assert_eq!(strings, vec![("Ford".to_string(), 1.0)]);
    }

    #[test]
    fn from_string_empty_line_is_single_space() {
        let s = Sfa::from_string("");
        assert_eq!(s.enumerate_strings(10), vec![(" ".to_string(), 1.0)]);
    }

    #[test]
    fn enumerate_respects_limit() {
        let s = figure1();
        assert_eq!(s.enumerate_strings(3).len(), 3);
    }

    #[test]
    fn figure1_string_probabilities() {
        let s = figure1();
        let strings = s.enumerate_strings(100);
        let get = |t: &str| {
            strings
                .iter()
                .find(|(x, _)| x == t)
                .map(|(_, p)| *p)
                .unwrap_or(0.0)
        };
        // Paper: 'F0 rd' has probability 0.8*0.6*0.6*0.8*0.9 ≈ 0.207
        assert!((get("F0 rd") - 0.8 * 0.6 * 0.6 * 0.8 * 0.9).abs() < 1e-12);
        // Paper: 'Ford' has probability 0.8*0.4*0.4*0.9 ≈ 0.115
        assert!((get("Ford") - 0.8 * 0.4 * 0.4 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn remove_and_add_edges_keeps_counts() {
        let mut s = figure1();
        let before = s.edge_count();
        let removed = s.remove_edge(0).unwrap();
        assert_eq!(s.edge_count(), before - 1);
        assert!(s.edge(0).is_none());
        let id = s
            .add_edge(removed.from, removed.to, removed.emissions)
            .unwrap();
        assert_eq!(s.edge_count(), before);
        assert!(s.edge(id).is_some());
    }

    #[test]
    fn remove_node_requires_no_incident_edges() {
        let mut s = figure1();
        assert!(matches!(
            s.remove_node(3),
            Err(SfaError::Disconnected { node: 3 })
        ));
        // Detach node 3 first.
        let incident: Vec<EdgeId> = s
            .edges()
            .filter(|(_, e)| e.from == 3 || e.to == 3)
            .map(|(id, _)| id)
            .collect();
        for id in incident {
            s.remove_edge(id).unwrap();
        }
        s.remove_node(3).unwrap();
        assert!(!s.is_node_alive(3));
    }

    #[test]
    fn compact_preserves_distribution() {
        let mut s = figure1();
        // Knock out the ' ' branch (edges via node 3), then compact.
        let incident: Vec<EdgeId> = s
            .edges()
            .filter(|(_, e)| e.from == 3 || e.to == 3)
            .map(|(id, _)| id)
            .collect();
        for id in incident {
            s.remove_edge(id).unwrap();
        }
        s.remove_node(3).unwrap();
        let c = s.compact();
        assert_eq!(c.node_count(), 5);
        assert_eq!(c.num_node_slots(), 5);
        let mut a = s.enumerate_strings(100);
        let mut b = c.enumerate_strings(100);
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a, b);
    }

    #[test]
    fn add_edge_rejects_bad_probability() {
        let mut s = figure1();
        let err = s.add_edge(0, 5, vec![Emission::new("q", 1.5)]);
        assert!(matches!(err, Err(SfaError::BadProbability { .. })));
        let err = s.add_edge(0, 5, vec![Emission::new("q", f64::NAN)]);
        assert!(matches!(err, Err(SfaError::BadProbability { .. })));
    }

    #[test]
    fn add_edge_rejects_empty_label() {
        let mut s = figure1();
        let err = s.add_edge(0, 5, vec![Emission::new("", 0.5)]);
        assert!(matches!(err, Err(SfaError::EmptyLabel { .. })));
    }

    #[test]
    fn add_edge_rejects_dead_node() {
        let mut s = Sfa::from_string("ab");
        assert!(matches!(
            s.add_edge(99, 0, vec![Emission::new("x", 0.5)]),
            Err(SfaError::InvalidNode(99))
        ));
    }

    #[test]
    fn cycle_detected_by_try_topo_order() {
        let mut s = Sfa::from_string("ab");
        // Force a back edge; this violates the documented precondition, and
        // try_topo_order must report it rather than loop.
        s.add_edge(2, 0, vec![Emission::new("z", 0.1)]).unwrap();
        assert_eq!(s.try_topo_order(), Err(SfaError::CyclicGraph));
    }

    #[test]
    fn edge_mass_sums_emissions() {
        let s = figure1();
        let e = s.edge(0).unwrap();
        assert!((e.mass() - 1.0).abs() < 1e-12);
    }
}
