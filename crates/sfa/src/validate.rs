//! Structural and stochastic invariant checks for SFAs.
//!
//! Three independent levels, because the paper's pipeline deliberately
//! weakens them in stages:
//!
//! * [`check_structure`] — DAG with a unique start/final and no stranded
//!   nodes. Holds for **every** SFA in the system, including Staccato
//!   approximations (`FindMinSFA` exists precisely to preserve it).
//! * [`check_stochastic`] — outgoing emission mass of each non-final node
//!   is 1. Holds for raw OCR output; pruned representations (k-MAP,
//!   Staccato) intentionally fail it since they discard probability mass.
//! * [`check_unique_paths`] — no string is emitted by two distinct labelled
//!   paths (§2.2). Guaranteed by OCRopus output; required for the
//!   tractability results of the paper (Theorem 3.1's contrast).

use crate::error::SfaError;
use crate::model::{NodeId, Sfa};
use std::collections::{HashSet, VecDeque};

/// Check the structural invariants: acyclicity, the start node has no
/// in-edges, the final node has no out-edges, the start and final nodes
/// differ, and every live node lies on a start-to-final path.
pub fn check_structure(sfa: &Sfa) -> Result<(), SfaError> {
    let order = sfa.try_topo_order()?;
    if sfa.start() == sfa.finish() {
        return Err(SfaError::Disconnected { node: sfa.start() });
    }
    if !sfa.in_edges(sfa.start()).is_empty() {
        return Err(SfaError::Disconnected { node: sfa.start() });
    }
    if !sfa.out_edges(sfa.finish()).is_empty() {
        return Err(SfaError::Disconnected { node: sfa.finish() });
    }
    // Forward reachability from start.
    let slots = sfa.num_node_slots() as usize;
    let mut fwd = vec![false; slots];
    fwd[sfa.start() as usize] = true;
    for &v in &order {
        if !fwd[v as usize] {
            continue;
        }
        for &e in sfa.out_edges(v) {
            fwd[sfa.edge(e).expect("live adjacency").to as usize] = true;
        }
    }
    // Backward reachability from finish.
    let mut bwd = vec![false; slots];
    bwd[sfa.finish() as usize] = true;
    for &v in order.iter().rev() {
        if !bwd[v as usize] {
            continue;
        }
        for &e in sfa.in_edges(v) {
            bwd[sfa.edge(e).expect("live adjacency").from as usize] = true;
        }
    }
    for &v in &order {
        if !fwd[v as usize] || !bwd[v as usize] {
            return Err(SfaError::Disconnected { node: v });
        }
    }
    Ok(())
}

/// Check that every live non-final node's outgoing emission mass is within
/// `tol` of 1 — i.e. δ is a proper conditional distribution (§2.2).
pub fn check_stochastic(sfa: &Sfa, tol: f64) -> Result<(), SfaError> {
    for v in sfa.nodes() {
        if v == sfa.finish() {
            continue;
        }
        let sum: f64 = sfa
            .out_edges(v)
            .iter()
            .map(|&e| sfa.edge(e).expect("live adjacency").mass())
            .sum();
        if (sum - 1.0).abs() > tol {
            return Err(SfaError::NotStochastic { node: v, sum });
        }
    }
    Ok(())
}

/// Exact test of the unique path property: does any string have two distinct
/// labelled paths?
///
/// Runs a product ("squared automaton") search over pairs of positions. A
/// *position* is a node plus the pending unconsumed suffix of a multi-
/// character label on one side. Divergence is recorded the first time the
/// two walks pick different `(edge, emission)` transitions; ambiguity is a
/// diverged pair reaching `(finish, finish)` with no pending suffix.
///
/// Worst case is quadratic in the automaton times the number of distinct
/// label suffixes; per-line OCR SFAs keep this comfortably small.
pub fn check_unique_paths(sfa: &Sfa) -> Result<(), SfaError> {
    // State: (node_a, node_b, skew, a_is_ahead, diverged).
    // `skew` is the string emitted by the "ahead" side not yet matched by
    // the "behind" side.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct St {
        a: NodeId,
        b: NodeId,
        skew: String,
        a_ahead: bool,
        diverged: bool,
    }

    let start = St {
        a: sfa.start(),
        b: sfa.start(),
        skew: String::new(),
        a_ahead: true,
        diverged: false,
    };
    let mut seen: HashSet<St> = HashSet::new();
    let mut queue: VecDeque<St> = VecDeque::new();
    seen.insert(start.clone());
    queue.push_back(start);

    while let Some(st) = queue.pop_front() {
        if st.a == sfa.finish() && st.b == sfa.finish() && st.skew.is_empty() {
            if st.diverged {
                // Reconstruct a witness string lazily: any emitted string
                // works for the error message; use the MAP string.
                let witness = crate::viterbi::map_string(sfa)
                    .map(|(s, _)| s)
                    .unwrap_or_default();
                return Err(SfaError::AmbiguousString(witness));
            }
            continue;
        }
        let push = |seen: &mut HashSet<St>, queue: &mut VecDeque<St>, st: St| {
            if seen.insert(st.clone()) {
                queue.push_back(st);
            }
        };
        if st.skew.is_empty() {
            // Both sides advance together; enumerate pairs of transitions
            // with one label a prefix of the other.
            for &ea in sfa.out_edges(st.a) {
                let edge_a = sfa.edge(ea).expect("live adjacency");
                for (ia, ema) in edge_a.emissions.iter().enumerate() {
                    if ema.prob == 0.0 {
                        continue;
                    }
                    for &eb in sfa.out_edges(st.b) {
                        let edge_b = sfa.edge(eb).expect("live adjacency");
                        for (ib, emb) in edge_b.emissions.iter().enumerate() {
                            if emb.prob == 0.0 {
                                continue;
                            }
                            let la = &ema.label;
                            let lb = &emb.label;
                            let same_choice = ea == eb && ia == ib;
                            let (skew, a_ahead) = if la == lb {
                                (String::new(), true)
                            } else if let Some(rest) = la.strip_prefix(lb.as_str()) {
                                (rest.to_string(), true)
                            } else if let Some(rest) = lb.strip_prefix(la.as_str()) {
                                (rest.to_string(), false)
                            } else {
                                continue; // labels incompatible; strings differ
                            };
                            push(
                                &mut seen,
                                &mut queue,
                                St {
                                    a: edge_a.to,
                                    b: edge_b.to,
                                    skew,
                                    a_ahead,
                                    diverged: st.diverged || !same_choice,
                                },
                            );
                        }
                    }
                }
            }
        } else {
            // Only the behind side advances, consuming the skew.
            let (behind, ahead_node) = if st.a_ahead {
                (st.b, st.a)
            } else {
                (st.a, st.b)
            };
            for &e in sfa.out_edges(behind) {
                let edge = sfa.edge(e).expect("live adjacency");
                for em in &edge.emissions {
                    if em.prob == 0.0 {
                        continue;
                    }
                    let l = &em.label;
                    let (skew, flip) = if let Some(rest) = st.skew.strip_prefix(l.as_str()) {
                        (rest.to_string(), false)
                    } else if let Some(rest) = l.strip_prefix(st.skew.as_str()) {
                        (rest.to_string(), true)
                    } else {
                        continue;
                    };
                    let (na, nb, a_ahead) = if st.a_ahead {
                        if flip {
                            (ahead_node, edge.to, false)
                        } else {
                            (ahead_node, edge.to, true)
                        }
                    } else if flip {
                        (edge.to, ahead_node, true)
                    } else {
                        (edge.to, ahead_node, false)
                    };
                    // A diverged pair stays diverged; any behind-side move
                    // while skew is pending means the paths already chose
                    // different transitions, so `diverged` is already true.
                    push(
                        &mut seen,
                        &mut queue,
                        St {
                            a: na,
                            b: nb,
                            skew,
                            a_ahead,
                            diverged: st.diverged,
                        },
                    );
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Emission, Sfa, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn figure1_passes_all_checks() {
        let s = figure1();
        check_structure(&s).unwrap();
        check_stochastic(&s, 1e-9).unwrap();
        check_unique_paths(&s).unwrap();
    }

    #[test]
    fn stranded_node_is_rejected() {
        let mut b = SfaBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        let stranded = b.add_node();
        b.add_edge(a, z, vec![Emission::new("x", 1.0)]);
        b.add_edge(a, stranded, vec![Emission::new("y", 0.5)]);
        // `stranded` has no path to z.
        let err = b.build(a, z).unwrap_err();
        assert!(matches!(err, SfaError::Disconnected { .. }));
    }

    #[test]
    fn single_node_sfa_is_rejected() {
        let mut b = SfaBuilder::new();
        let a = b.add_node();
        let err = b.build(a, a).unwrap_err();
        assert!(matches!(err, SfaError::Disconnected { .. }));
    }

    #[test]
    fn pruned_sfa_fails_stochastic_check_only() {
        let mut s = figure1();
        // Drop the lowest-probability emission of edge 0 — a k-MAP style prune.
        let e = s.edge_mut(0).unwrap();
        e.emissions.pop();
        check_structure(&s).unwrap();
        assert!(matches!(
            check_stochastic(&s, 1e-9),
            Err(SfaError::NotStochastic { node: 0, .. })
        ));
    }

    #[test]
    fn ambiguous_single_char_sfa_detected() {
        // Two parallel two-edge paths that both emit "ab".
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let m1 = b.add_node();
        let m2 = b.add_node();
        let f = b.add_node();
        b.add_edge(s, m1, vec![Emission::new("a", 0.5)]);
        b.add_edge(s, m2, vec![Emission::new("a", 0.5)]);
        b.add_edge(m1, f, vec![Emission::new("b", 1.0)]);
        b.add_edge(m2, f, vec![Emission::new("b", 1.0)]);
        let sfa = b.build(s, f).unwrap();
        assert!(matches!(
            check_unique_paths(&sfa),
            Err(SfaError::AmbiguousString(_))
        ));
    }

    #[test]
    fn ambiguous_multichar_alignment_detected() {
        // "ab"+"c" on one path vs "a"+"bc" on the other: same string "abc"
        // via different labelled paths, only detectable with skew tracking.
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let m1 = b.add_node();
        let m2 = b.add_node();
        let f = b.add_node();
        b.add_edge(s, m1, vec![Emission::new("ab", 0.5)]);
        b.add_edge(s, m2, vec![Emission::new("a", 0.5)]);
        b.add_edge(m1, f, vec![Emission::new("c", 1.0)]);
        b.add_edge(m2, f, vec![Emission::new("bc", 1.0)]);
        let sfa = b.build(s, f).unwrap();
        assert!(matches!(
            check_unique_paths(&sfa),
            Err(SfaError::AmbiguousString(_))
        ));
    }

    #[test]
    fn unambiguous_multichar_passes() {
        // "ab"+"c" vs "a"+"bd": strings "abc" vs "abd" differ.
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let m1 = b.add_node();
        let m2 = b.add_node();
        let f = b.add_node();
        b.add_edge(s, m1, vec![Emission::new("ab", 0.5)]);
        b.add_edge(s, m2, vec![Emission::new("a", 0.5)]);
        b.add_edge(m1, f, vec![Emission::new("c", 1.0)]);
        b.add_edge(m2, f, vec![Emission::new("bd", 1.0)]);
        let sfa = b.build(s, f).unwrap();
        check_unique_paths(&sfa).unwrap();
    }

    #[test]
    fn parallel_emissions_on_one_edge_same_label_is_ambiguous() {
        let mut b = SfaBuilder::new();
        let s = b.add_node();
        let f = b.add_node();
        b.add_edge(s, f, vec![Emission::new("a", 0.5), Emission::new("a", 0.5)]);
        let sfa = b.build(s, f).unwrap();
        assert!(matches!(
            check_unique_paths(&sfa),
            Err(SfaError::AmbiguousString(_))
        ));
    }

    #[test]
    fn chain_from_string_is_unambiguous() {
        let s = Sfa::from_string("hello world");
        check_unique_paths(&s).unwrap();
        check_stochastic(&s, 1e-12).unwrap();
    }
}
