//! Viterbi decoding: the maximum a-posteriori (MAP) string of an SFA.
//!
//! This is the "state of the art" baseline in the paper's comparison — what
//! Google Books stores — computed with the standard dynamic program over
//! the DAG in topological order (§3.1 cites Forney's Viterbi algorithm).
//! Scores are accumulated in log-space so long lines cannot underflow.

use crate::kbest::KBestPath;
use crate::model::{EdgeId, NodeId, Sfa};

/// Backpointer for one node in the Viterbi DP.
#[derive(Clone, Copy)]
struct Back {
    logp: f64,
    edge: EdgeId,
    emission: u32,
    from: NodeId,
}

/// Return the most likely labelled path, or `None` if no start-to-final
/// path has positive probability (possible after aggressive pruning).
pub fn map_path(sfa: &Sfa) -> Option<KBestPath> {
    let slots = sfa.num_node_slots() as usize;
    let mut best: Vec<Option<Back>> = vec![None; slots];
    let order = sfa.topo_order();
    // Start node has log-prob 0 and no backpointer; we mark it with a
    // sentinel edge id.
    let start = sfa.start() as usize;
    best[start] = Some(Back {
        logp: 0.0,
        edge: u32::MAX,
        emission: 0,
        from: sfa.start(),
    });

    for &v in &order {
        let Some(cur) = best[v as usize] else {
            continue;
        };
        for &eid in sfa.out_edges(v) {
            let edge = sfa.edge(eid).expect("live adjacency");
            for (i, em) in edge.emissions.iter().enumerate() {
                if em.prob <= 0.0 {
                    continue;
                }
                let cand = cur.logp + em.prob.ln();
                let slot = &mut best[edge.to as usize];
                if slot.is_none_or(|b| cand > b.logp) {
                    *slot = Some(Back {
                        logp: cand,
                        edge: eid,
                        emission: i as u32,
                        from: v,
                    });
                }
            }
        }
    }

    let fin = best[sfa.finish() as usize]?;
    // Walk backpointers from finish to start.
    let mut edges_rev: Vec<(EdgeId, u32)> = Vec::new();
    let mut node = sfa.finish();
    while node != sfa.start() {
        let b = best[node as usize].expect("backpointer chain is complete");
        edges_rev.push((b.edge, b.emission));
        node = b.from;
    }
    edges_rev.reverse();
    let mut string = String::new();
    for &(eid, i) in &edges_rev {
        string.push_str(&sfa.edge(eid).expect("live edge").emissions[i as usize].label);
    }
    Some(KBestPath {
        string,
        prob: fin.logp.exp(),
        edges: edges_rev,
    })
}

/// The MAP string and its probability — the plain-text transcription that
/// traditional OCR pipelines store.
pub fn map_string(sfa: &Sfa) -> Option<(String, f64)> {
    map_path(sfa).map(|p| (p.string, p.prob))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Emission, Sfa, SfaBuilder};

    fn figure1() -> Sfa {
        let mut b = SfaBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(
            n[0],
            n[1],
            vec![Emission::new("F", 0.8), Emission::new("T", 0.2)],
        );
        b.add_edge(
            n[1],
            n[2],
            vec![Emission::new("0", 0.6), Emission::new("o", 0.4)],
        );
        b.add_edge(n[2], n[3], vec![Emission::new(" ", 0.6)]);
        b.add_edge(n[2], n[4], vec![Emission::new("r", 0.4)]);
        b.add_edge(
            n[3],
            n[4],
            vec![Emission::new("r", 0.8), Emission::new("m", 0.2)],
        );
        b.add_edge(
            n[4],
            n[5],
            vec![Emission::new("d", 0.9), Emission::new("3", 0.1)],
        );
        b.build(n[0], n[5]).unwrap()
    }

    #[test]
    fn figure1_map_is_f0_rd() {
        // The paper highlights 'F0 rd' as the MAP with probability ≈ 0.21;
        // the true text 'Ford' is NOT the MAP — the recall failure that
        // motivates the whole system.
        let (s, p) = map_string(&figure1()).unwrap();
        assert_eq!(s, "F0 rd");
        assert!((p - 0.8 * 0.6 * 0.6 * 0.8 * 0.9).abs() < 1e-9);
    }

    #[test]
    fn map_of_deterministic_chain_is_the_string() {
        let sfa = Sfa::from_string("United States");
        let (s, p) = map_string(&sfa).unwrap();
        assert_eq!(s, "United States");
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn map_matches_exhaustive_enumeration() {
        let sfa = figure1();
        let mut all = sfa.enumerate_strings(1000);
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let (s, p) = map_string(&sfa).unwrap();
        assert_eq!(s, all[0].0);
        assert!((p - all[0].1).abs() < 1e-12);
    }

    #[test]
    fn map_path_edges_reconstruct_string() {
        let sfa = figure1();
        let path = map_path(&sfa).unwrap();
        let mut s = String::new();
        for (eid, i) in &path.edges {
            s.push_str(&sfa.edge(*eid).unwrap().emissions[*i as usize].label);
        }
        assert_eq!(s, path.string);
    }

    #[test]
    fn zero_probability_emissions_are_ignored() {
        let mut b = SfaBuilder::new();
        let a = b.add_node();
        let z = b.add_node();
        b.add_edge(a, z, vec![Emission::new("x", 0.0), Emission::new("y", 0.4)]);
        let sfa = b.build(a, z).unwrap();
        let (s, _) = map_string(&sfa).unwrap();
        assert_eq!(s, "y");
    }

    #[test]
    fn unreachable_finish_returns_none() {
        let mut sfa = Sfa::from_string("ab");
        // Remove the only edge into the final node.
        let last: Vec<_> = sfa.in_edges(sfa.finish()).to_vec();
        for e in last {
            sfa.remove_edge(e).unwrap();
        }
        assert!(map_string(&sfa).is_none());
    }
}
