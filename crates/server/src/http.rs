//! The HTTP/1.1 wire layer: reading requests off a `TcpStream` and
//! writing responses back, with nothing above `std::net`.
//!
//! The server multiplexes many keep-alive connections over a small
//! worker pool (see [`crate::server`]), so the reader here is
//! **resumable**: [`Connection::read_request`] polls with the socket's
//! short read timeout, and on [`ReadError::Idle`] the partial bytes
//! stay buffered in the connection — a worker can park the connection
//! back on the queue and any worker can finish the request later.
//!
//! Only the slice of HTTP/1.1 the service needs is implemented:
//! `Content-Length` bodies (no chunked encoding), no `Expect:
//! 100-continue`, no pipelining guarantees beyond "unread bytes stay
//! buffered". Requests over the configured head/body caps are rejected
//! before the bytes are read, which is what makes the caps a defense
//! rather than a suggestion.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Upper bound on the request line + headers. Generous for hand-written
/// clients, small enough that a garbage stream cannot balloon memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client already; matched
    /// case-sensitively per RFC 9110).
    pub method: String,
    /// The request target, e.g. `/query`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, `Content-Length` bytes long.
    pub body: Vec<u8>,
}

impl Request {
    /// First header with `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why [`Connection::read_request`] returned without a request.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF on a request boundary — the client hung up, nothing to
    /// answer.
    Closed,
    /// The read timed out. Partial bytes (if any) stay buffered; the
    /// connection can be parked and resumed. `started` is when the
    /// first byte of the pending request arrived (`None` while idle
    /// between requests).
    Idle {
        /// Arrival time of the pending partial request, if any.
        started: Option<Instant>,
    },
    /// `Content-Length` exceeds the configured cap. Answer 413 and
    /// close without reading the body.
    BodyTooLarge(usize),
    /// The head exceeded [`MAX_HEAD_BYTES`] or failed to parse. Answer
    /// 400 and close.
    Malformed(String),
    /// The socket failed mid-read.
    Io(io::Error),
}

/// One client connection: the stream plus whatever bytes arrived ahead
/// of parsing. Per-connection server state (prepared statements) rides
/// in [`crate::server`]'s wrapper so this layer stays protocol-only.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    peer: SocketAddr,
    /// Bytes received but not yet consumed by a parse.
    buf: Vec<u8>,
    /// When the first byte of the currently-pending request arrived.
    request_started: Option<Instant>,
    /// When the connection last completed a request (or was accepted).
    pub last_active: Instant,
}

impl Connection {
    /// Wrap an accepted stream. The caller is expected to have set a
    /// short read timeout on the stream (see the module docs).
    pub fn new(stream: TcpStream, peer: SocketAddr) -> Connection {
        Connection {
            stream,
            peer,
            buf: Vec::new(),
            request_started: None,
            last_active: Instant::now(),
        }
    }

    /// The client's address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Try to read one complete request. Returns [`ReadError::Idle`]
    /// when the socket's read timeout expires first — the connection
    /// stays valid and buffered bytes are kept for the next attempt.
    pub fn read_request(&mut self, max_body: usize) -> Result<Request, ReadError> {
        loop {
            if let Some(head_end) = find_head_end(&self.buf) {
                return self.finish_request(head_end, max_body);
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::Malformed("request head too large".into()));
            }
            self.fill()?;
        }
    }

    /// One `read()` into the buffer, mapping timeouts and EOF.
    fn fill(&mut self) -> Result<(), ReadError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() {
                    Err(ReadError::Closed)
                } else {
                    Err(ReadError::Malformed("connection closed mid-request".into()))
                }
            }
            Ok(n) => {
                if self.buf.is_empty() && self.request_started.is_none() {
                    self.request_started = Some(Instant::now());
                }
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(ReadError::Idle {
                    started: self.request_started,
                })
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(ReadError::Io(e)),
        }
    }

    /// The head is complete at `head_end`; parse it and read the body.
    fn finish_request(&mut self, head_end: usize, max_body: usize) -> Result<Request, ReadError> {
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| ReadError::Malformed("head is not UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => {
                (m.to_string(), p.to_string(), v)
            }
            _ => {
                return Err(ReadError::Malformed(format!(
                    "bad request line {request_line:?}"
                )))
            }
        };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(ReadError::Malformed(format!("bad version {version:?}")));
        }
        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ReadError::Malformed(format!("bad header line {line:?}")));
            };
            headers.push((name.trim().to_string(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| {
                v.parse::<usize>()
                    .map_err(|_| ReadError::Malformed(format!("bad Content-Length {v:?}")))
            })
            .transpose()?
            .unwrap_or(0);
        if content_length > max_body {
            // Leave the unread body on the socket; the caller answers
            // 413 and closes, so it never needs to be drained.
            return Err(ReadError::BodyTooLarge(content_length));
        }

        let body_start = head_end + 4; // past the \r\n\r\n
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Keep any pipelined bytes for the next request.
        self.buf.drain(..body_start + content_length);
        self.request_started = None;
        self.last_active = Instant::now();
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }

    /// Write `response` and flush. An error here means the client went
    /// away; the caller drops the connection.
    pub fn write_response(&mut self, response: &Response) -> io::Result<()> {
        let mut wire = Vec::with_capacity(response.body.len() + 256);
        response.encode(&mut wire);
        self.stream.write_all(&wire)?;
        self.stream.flush()
    }
}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response, ready to encode.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`.
    pub headers: Vec<(String, String)>,
    /// The body (always JSON in this service).
    pub body: Vec<u8>,
    /// Advertise and perform `Connection: close` after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, status_text(self.status)).as_bytes(),
        );
        out.extend_from_slice(b"Content-Type: application/json\r\n");
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(if self.close {
            b"Connection: close\r\n"
        } else {
            b"Connection: keep-alive\r\n"
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }
}

/// Reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// A connected (client, server-side Connection) pair over loopback.
    fn pair() -> (TcpStream, Connection) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (stream, peer) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        (client, Connection::new(stream, peer))
    }

    #[test]
    fn parses_a_request_split_across_writes() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"POST /query HTTP/1.1\r\nContent-Le")
            .unwrap();
        // First attempt times out with the head incomplete.
        assert!(matches!(
            conn.read_request(1024),
            Err(ReadError::Idle { started: Some(_) })
        ));
        client
            .write_all(b"ngth: 5\r\nX-Client-Id: t1\r\n\r\nhello")
            .unwrap();
        let req = conn.read_request(1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("x-client-id"), Some("t1"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn pipelined_requests_stay_buffered() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n")
            .unwrap();
        assert_eq!(conn.read_request(1024).unwrap().path, "/healthz");
        assert_eq!(conn.read_request(1024).unwrap().path, "/stats");
    }

    #[test]
    fn oversized_bodies_are_rejected_before_the_read() {
        let (mut client, mut conn) = pair();
        client
            .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
            .unwrap();
        assert!(matches!(
            conn.read_request(1024),
            Err(ReadError::BodyTooLarge(999999))
        ));
    }

    #[test]
    fn eof_is_closed_on_a_boundary_and_malformed_mid_request() {
        let (client, mut conn) = pair();
        drop(client);
        assert!(matches!(conn.read_request(1024), Err(ReadError::Closed)));

        let (mut client, mut conn) = pair();
        client.write_all(b"GET /hea").unwrap();
        drop(client);
        assert!(matches!(
            conn.read_request(1024),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_request_lines_are_malformed() {
        for garbage in [
            "NOT-HTTP\r\n\r\n",
            "GET missing-slash HTTP/1.1\r\n\r\n",
            "GET / HTTP/3\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        ] {
            let (mut client, mut conn) = pair();
            client.write_all(garbage.as_bytes()).unwrap();
            assert!(
                matches!(conn.read_request(1024), Err(ReadError::Malformed(_))),
                "{garbage:?}"
            );
        }
    }

    #[test]
    fn responses_encode_with_length_and_connection_headers() {
        let mut resp = Response::json(429, "{}").with_header("Retry-After", "2");
        resp.close = true;
        let mut wire = Vec::new();
        resp.encode(&mut wire);
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
