//! Per-client token-bucket rate limiting.
//!
//! Each client identity (the `X-Client-Id` header when present, else
//! the peer IP — see [`crate::server`]) gets an independent bucket of
//! [`RateLimit::burst`] tokens refilling at [`RateLimit::per_sec`]
//! tokens per second. A request spends one token; an empty bucket
//! means 429 with a `Retry-After` telling the client when one token
//! will exist again.
//!
//! The table is a single mutex-guarded map: limiting happens once per
//! request *before* any query work, so the hold time is a couple of
//! float operations and contention is immaterial next to the queries
//! themselves. Stale identities are swept opportunistically so an
//! identity-churning client cannot grow the table without bound.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Bucket parameters, shared by every client identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity: how many requests may land back-to-back before
    /// throttling starts.
    pub burst: u32,
    /// Sustained refill rate, tokens (requests) per second.
    pub per_sec: f64,
}

impl RateLimit {
    /// A limit allowing `burst` back-to-back requests and `per_sec`
    /// sustained.
    pub fn new(burst: u32, per_sec: f64) -> RateLimit {
        RateLimit {
            burst: burst.max(1),
            per_sec: per_sec.max(1e-6),
        }
    }
}

/// Sweep identities idle longer than this (seconds) when the table is
/// large. At one bucket per ~80 bytes this bounds memory to whatever
/// `SWEEP_THRESHOLD` clients cost, not whatever an attacker sends.
const STALE_AFTER_SECS: f64 = 60.0;
const SWEEP_THRESHOLD: usize = 10_000;

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The per-identity bucket table.
#[derive(Debug)]
pub struct TokenBuckets {
    limit: RateLimit,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TokenBuckets {
    /// An empty table with `limit` applied per identity.
    pub fn new(limit: RateLimit) -> TokenBuckets {
        TokenBuckets {
            limit,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    /// Spend one token for `client`. `Err(retry_after_secs)` when the
    /// bucket is empty — the wait (rounded up to whole seconds, min 1)
    /// until a token exists.
    pub fn try_acquire(&self, client: &str) -> Result<(), u64> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("bucket table poisoned");
        if buckets.len() >= SWEEP_THRESHOLD && !buckets.contains_key(client) {
            buckets.retain(|_, b| now.duration_since(b.refilled).as_secs_f64() < STALE_AFTER_SECS);
        }
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens: self.limit.burst as f64,
            refilled: now,
        });
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.limit.per_sec).min(self.limit.burst as f64);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait = (1.0 - bucket.tokens) / self.limit.per_sec;
            Err((wait.ceil() as u64).max(1))
        }
    }

    /// Number of identities currently tracked (stats surface).
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().expect("bucket table poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_throttle_then_refill() {
        let buckets = TokenBuckets::new(RateLimit::new(3, 50.0));
        for _ in 0..3 {
            assert!(buckets.try_acquire("a").is_ok());
        }
        let retry = buckets.try_acquire("a").unwrap_err();
        assert_eq!(retry, 1, "sub-second waits round up to 1");
        // At 50 tokens/sec a token is back within ~20ms.
        std::thread::sleep(Duration::from_millis(40));
        assert!(buckets.try_acquire("a").is_ok());
    }

    #[test]
    fn identities_are_independent() {
        let buckets = TokenBuckets::new(RateLimit::new(1, 0.1));
        assert!(buckets.try_acquire("a").is_ok());
        assert!(buckets.try_acquire("a").is_err());
        assert!(buckets.try_acquire("b").is_ok(), "b has its own bucket");
        assert_eq!(buckets.tracked_clients(), 2);
    }

    #[test]
    fn retry_after_reflects_the_refill_rate() {
        let buckets = TokenBuckets::new(RateLimit::new(1, 0.2)); // 5s per token
        assert!(buckets.try_acquire("a").is_ok());
        let retry = buckets.try_acquire("a").unwrap_err();
        assert!(retry == 5, "empty bucket at 0.2/s needs 5s, got {retry}");
    }
}
