//! A minimal blocking keep-alive HTTP/1.1 client — just enough to
//! exercise the server from the integration tests and the closed-loop
//! load generator without pulling in an HTTP dependency.
//!
//! One [`HttpClient`] is one TCP connection; requests on it are
//! serialized (which is exactly what a closed-loop load generator
//! wants). Responses are read to `Content-Length`, so the connection
//! stays usable for the next request.

use crate::json::{Json, JsonError};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The body as text (this API only speaks JSON).
    pub body: String,
}

impl HttpResponse {
    /// First header with `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Parse the body as JSON.
    pub fn json(&self) -> Result<Json, JsonError> {
        Json::parse(&self.body)
    }
}

/// A keep-alive connection to the server.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    /// Response bytes read past the previous message.
    buf: Vec<u8>,
    /// Sent as `X-Client-Id` on every request when set (the rate
    /// limiter's identity).
    pub client_id: Option<String>,
}

impl HttpClient {
    /// Connect. No read timeout is set: callers wait for their answer
    /// (closed loop); use [`HttpClient::set_read_timeout`] otherwise.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
            client_id: None,
        })
    }

    /// Connect with a rate-limit identity.
    pub fn connect_as(addr: impl ToSocketAddrs, client_id: &str) -> io::Result<HttpClient> {
        let mut client = HttpClient::connect(addr)?;
        client.client_id = Some(client_id.to_string());
        Ok(client)
    }

    /// Bound how long [`HttpClient::request`] waits for a response.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// One request/response exchange.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let mut wire = format!("{method} {path} HTTP/1.1\r\nHost: staccato\r\n");
        if let Some(id) = &self.client_id {
            wire.push_str(&format!("X-Client-Id: {id}\r\n"));
        }
        let body = body.unwrap_or("");
        wire.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        self.stream.write_all(wire.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Send raw bytes on the wire (tests use this to speak malformed
    /// or partial HTTP on purpose).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    fn read_response(&mut self) -> io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| bad_data("response head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad_data(format!("bad status line {status_line:?}")))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| line.split_once(':'))
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .collect();
        let content_length = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| bad_data("response has no Content-Length"))?;

        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = String::from_utf8(self.buf[body_start..body_start + content_length].to_vec())
            .map_err(|_| bad_data("response body is not UTF-8"))?;
        self.buf.drain(..body_start + content_length);
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk)? {
            0 => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            n => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
        }
    }
}

fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}
