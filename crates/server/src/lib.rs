//! # staccato-server
//!
//! The service tier: a hand-rolled HTTP/1.1 server over `std::net`
//! exposing a shared [`Staccato`](staccato_query::Staccato) session's
//! full SQL surface to network clients, with no dependencies beyond
//! the workspace (the container pins everything in-tree).
//!
//! ```ignore
//! let session = Arc::new(Staccato::load(db, &dataset, &opts)?);
//! let server = Server::start(session, ServerConfig::default())?;
//! println!("listening on http://{}", server.addr());
//! // ...
//! server.shutdown(); // drain in-flight requests, join workers
//! ```
//!
//! ## API
//!
//! | endpoint | body | answer |
//! |---|---|---|
//! | `POST /query` | `{"sql": "SELECT ... LIMIT n OFFSET m"}` | ranked rows + plan + [`ExecStats`](staccato_query::ExecStats) |
//! | `POST /prepare` | `{"sql": "... ? ..."}` | `{"statement_id", "param_count", "sql"}` |
//! | `POST /execute` | `{"statement_id": n, "params": [...]}` | same as `/query` |
//! | `POST /ingest` | `{"documents": [{"name","text",...}]}` | `{"batch_seq","first_key","docs","wal_bytes"}` |
//! | `GET /healthz` | — | `{"status":"ok","lines":n}` |
//! | `GET /stats` | — | per-endpoint latency percentiles, pool, query-cache & ingest counters |
//!
//! Pagination is plain SQL: `LIMIT n OFFSET m` pages through the
//! ranked answer relation (the heap keeps `n + m` candidates server
//! side, so page k of the ranking is exact, not approximate).
//!
//! Prepared statements are **per connection**: `statement_id` is an
//! index into state that travels with the connection through the
//! worker pool, dying with the connection — exactly a SQL cursor's
//! lifetime, and free of any cross-client id-guessing surface.
//!
//! Every non-2xx answer is `{"error":{"code":"...","message":"..."}}`
//! with a stable machine-readable code (see [`error`]). Robustness
//! limits — body size (413), per-client token-bucket rate limiting
//! (429 + `Retry-After`), query wall-clock (408) — and the worker /
//! shutdown model are documented in [`server`] and DESIGN.md's
//! "Service tier" section.

pub mod client;
pub mod error;
pub mod http;
pub mod json;
pub mod limits;
pub mod server;
pub mod stats;

pub use client::{HttpClient, HttpResponse};
pub use error::ApiError;
pub use json::{Json, JsonError};
pub use limits::RateLimit;
pub use server::{Server, ServerConfig, ServerHandle};
